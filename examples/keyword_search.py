"""Figure 8: keyword search for "cdc6" across EMBL and Swiss-Prot.

Shows the same search three ways:
  1. the textual XomatiQ query (the paper's Figure 8, verbatim),
  2. the visual builder (keyword mode) generating that query,
  3. the SRS-style flat-file baseline, to exhibit the expressiveness
     gap the paper's Related Work section describes.

Run:  python examples/keyword_search.py
"""

from repro import Warehouse
from repro.baselines import FlatFileIndex
from repro.qbe import KeywordSearchBuilder
from repro.synth import build_corpus

FIGURE_8 = '''
FOR  $a IN document("hlx_embl.inv")/hlx_n_sequence,
     $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains ($a, "cdc6", any)
AND   contains ($b, "cdc6", any)
RETURN
     $b//sprot_accession_number,
     $a//embl_accession_number
'''


def main() -> None:
    corpus = build_corpus(seed=7, enzyme_count=40, embl_count=80,
                          sprot_count=60, gene_plant=("cdc6", 0.07))
    warehouse = Warehouse()
    warehouse.load_corpus(corpus)

    print("== 1. the paper's Figure 8 query, verbatim ==")
    result = warehouse.query(FIGURE_8)
    print(result.to_table())
    print()

    print("== 2. the same query built visually (keyword mode) ==")
    builder = (KeywordSearchBuilder(warehouse)
               .add_database("hlx_embl.inv")
               .add_database("hlx_sprot.all")
               .keyword("cdc6")
               .retrieve("hlx_sprot.all", "sprot_accession_number")
               .retrieve("hlx_embl.inv", "embl_accession_number"))
    print("-- Translate Query button output --")
    print(builder.translate())
    print(f"-- runs to {len(builder.run())} rows (same as above)\n")

    print("== 3. SRS-style baseline: index on ID/DE/KW lines only ==")
    embl_index = FlatFileIndex.build("hlx_embl", corpus.embl_text,
                                     ("ID", "DE", "KW"))
    hits = embl_index.search("cdc6")
    print(f"flat-file index finds {len(hits)} EMBL entries for 'cdc6'")
    print("but: a cdc6 mentioned only in an FT qualifier is invisible to")
    print("the flat index, and no cross-database join can be expressed —")
    print("only predefined link traversal (see repro.baselines.flatscan).")


if __name__ == "__main__":
    main()
