"""Figures 7a/7b and 9: the sub-tree search workflow.

Walks the whole GUI flow in text form: show the DTD tree (left panel),
click a sub-tree and enter a keyword (right panel), press "Translate
Query", run it, view results as table and XML, then click a result to
see its full document.

Run:  python examples/subtree_search.py
"""

from repro import Warehouse
from repro.qbe import SubtreeSearchBuilder
from repro.synth import build_corpus


def main() -> None:
    warehouse = Warehouse()
    warehouse.load_corpus(build_corpus(seed=7, enzyme_count=60,
                                       embl_count=40, sprot_count=40))

    print("== left panel: DTD structure of the ENZYME documents ==")
    print(warehouse.dtd_tree("hlx_enzyme").render())
    print()

    # right panel: the user clicks catalytic_activity, types "ketone",
    # and selects enzyme_id + enzyme_description for retrieval
    builder = (SubtreeSearchBuilder(warehouse, "hlx_enzyme.DEFAULT")
               .search_in("catalytic_activity", "ketone")
               .retrieve("enzyme_id")
               .retrieve("enzyme_description"))

    print('== "Translate Query" button (Figure 9) ==')
    query_text = builder.translate()
    print(query_text)
    print()

    result = warehouse.query(query_text)
    print("== results, table view (Figure 7b left panel) ==")
    print(result.to_table())
    print()
    print("== results, XML view ==")
    print(result.to_xml())

    if result.rows:
        print("== clicking the first enzyme_id (Figure 7b right panel) ==")
        print(warehouse.fetch_document_xml(result.rows[0], "a"))

    # complex conjunctive and disjunctive constraints (paper §3.1)
    print("== disjunctive variant ==")
    complex_builder = (SubtreeSearchBuilder(warehouse, "hlx_enzyme.DEFAULT")
                       .search_in("catalytic_activity", "ketone")
                       .search_in("cofactor_list", "copper", connector="or")
                       .retrieve("enzyme_id"))
    print(complex_builder.translate())
    print(f"{len(complex_builder.run())} rows")


if __name__ == "__main__":
    main()
