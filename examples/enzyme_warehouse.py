"""The full Data Hounds pipeline on the paper's ENZYME example.

Covers Figures 1-6: a (simulated) FTP repository publishes ENZYME
releases; the hound fetches, transforms to XML against the Figure 5
DTD, shreds into the relational warehouse, then applies an incremental
update — firing change triggers to a subscribed application.

Run:  python examples/enzyme_warehouse.py
"""

from repro import Warehouse
from repro.datahounds import InMemoryRepository
from repro.datahounds.sources.enzyme import SAMPLE_ENTRY
from repro.synth import generate_enzyme_release, mutate_release
from repro.xmlkit import serialize


def main() -> None:
    # A remote repository with release r1: the paper's Figure 2 sample
    # entry plus 30 synthetic entries in the same line format.
    release_1 = SAMPLE_ENTRY + generate_enzyme_release(seed=42, count=30)
    repository = InMemoryRepository()
    repository.publish("hlx_enzyme", "r1", release_1)

    warehouse = Warehouse()
    hound = warehouse.connect(repository)

    # An application subscribes to warehouse change triggers.
    def on_change(event):
        print(f"  [trigger] {event}")

    hound.subscribe(on_change, "hlx_enzyme")

    print("== initial load (release r1) ==")
    report = hound.load("hlx_enzyme")
    print(f"  {report}\n")

    # Figure 6: the XML the transformer produced for the Figure 2 entry,
    # reconstructed from relational tuples.
    print("== Figure 6: XML of entry 1.14.17.3, rebuilt from tuples ==")
    from repro.shredding import reconstruct_by_entry
    document = reconstruct_by_entry(warehouse.backend, "hlx_enzyme",
                                    "1.14.17.3")
    print(serialize(document))

    # The remote source publishes r2 with some entries changed/removed.
    repository.publish(
        "hlx_enzyme", "r2",
        mutate_release(release_1, seed=9, update_fraction=0.2,
                       remove_fraction=0.1))

    print("== refresh to release r2 (incremental) ==")
    report = hound.load("hlx_enzyme")
    print(f"  {report}")
    print(f"  unchanged entries skipped: {len(report.plan.unchanged)}\n")

    # Query the refreshed warehouse.
    result = warehouse.query('''
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE contains($a//comment_list, "updated")
        RETURN $a//enzyme_id
    ''')
    print("entries carrying the r2 update marker:")
    print(result.to_table())


if __name__ == "__main__":
    main()
