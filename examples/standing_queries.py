"""Standing queries: applications living on top of the warehouse.

The gRNA loop: Data Hounds refreshes the warehouse from remote
releases and "sends out triggers to related applications"; XomatiQ
results are "fed into a variety of applications". A
`QuerySubscription` wires the two together — here, a mock monitoring
application watches for enzymes whose annotations mention copper and
gets row-level deltas as releases roll in.

Run:  python examples/standing_queries.py
"""

from repro import QuerySubscription, Warehouse
from repro.datahounds import InMemoryRepository
from repro.synth import generate_enzyme_release, mutate_release

WATCH_QUERY = '''
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//cofactor_list, "copper")
RETURN $a//enzyme_id, $a//enzyme_description
'''


def main() -> None:
    repository = InMemoryRepository()
    release_1 = generate_enzyme_release(seed=101, count=40)
    repository.publish("hlx_enzyme", "r1", release_1)

    warehouse = Warehouse()
    hound = warehouse.connect(repository)

    def application(delta):
        print(f"  [app] {delta}")
        for row in delta.added:
            print(f"        + {row.first('enzyme_id')}  "
                  f"{row.first('enzyme_description')}")
        for row in delta.removed:
            print(f"        - {row.first('enzyme_id')}")

    subscription = QuerySubscription(warehouse, hound, WATCH_QUERY,
                                     on_change=application)
    print(f"watching sources: {subscription.sources}\n")

    print("== load r1 ==")
    hound.load("hlx_enzyme")

    print("\n== r2: some entries change, some disappear ==")
    release_2 = mutate_release(release_1, seed=7, update_fraction=0.3,
                               remove_fraction=0.15)
    repository.publish("hlx_enzyme", "r2", release_2)
    hound.load("hlx_enzyme")

    print("\n== r2 again: no changes, no callback ==")
    report = hound.load("hlx_enzyme")
    print(f"  (refresh was a no-op: {report.plan.is_noop})")

    print("\n== final standing result ==")
    print(subscription.last_result.to_table())


if __name__ == "__main__":
    main()
