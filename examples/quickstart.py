"""Quickstart: warehouse a corpus and run a XomatiQ query.

Run:  python examples/quickstart.py
"""

from repro import Warehouse
from repro.synth import build_corpus


def main() -> None:
    # 1. A warehouse over an in-memory SQLite database. The relational
    #    engine stays completely hidden behind the XML query surface.
    warehouse = Warehouse()

    # 2. Data Hounds-style loading: three cross-linked synthetic
    #    releases (ENZYME, EMBL, Swiss-Prot) in their flat-file formats.
    corpus = build_corpus(seed=7, enzyme_count=60, embl_count=80,
                          sprot_count=60)
    counts = warehouse.load_corpus(corpus)
    print(f"loaded: {counts}")
    print(f"warehoused documents: {warehouse.document_names()}\n")

    # 3. The paper's Figure 9 query: find enzymes whose catalytic
    #    activity mentions a keyword, via the relational engine.
    result = warehouse.query('''
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE contains($a//catalytic_activity, "ketone")
        RETURN $a//enzyme_id, $a//enzyme_description
    ''')

    # 4. Results, both ways the paper's GUI offers them.
    print(result.to_table())
    print()
    print(result.to_xml())

    # 5. Click-through: the document behind the first result row.
    if result.rows:
        print(warehouse.fetch_document_xml(result.rows[0], "a"))


if __name__ == "__main__":
    main()
