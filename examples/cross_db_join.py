"""Figures 10-12: the cross-database join query.

Finds EMBL entries (division inv) whose feature table carries an
``EC_number`` qualifier matching a characterized enzyme in ENZYME —
"in effect the query performs a join operation between the database
references". Also prints the SQL the XQ2SQL-transformer generates,
which the paper keeps proprietary.

Run:  python examples/cross_db_join.py
"""

from repro import Warehouse
from repro.qbe import JoinQueryBuilder
from repro.synth import build_corpus

FIGURE_11 = '''
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description
'''


def main() -> None:
    warehouse = Warehouse()
    warehouse.load_corpus(build_corpus(seed=7, enzyme_count=60,
                                       embl_count=100, sprot_count=40))

    print("== the generated SQL (XQ2SQL-transformer output) ==")
    compiled = warehouse.translate(FIGURE_11)
    for index, statement in enumerate(compiled.statements(), 1):
        print(f"-- statement {index}")
        print(statement)
        print()

    print("== Figure 12: join results ==")
    result = warehouse.query(FIGURE_11)
    print(result.to_table())
    print()

    print("== the same join built visually (Figure 10's three panels) ==")
    builder = (JoinQueryBuilder(warehouse)
               .add_database("hlx_embl.inv")            # left panel
               .add_database("hlx_enzyme.DEFAULT")      # right panel
               .join("hlx_embl.inv",                    # middle panel
                     'qualifier[@qualifier_type = "EC_number"]',
                     "hlx_enzyme.DEFAULT", "enzyme_id")
               .retrieve("hlx_embl.inv", "embl_accession_number",
                         alias="Accession_Number")
               .retrieve("hlx_embl.inv", "description",
                         alias="Accession_Description"))
    print(builder.translate())
    print(f"\n{len(builder.run())} rows (matches the verbatim query)")


if __name__ == "__main__":
    main()
