"""Correlating enzymes with disease information (OMIM-style databank).

The paper's introduction motivates exactly this: "It is useful to
correlate these databases with ... information on disease" (its
reference [26] is OMIM). The ENZYME format carries the hook — DI lines
point at MIM catalogue numbers — and the Figure 5 DTD exposes them as
``disease/@mim_id``. With an OMIM-style warehouse loaded, the
correlation is one join query.

Run:  python examples/disease_correlation.py
"""

from repro import Warehouse
from repro.synth import build_corpus


def main() -> None:
    warehouse = Warehouse()
    corpus = build_corpus(seed=7, enzyme_count=80, embl_count=60,
                          sprot_count=60, omim_count=30)
    print(f"loaded: {warehouse.load_corpus(corpus)}\n")

    print("== disease DTD tree (query-builder left panel) ==")
    print(warehouse.dtd_tree("hlx_omim").render())
    print()

    print("== enzymes whose deficiency causes a characterized disease ==")
    result = warehouse.query('''
        FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
            $d IN document("hlx_omim.DEFAULT")/hlx_disease/db_entry
        WHERE $e//disease/@mim_id = $d/mim_id
        RETURN $e//enzyme_id, $Disease = $d//title, $d//inheritance
    ''')
    print(result.to_table())
    print()

    print("== narrowed to recessive inheritance, with gene symbols ==")
    result = warehouse.query('''
        FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
            $d IN document("hlx_omim.DEFAULT")/hlx_disease/db_entry
        WHERE $e//disease/@mim_id = $d/mim_id
          AND contains($d//inheritance, "recessive")
        RETURN $e//enzyme_id, $d//title, $d//gene_symbol
    ''')
    print(result.to_table())
    print()

    print("== three databases at once: sequence -> enzyme -> disease ==")
    result = warehouse.query('''
        FOR $s IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
            $d IN document("hlx_omim.DEFAULT")/hlx_disease/db_entry
        WHERE $s//qualifier[@qualifier_type = "EC_number"] = $e/enzyme_id
          AND $e//disease/@mim_id = $d/mim_id
        RETURN $s//embl_accession_number, $e//enzyme_id, $d//title
    ''')
    print(result.to_table())


if __name__ == "__main__":
    main()
