"""Beyond the paper's figures: numeric predicates, proximity search,
negation and variable re-rooting — the rest of the implemented XomatiQ
surface.

Run:  python examples/advanced_queries.py
"""

from repro import Warehouse
from repro.synth import build_corpus


def show(warehouse, title, text):
    print(f"== {title} ==")
    print(text.strip())
    result = warehouse.query(text)
    print(result.to_table())
    print()
    return result


def main() -> None:
    warehouse = Warehouse()
    warehouse.load_corpus(build_corpus(seed=7, enzyme_count=50,
                                       embl_count=60, sprot_count=50))

    # numeric typing: sequence lengths compare as numbers, not strings
    # (lexicographically "900" > "1200"; numerically it is not)
    show(warehouse, "numeric range on sequence length", '''
        FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
        WHERE $a//sequence/@length > 800
        RETURN $a//entry_name, $a//sequence/@length
    ''')

    # proximity keyword search: both tokens within a 12-token window
    # ("keywords implicitly meant to be located close to one another")
    show(warehouse, "proximity search (window 12)", '''
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE contains($a, "alcohol ketone", 12)
        RETURN $a//enzyme_id, $a//catalytic_activity
    ''')

    # negation: synthases that do NOT use copper
    show(warehouse, "negation", '''
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE contains($a//enzyme_description, "synthase")
          AND NOT contains($a//cofactor_list, "copper")
        RETURN $a//enzyme_id, $a//enzyme_description
    ''')

    # variable re-rooting: iterate references within matched entries
    show(warehouse, "nested iteration over cross-references", '''
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme,
            $r IN $a//reference
        WHERE contains($a//enzyme_description, "kinase")
        RETURN $a//enzyme_id, $r/@swissprot_accession_number, $r/@name
    ''')

    # three-database correlation in one query
    show(warehouse, "three-way correlation", '''
        FOR $e IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $z IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
            $p IN document("hlx_sprot.all")/hlx_n_sequence/db_entry
        WHERE $e//qualifier[@qualifier_type = "EC_number"] = $z/enzyme_id
          AND $z//reference/@swissprot_accession_number
              = $p/sprot_accession_number
        RETURN $e//embl_accession_number, $z//enzyme_id, $p//entry_name
    ''')

    # sequence motif search (the sequence/non-sequence split at work:
    # the pattern scan runs entirely in the sequences table)
    show(warehouse, "sequence motif search", '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
        WHERE seqcontains($a//sequence, "acg.acgt")
        RETURN $a//embl_accession_number
    ''')

    # order-based operators over the preserved document order
    show(warehouse, "BEFORE/AFTER document-order operators", '''
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE contains($a//catalytic_activity, "ketone")
          AND $a//enzyme_description BEFORE $a//catalytic_activity
        RETURN $a//enzyme_id
    ''')

    # positional predicates: the second alternate name of each entry
    show(warehouse, "positional predicate [2]", '''
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE contains($a//enzyme_description, "synthase")
        RETURN $a//enzyme_id, $a//alternate_name[2]
    ''')

    # element constructors: shape the output document in the query
    print("== element constructor in RETURN ==")
    result = warehouse.query('''
        FOR $e IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $z IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE $e//qualifier[@qualifier_type = "EC_number"] = $z/enzyme_id
        RETURN <match ec={ $z/enzyme_id }>
                 <sequence_entry>{ $e//embl_accession_number }</sequence_entry>
                 <enzyme>{ $z//enzyme_description }</enzyme>
               </match>
    ''')
    print("\n".join(result.to_xml().splitlines()[:14]))


if __name__ == "__main__":
    main()
