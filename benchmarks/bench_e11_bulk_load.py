"""E11 — batched bulk load vs per-document commits.

The seed loader ran one transaction per document: an existing-entry
lookup, up to seven statements, and a commit for every entry of a
release. :class:`~repro.shredding.loader.BulkLoadSession` batches the
same work — one ``executemany`` per table per batch, one commit per
batch, secondary indexes deferred and bulk-built on initial loads.
This experiment measures the store phase of a 2k-entry synthetic
ENZYME release both ways, on an on-disk sqlite warehouse (the
deployment shape: the paper's warehouse is a persistent database, not
a scratch in-memory one).

Expected shape: the bulk pipeline sustains ≥3x the docs/sec of the
per-document-commit path the seed shipped. Note the baseline leg here
runs the *current* code, which is itself faster than the seed
(memoized shredding, reused cursor, bigger page cache), so the
measured in-tree ratio understates the improvement over the seed.
"""

import pytest

from repro.datahounds.registry import SourceRegistry
from repro.engine import Warehouse
from repro.flatfile import parse_entries
from repro.relational import SqliteBackend
from repro.shredding import WarehouseLoader
from repro.synth import generate_enzyme_release

CORPUS_SIZE = 2_000


@pytest.fixture(scope="module")
def staged_docs():
    """Pre-transformed (collection, entry_key, document) triples, so
    the legs time the store phase alone — the hound's two-phase design
    transforms before it stores."""
    text = generate_enzyme_release(seed=11, count=CORPUS_SIZE)
    transformer = SourceRegistry().create("hlx_enzyme")
    return [(transformer.collection_of(entry),
             transformer.entry_key(entry),
             transformer.transform_entry(entry))
            for entry in parse_entries(text)]


@pytest.fixture(scope="module")
def release_text():
    return generate_enzyme_release(seed=11, count=CORPUS_SIZE)


def _fresh_loader(tmp_path_factory):
    path = tmp_path_factory.mktemp("e11") / "warehouse.sqlite"
    return WarehouseLoader(SqliteBackend(path))


def test_e11_per_document_commit_baseline(benchmark, staged_docs,
                                          tmp_path_factory):
    """The seed's strategy: lookup + insert + commit per document."""
    def setup():
        return (_fresh_loader(tmp_path_factory),), {}

    def per_document(loader):
        for collection, key, document in staged_docs:
            loader.store_document("hlx_enzyme", collection, key, document)
        loader.backend.close()

    benchmark.pedantic(per_document, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["documents"] = len(staged_docs)
    benchmark.extra_info["docs_per_second"] = round(
        len(staged_docs) / benchmark.stats.stats.min)


def test_e11_bulk_load_pipeline(benchmark, staged_docs, tmp_path_factory):
    """The batched path: buffered shreds, one executemany per table
    per batch, one commit per batch, deferred index build."""
    def setup():
        return (_fresh_loader(tmp_path_factory),), {}

    def bulk(loader):
        with loader.bulk_session() as session:
            for collection, key, document in staged_docs:
                session.add("hlx_enzyme", collection, key, document)
        loader.backend.close()

    benchmark.pedantic(bulk, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["documents"] = len(staged_docs)
    benchmark.extra_info["docs_per_second"] = round(
        len(staged_docs) / benchmark.stats.stats.min)


def test_e11_bulk_vs_per_document_ratio(benchmark, staged_docs,
                                        tmp_path_factory):
    """Both legs in one process, back to back, so the ratio is not at
    the mercy of cross-run machine drift; the benchmarked callable is
    the bulk leg, the ratio lands in extra_info."""
    import time

    def run_once(fn):
        loader = _fresh_loader(tmp_path_factory)
        start = time.perf_counter()
        fn(loader)
        elapsed = time.perf_counter() - start
        loader.backend.close()
        return elapsed

    def per_document(loader):
        for collection, key, document in staged_docs:
            loader.store_document("hlx_enzyme", collection, key, document)

    def bulk(loader):
        with loader.bulk_session() as session:
            for collection, key, document in staged_docs:
                session.add("hlx_enzyme", collection, key, document)

    per_doc_seconds = min(run_once(per_document) for _ in range(3))
    bulk_seconds = benchmark.pedantic(
        lambda: run_once(bulk), rounds=3, iterations=1)
    bulk_seconds = benchmark.stats.stats.min
    ratio = per_doc_seconds / bulk_seconds
    benchmark.extra_info["documents"] = len(staged_docs)
    benchmark.extra_info["per_document_seconds"] = round(per_doc_seconds, 4)
    benchmark.extra_info["bulk_seconds"] = round(bulk_seconds, 4)
    benchmark.extra_info["speedup"] = round(ratio, 2)
    assert ratio > 1.5, f"bulk path only {ratio:.2f}x over per-document"


def test_e11_end_to_end_load_text(benchmark, release_text,
                                  tmp_path_factory):
    """The whole pipeline a user sees: parse + transform + validate +
    bulk store + ANALYZE (transform cost is shared by both strategies,
    so this leg's speedup is smaller than the store-phase ratio)."""
    def setup():
        path = tmp_path_factory.mktemp("e11") / "warehouse.sqlite"
        return (Warehouse(backend=SqliteBackend(path)),), {}

    def load(warehouse):
        count = warehouse.load_text("hlx_enzyme", release_text)
        warehouse.close()
        return count

    benchmark.pedantic(load, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["documents"] = CORPUS_SIZE
    benchmark.extra_info["docs_per_second"] = round(
        CORPUS_SIZE / benchmark.stats.stats.min)


def test_e11_parallel_shred_workers(benchmark, release_text,
                                    tmp_path_factory):
    """The worker-pool stage. On a single-core box the GIL makes this
    a wash; the leg exists to track the overhead and to light up on
    multi-core runners."""
    def setup():
        path = tmp_path_factory.mktemp("e11") / "warehouse.sqlite"
        return (Warehouse(backend=SqliteBackend(path)),), {}

    def load(warehouse):
        count = warehouse.load_text("hlx_enzyme", release_text, workers=4)
        warehouse.close()
        return count

    benchmark.pedantic(load, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["documents"] = CORPUS_SIZE
    benchmark.extra_info["docs_per_second"] = round(
        CORPUS_SIZE / benchmark.stats.stats.min)
