"""Summarize a pytest-benchmark JSON into per-experiment tables.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/summarize.py bench.json
    python benchmarks/summarize.py profile_results.json   # obs export

Prints one table per experiment (E1-E10) with median latencies and the
row counts recorded in extra_info — the rows EXPERIMENTS.md reports.
Profile exports written by :mod:`repro.obs.export` (``xomatiq profile
--json`` / ``reproduce.py --profile``) are detected by their
``format`` tag and rendered as per-stage breakdown tables instead.
"""

from __future__ import annotations

import json
import re
import sys
from collections import defaultdict

_NAME_RE = re.compile(r"test_(e\d+)_(.+?)(\[(.+)\])?$")


def load(path: str) -> dict[str, list[dict]]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    groups: dict[str, list[dict]] = defaultdict(list)
    for bench in data["benchmarks"]:
        match = _NAME_RE.match(bench["name"])
        if not match:
            continue
        experiment = match.group(1).upper()
        groups[experiment].append({
            "workload": match.group(2),
            "variant": match.group(4) or "",
            "median_ms": bench["stats"]["median"] * 1000,
            "extra": bench.get("extra_info", {}),
        })
    return groups


def format_extra(extra: dict) -> str:
    parts = []
    for key, value in extra.items():
        if key == "scale":
            continue
        if key == "stages" and isinstance(value, dict):
            inner = " ".join(f"{stage}={ms:.1f}ms"
                             for stage, ms in value.items())
            parts.append(f"stages[{inner}]")
            continue
        parts.append(f"{key}={value}")
    return " ".join(parts)


def print_profiles(data: dict) -> None:
    """Render a repro.obs profile export: one stage-breakdown block
    per profiled query per backend."""
    for profile in data.get("profiles", []):
        query = " ".join(profile["query"].split())
        if len(query) > 72:
            query = query[:69] + "..."
        print(f"== profile [{profile['backend']}] {query} ==")
        trace = profile.get("trace", {})
        total = trace.get("duration_ms", 0.0)
        print(f"  rows={profile['rows']} total={total:.2f} ms "
              f"sql_statements={profile['sql_statements']} "
              f"sql_rows={profile['sql_rows']} "
              f"sql_ms={profile['sql_ms']:.2f}")
        for stage, ms in profile.get("stages", {}).items():
            share = (ms / total * 100.0) if total else 0.0
            print(f"  {stage:<12} {ms:>10.2f} ms  {share:>5.1f}%")
        print()


def print_tables(groups: dict[str, list[dict]]) -> None:
    for experiment in sorted(groups):
        print(f"== {experiment} ==")
        rows = sorted(groups[experiment],
                      key=lambda r: (r["workload"], r["variant"]))
        width = max(len(f"{r['workload']} [{r['variant']}]")
                    for r in rows) + 2
        for row in rows:
            label = row["workload"]
            if row["variant"]:
                label += f" [{row['variant']}]"
            print(f"  {label:<{width}} {row['median_ms']:>10.2f} ms   "
                  f"{format_extra(row['extra'])}")
        print()


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        data = json.load(handle)
    if str(data.get("format", "")).startswith("xomatiq-profile"):
        print_profiles(data)
        return 0
    print_tables(load(argv[1]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
