"""Summarize a pytest-benchmark JSON into per-experiment tables.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/summarize.py bench.json

Prints one table per experiment (E1-E10) with median latencies and the
row counts recorded in extra_info — the rows EXPERIMENTS.md reports.
"""

from __future__ import annotations

import json
import re
import sys
from collections import defaultdict

_NAME_RE = re.compile(r"test_(e\d+)_(.+?)(\[(.+)\])?$")


def load(path: str) -> dict[str, list[dict]]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    groups: dict[str, list[dict]] = defaultdict(list)
    for bench in data["benchmarks"]:
        match = _NAME_RE.match(bench["name"])
        if not match:
            continue
        experiment = match.group(1).upper()
        groups[experiment].append({
            "workload": match.group(2),
            "variant": match.group(4) or "",
            "median_ms": bench["stats"]["median"] * 1000,
            "extra": bench.get("extra_info", {}),
        })
    return groups


def format_extra(extra: dict) -> str:
    parts = []
    for key, value in extra.items():
        if key == "scale":
            continue
        parts.append(f"{key}={value}")
    return " ".join(parts)


def print_tables(groups: dict[str, list[dict]]) -> None:
    for experiment in sorted(groups):
        print(f"== {experiment} ==")
        rows = sorted(groups[experiment],
                      key=lambda r: (r["workload"], r["variant"]))
        width = max(len(f"{r['workload']} [{r['variant']}]")
                    for r in rows) + 2
        for row in rows:
            label = row["workload"]
            if row["variant"]:
                label += f" [{row['variant']}]"
            print(f"  {label:<{width}} {row['median_ms']:>10.2f} ms   "
                  f"{format_extra(row['extra'])}")
        print()


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    print_tables(load(argv[1]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
