"""E4 — cross-database join (the paper's Figure 11) across engines and
scales.

The claim under test: correlating warehoused databases via the
relational engine's join machinery beats evaluating the same
correlation by nested document scans — by a factor that grows with
corpus size (the native evaluator is O(|EMBL| x |ENZYME|) path
evaluations; the relational engines hash-join value tables).
"""

import pytest

from repro.baselines import NativeXmlStore
from repro.engine import Warehouse
from repro.relational import MiniDbBackend, SqliteBackend
from repro.synth import build_corpus

FIG11 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description'''


@pytest.mark.parametrize("engine", ["sqlite", "minidb", "native"])
def test_e4_figure11_join_medium(benchmark, engines, engine,
                                 sqlite_warehouse, minidb_warehouse,
                                 stage_breakdown):
    result = benchmark(engines[engine], FIG11)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)
    if engine in ("sqlite", "minidb"):
        warehouse = (sqlite_warehouse if engine == "sqlite"
                     else minidb_warehouse)
        benchmark.extra_info["stages"] = stage_breakdown(warehouse, FIG11)


SCALES = {"s1": dict(enzyme_count=40, embl_count=60, sprot_count=10),
          "s2": dict(enzyme_count=80, embl_count=120, sprot_count=10),
          "s3": dict(enzyme_count=160, embl_count=240, sprot_count=10)}

_cache = {}


def _engine_at_scale(engine, scale):
    key = (engine, scale)
    if key not in _cache:
        corpus = build_corpus(seed=17, **SCALES[scale])
        if engine == "native":
            store = NativeXmlStore()
            store.load_corpus(corpus)
            _cache[key] = store.query
        else:
            backend = (SqliteBackend() if engine == "sqlite"
                       else MiniDbBackend())
            warehouse = Warehouse(backend=backend)
            warehouse.load_corpus(corpus)
            _cache[key] = warehouse.query
    return _cache[key]


@pytest.mark.parametrize("scale", list(SCALES))
@pytest.mark.parametrize("engine", ["sqlite", "minidb", "native"])
def test_e4_join_scaling(benchmark, engine, scale):
    """The crossover sweep: native degrades quadratically, the
    relational engines sub-linearly in output size."""
    query = _engine_at_scale(engine, scale)
    result = benchmark.pedantic(query, args=(FIG11,), rounds=3,
                                iterations=1, warmup_rounds=1)
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["scale"] = SCALES[scale]
