"""E12 — chaos harvest: convergence and cost under injected faults.

The robustness claim behind the Data Hounds ("without any information
being left out or added twice") has to survive a hostile transport:
connection resets, truncated transfers, corrupted dumps. This
experiment harvests a two-release mirror through a seeded
:class:`FaultInjectingRepository` behind the resilient transport and
asserts the warehouse converges to exactly the fault-free document set
— per-source counts and entry fingerprints — for every fault seed,
while measuring what the chaos costs in wall-clock terms.

Legs:

* fault-free baseline harvest (raw repository),
* fault-free harvest through ``ResilientRepository`` (the wrapper's
  overhead when nothing goes wrong — this is the always-on price),
* chaotic harvest across three fault seeds (the recovery price).

Expected shape: the fault-free resilient leg sits within a few percent
of the baseline (one breaker check + one checksum compare per fetch);
the chaotic legs cost roughly ``1 + injected_fault_rate`` fetches per
release plus retry bookkeeping, and every leg ends in the identical
warehouse state.
"""

import pytest

from repro.datahounds import (
    FaultInjectingRepository,
    FaultPlan,
    InMemoryRepository,
    ResilientRepository,
    RetryPolicy,
)
from repro.engine import Warehouse
from repro.relational import SqliteBackend
from repro.synth import build_corpus, mutate_release

FAULT_SEEDS = [11, 23, 47]
SOURCES = ("hlx_embl", "hlx_enzyme", "hlx_sprot")
SIZES = dict(enzyme_count=40, embl_count=40, sprot_count=40)
RATES = dict(transient_rate=0.15, truncate_rate=0.05, corrupt_rate=0.05)


@pytest.fixture(scope="module")
def mirror_texts():
    """Release texts for a two-release, three-source mirror."""
    corpus = build_corpus(seed=23, **SIZES)
    r1 = corpus.texts()
    r2 = {source: mutate_release(text, seed=29, update_fraction=0.3,
                                 remove_fraction=0.1)
          for source, text in r1.items()}
    return r1, r2


def make_mirror(mirror_texts):
    repo = InMemoryRepository()
    r1, r2 = mirror_texts
    for source, text in r1.items():
        repo.publish(source, "r1", text)
    for source, text in r2.items():
        repo.publish(source, "r2", text)
    return repo


def harvest_releases(warehouse, repo):
    hound = warehouse.connect(repo)
    for release in ("r1", "r2"):
        for source in SOURCES:
            hound.load(source, release)
    return hound


def warehouse_state(warehouse):
    counts = {key: value for key, value in warehouse.stats().items()
              if key.startswith("documents:")}
    fingerprints = {source: dict(fp) for source, (release, fp)
                    in warehouse.loader.load_snapshots().items()}
    return counts, fingerprints


@pytest.fixture(scope="module")
def baseline_state(mirror_texts):
    warehouse = Warehouse(backend=SqliteBackend())
    harvest_releases(warehouse, make_mirror(mirror_texts))
    state = warehouse_state(warehouse)
    warehouse.close()
    return state


def resilient(repo, warehouse):
    return ResilientRepository(
        repo, policy=RetryPolicy(max_attempts=8, base_delay_s=0.0,
                                 jitter=0.0),
        breaker_threshold=50, sleep=lambda s: None,
        metrics=warehouse._metrics_sink, events=warehouse.events)


def test_e12_fault_free_baseline(benchmark, mirror_texts, baseline_state):
    def setup():
        return (Warehouse(backend=SqliteBackend()),
                make_mirror(mirror_texts)), {}

    def run(warehouse, repo):
        harvest_releases(warehouse, repo)
        return warehouse

    warehouse = benchmark.pedantic(run, setup=setup, rounds=3,
                                   iterations=1)
    assert warehouse_state(warehouse) == baseline_state
    benchmark.extra_info["leg"] = "baseline"


def test_e12_resilient_wrapper_fault_free_overhead(benchmark,
                                                   mirror_texts,
                                                   baseline_state):
    """The wrapper's cost when nothing fails — retries never trigger,
    only the breaker check and the per-fetch checksum compare run."""
    def setup():
        warehouse = Warehouse(backend=SqliteBackend())
        return (warehouse,
                resilient(make_mirror(mirror_texts), warehouse)), {}

    def run(warehouse, wrapper):
        harvest_releases(warehouse, wrapper)
        return warehouse

    warehouse = benchmark.pedantic(run, setup=setup, rounds=3,
                                   iterations=1)
    assert warehouse_state(warehouse) == baseline_state
    benchmark.extra_info["leg"] = "resilient-no-faults"


@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_e12_chaotic_harvest_converges(benchmark, seed, mirror_texts,
                                       baseline_state):
    plans = []

    def setup():
        warehouse = Warehouse(backend=SqliteBackend())
        plan = FaultPlan(seed=seed).add_source("*", **RATES)
        plans.append(plan)
        flaky = FaultInjectingRepository(make_mirror(mirror_texts), plan,
                                         sleep=lambda s: None)
        return (warehouse, resilient(flaky, warehouse)), {}

    def run(warehouse, wrapper):
        harvest_releases(warehouse, wrapper)
        return warehouse

    warehouse = benchmark.pedantic(run, setup=setup, rounds=3,
                                   iterations=1)
    # the chaos property: seeded faults + retries end in exactly the
    # fault-free document set, every seed, every round
    assert warehouse_state(warehouse) == baseline_state
    assert plans[-1].injected_total() > 0     # genuinely chaotic
    benchmark.extra_info["leg"] = f"chaos-seed-{seed}"
    benchmark.extra_info["faults_injected"] = plans[-1].injected_total()
    benchmark.extra_info["faults_by_kind"] = {
        kind: sum(count for (__, k), count in plans[-1].injected.items()
                  if k == kind)
        for kind in ("transient", "truncate", "corrupt")}
