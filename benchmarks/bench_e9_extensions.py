"""E9 — extension features (beyond the paper's figures).

Covers the implemented paper-adjacent functionality: sequence motif
search (the query class the sequence split exists for), order-based
BEFORE/AFTER operators, positional predicates, element constructors
and standing-query refresh.
"""

import pytest

MOTIF = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE seqcontains($a//sequence, "acg.ac")
RETURN $a//embl_accession_number'''

ORDER = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
  AND $a//enzyme_description BEFORE $a//catalytic_activity
RETURN $a//enzyme_id'''

POSITIONAL = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//enzyme_id, $a//alternate_name[2]'''

CONSTRUCTOR = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN <hit ec={ $a//enzyme_id }>
         <what>{ $a//enzyme_description }</what>
       </hit>'''

PLAIN_EQUIVALENT = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description'''


@pytest.mark.parametrize("engine", ["sqlite", "minidb", "native"])
def test_e9_sequence_motif(benchmark, engines, engine):
    result = benchmark(engines[engine], MOTIF)
    benchmark.extra_info["rows"] = len(result)


@pytest.mark.parametrize("engine", ["sqlite", "minidb", "native"])
def test_e9_order_operators(benchmark, engines, engine):
    result = benchmark(engines[engine], ORDER)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)


@pytest.mark.parametrize("engine", ["sqlite", "minidb"])
def test_e9_positional_predicate(benchmark, engines, engine):
    result = benchmark(engines[engine], POSITIONAL)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)


def test_e9_constructor_vs_plain(benchmark, sqlite_warehouse):
    """Construction overhead: same data, shaped output."""
    result = benchmark(sqlite_warehouse.query, CONSTRUCTOR)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)


def test_e9_plain_equivalent(benchmark, sqlite_warehouse):
    result = benchmark(sqlite_warehouse.query, PLAIN_EQUIVALENT)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)


def test_e9_subscription_refresh(benchmark, sqlite_warehouse):
    """Standing-query delta computation on an unchanged warehouse."""
    from repro.subscriptions import QuerySubscription

    class _NoHound:
        def subscribe(self, *_args, **_kwargs):
            pass

    subscription = QuerySubscription(sqlite_warehouse, _NoHound(),
                                     PLAIN_EQUIVALENT)
    subscription.refresh()
    delta = benchmark(subscription.refresh)
    assert not delta.changed
