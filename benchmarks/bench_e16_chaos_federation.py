"""E16: federated availability under injected shard faults.

E13 showed the federation answers *fast*; E16 shows it answers *at
all* when shards misbehave. A 2-shard federation (one replica per
shard, loaded with identical entry slices) serves sustained mixed
query load over HTTP while a :class:`~repro.federation.chaos.
FaultInjectingBackend` on each shard primary injects the two failure
shapes that matter:

* **kill** — mid-run, every statement on the ``s0`` primary starts
  raising (a crashed shard process). The executor fails over to the
  replica, the breaker opens after three straight losses, and every
  response must stay 200, complete, and **byte-identical** to a
  monolithic warehouse loaded from the same corpus — the replica
  holds the same entry slice, so a covered loss is invisible.
* **stall** — the primary blackholes: statements block until
  interrupted. Clients send ``X-Deadline-Ms``; the EWMA-based hedge
  fires a duplicate on the replica, first result wins, the straggler
  is interrupted, and repeated hedge losses trip the primary's
  breaker. Once it opens the stalled shard is skipped outright, so
  it cannot push p95 anywhere near the deadline.

Exit status 1 on any non-200, any byte drift, a breaker that never
opened, or a post-open p95 at/over the deadline. The JSON artifact
carries per-phase latency, status counts, and the
``federation.failovers`` / ``hedges`` / ``hedge_wins`` /
``breaker_skips`` / ``interrupts`` counters the run produced — CI
runs ``--smoke`` as a step and uploads it.

Usage::

    python benchmarks/bench_e16_chaos_federation.py [--smoke]
        [--clients 6] [--requests 18] [--deadline-ms 2000]
        [--json artifact.json]
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

ENZYME_QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'WHERE contains($a//catalytic_activity, "ketone") '
                'RETURN $a//enzyme_id, $a//enzyme_description')

JOIN_QUERY = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number'''

LEGS = {"subtree": ENZYME_QUERY, "join": JOIN_QUERY}


def build_corpus(args):
    from repro.synth import build_corpus as build
    return build(seed=args.seed, enzyme_count=args.enzyme,
                 embl_count=args.embl, sprot_count=args.sprot)


def monolithic_baseline(corpus) -> dict[str, bytes]:
    """The byte-identity oracle: each leg's XML from one warehouse
    loaded with the full corpus."""
    from repro.engine import Warehouse
    warehouse = Warehouse()
    warehouse.load_corpus(corpus)
    try:
        return {leg: warehouse.query(text).to_xml().encode("utf-8")
                for leg, text in LEGS.items()}
    finally:
        warehouse.close()


def start_federation(corpus, args):
    """A replicated in-memory federation behind an HTTP server, with
    a chaos wrapper on each shard primary. Returns
    ``(server, thread, wrappers)``."""
    from repro.federation import (
        ChaosPlan,
        FaultPolicy,
        FederatedXomatiQ,
        ShardCatalog,
        inject_faults,
    )
    from repro.obs import MetricsRegistry
    from repro.service import ServiceConfig, serve
    catalog = ShardCatalog()
    for name in ("s0", "s1"):
        catalog.add_shard(name)
        catalog.add_replica(name)
    catalog.assign("hlx_enzyme", "s0")
    catalog.assign("hlx_sprot", "s1")
    catalog.assign("hlx_embl", "s0", "s1")
    policy = FaultPolicy(
        breaker_threshold=3,
        # longer than a phase, so an opened breaker stays open for
        # the rest of it — "skipped instantly" holds to the end
        breaker_cooldown_s=args.breaker_cooldown_s,
        hedge=True)
    federation = FederatedXomatiQ(catalog, metrics=MetricsRegistry(),
                                  fault_policy=policy)
    federation.load_corpus(corpus)
    # the stall safety valve models the statement timeout a real DB
    # driver would enforce: un-interrupted stalls clear on their own
    # in sub-second time instead of wedging facade-side probes
    plan = ChaosPlan().add_backend("*", stall_s=args.stall_valve_s)
    wrappers = {name: inject_faults(catalog.warehouse(name), plan=plan,
                                    name=name)
                for name in ("s0", "s1")}
    config = ServiceConfig(host="127.0.0.1", port=0,
                           max_in_flight=max(64, args.clients * 2))
    server = serve(federation, config)
    thread = threading.Thread(target=server.serve_forever,
                              name="bench-e16-server", daemon=True)
    thread.start()
    return server, thread, wrappers


class Client:
    """One keep-alive connection cycling the query legs as XML."""

    def __init__(self, server, index: int, requests: int,
                 deadline_ms: float | None, progress):
        self.host, self.port = server.server_address[:2]
        self.index = index
        self.requests = requests
        self.deadline_ms = deadline_ms
        self.progress = progress
        #: per request: (leg, status, seconds, body, started_at)
        self.samples: list[tuple] = []
        self.errors: list[str] = []

    def run(self) -> None:
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=60)
        try:
            for turn in range(self.requests):
                leg = list(LEGS)[(self.index + turn) % len(LEGS)]
                body = json.dumps({"query": LEGS[leg],
                                   "format": "xml"}).encode()
                headers = {"Content-Type": "application/json",
                           "X-Client-Id": f"client-{self.index}"}
                if self.deadline_ms is not None:
                    headers["X-Deadline-Ms"] = str(self.deadline_ms)
                started = time.perf_counter()
                connection.request("POST", "/query", body=body,
                                   headers=headers)
                response = connection.getresponse()
                payload = response.read()
                self.samples.append((leg, response.status,
                                     time.perf_counter() - started,
                                     payload, started))
                self.progress()
        except Exception as exc:  # noqa: BLE001 - a drop is a failure
            self.errors.append(f"client {self.index}: {exc}")
        finally:
            connection.close()


def run_phase(server, args, deadline_ms, trigger_after, fault) -> dict:
    """Drive sustained load; after ``trigger_after`` responses call
    ``fault()`` (the mid-run kill/stall). Returns the raw samples."""
    done = 0
    lock = threading.Lock()
    fault_at = [None]

    def progress():
        nonlocal done
        with lock:
            done += 1
            if done == trigger_after and fault_at[0] is None:
                fault()
                fault_at[0] = time.perf_counter()

    clients = [Client(server, index, args.requests, deadline_ms,
                      progress)
               for index in range(args.clients)]
    threads = [threading.Thread(target=client.run) for client in clients]
    started = time.perf_counter()
    for worker in threads:
        worker.start()
    for worker in threads:
        worker.join()
    return {"elapsed": time.perf_counter() - started,
            "fault_at": fault_at[0],
            "samples": [s for c in clients for s in c.samples],
            "errors": [e for c in clients for e in c.errors]}


def federation_counters(server) -> dict:
    """The fault-tolerance counters and breaker gauges after a run."""
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request("GET", "/metrics")
        snapshot = json.loads(connection.getresponse().read())
    finally:
        connection.close()
    names = ("federation.failovers", "federation.hedges",
             "federation.hedge_wins", "federation.breaker_skips",
             "federation.shard_retries", "federation.shard_timeouts",
             "federation.interrupts")
    out = {name.split(".", 1)[1]: 0 for name in names}
    for counter in snapshot.get("counters", []):
        if counter["name"] in names:
            key = counter["name"].split(".", 1)[1]
            out[key] += int(counter["value"])
    out["breaker_state"] = {
        gauge["labels"].get("backend", "?"): int(gauge["value"])
        for gauge in snapshot.get("gauges", [])
        if gauge["name"] == "federation.breaker_state"}
    return out


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def summarize(phase: dict, baseline: dict[str, bytes]) -> dict:
    """Availability + byte-identity + latency over one phase's
    samples (latency split at the fault-injection instant)."""
    statuses: dict[int, int] = {}
    mismatches = 0
    before, after = [], []
    for leg, status, seconds, body, started in phase["samples"]:
        statuses[status] = statuses.get(status, 0) + 1
        if status == 200 and body != baseline[leg]:
            mismatches += 1
        if phase["fault_at"] is not None and started >= phase["fault_at"]:
            after.append(seconds)
        else:
            before.append(seconds)
    return {
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "failures": sum(count for status, count in statuses.items()
                        if status != 200),
        "mismatches": mismatches,
        "errors": phase["errors"],
        "elapsed_seconds": round(phase["elapsed"], 3),
        "latency_ms": {
            "pre_fault": {"n": len(before),
                          "p50": round(percentile(before, .5) * 1e3, 2),
                          "p95": round(percentile(before, .95) * 1e3, 2)},
            "during_fault": {
                "n": len(after),
                "p50": round(percentile(after, .5) * 1e3, 2),
                "p95": round(percentile(after, .95) * 1e3, 2)},
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=18,
                        help="requests per client per phase")
    parser.add_argument("--deadline-ms", type=float, default=2000.0,
                        help="X-Deadline-Ms sent during the stall phase")
    parser.add_argument("--breaker-cooldown-s", type=float, default=120.0)
    parser.add_argument("--stall-valve-s", type=float, default=0.5,
                        help="stalled statements error out on their "
                             "own after this long (a driver-side "
                             "statement timeout)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--enzyme", type=int, default=30)
    parser.add_argument("--embl", type=int, default=40)
    parser.add_argument("--sprot", type=int, default=30)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small corpus, few clients)")
    parser.add_argument("--json", default=None,
                        help="write the JSON artifact to this path")
    args = parser.parse_args()
    if args.smoke:
        args.clients = min(args.clients, 4)
        args.requests = min(args.requests, 10)
        args.enzyme, args.embl, args.sprot = 12, 16, 12

    corpus = build_corpus(args)
    baseline = monolithic_baseline(corpus)
    print(f"corpus: enzyme={args.enzyme} embl={args.embl} "
          f"sprot={args.sprot}; {args.clients} clients x "
          f"{args.requests} requests per phase")

    trigger = max(1, (args.clients * args.requests) // 3)
    phases: dict[str, dict] = {}
    failures: list[str] = []

    # -- phase A: kill the s0 primary mid-run -------------------------------
    server, thread, wrappers = start_federation(corpus, args)
    try:
        phase = run_phase(server, args, deadline_ms=None,
                          trigger_after=trigger,
                          fault=lambda: wrappers["s0"].force("error"))
        counters = federation_counters(server)
    finally:
        server.close()
        thread.join(timeout=10)
    report = summarize(phase, baseline)
    report["counters"] = counters
    phases["kill"] = report
    if report["failures"] or report["errors"]:
        failures.append(f"kill: {report['failures']} non-200 responses, "
                        f"{len(report['errors'])} dropped clients")
    if report["mismatches"]:
        failures.append(f"kill: {report['mismatches']} responses "
                        "drifted from the monolithic baseline")
    if not (counters["failovers"] or counters["breaker_skips"]):
        failures.append("kill: no failovers or breaker skips recorded "
                        "— did the fault inject?")
    print(f"kill : statuses={report['statuses']} "
          f"mismatches={report['mismatches']} "
          f"failovers={counters['failovers']} "
          f"breaker_skips={counters['breaker_skips']} "
          f"breaker_state={counters['breaker_state']}")

    # -- phase B: stall the s0 primary, clients carry a deadline ------------
    server, thread, wrappers = start_federation(corpus, args)
    try:
        # stall from the very first request: the phase measures how
        # fast hedges + the breaker wall the stalled primary off
        wrappers["s0"].force("stall")
        phase = run_phase(server, args, deadline_ms=args.deadline_ms,
                          trigger_after=1, fault=lambda: None)
        counters = federation_counters(server)
        # post-open tail: requests issued once the breaker opened
        open_p95 = None
        if counters["breaker_state"].get("s0") == 1:
            # breaker open by phase end — measure the last third,
            # which ran against the walled-off primary
            tail = sorted(phase["samples"], key=lambda s: s[4])
            tail = [s[2] for s in tail[-max(1, len(tail) // 3):]]
            open_p95 = percentile(tail, .95)
    finally:
        server.close()
        thread.join(timeout=10)
    report = summarize(phase, baseline)
    report["counters"] = counters
    report["post_open_p95_ms"] = (round(open_p95 * 1e3, 2)
                                  if open_p95 is not None else None)
    phases["stall"] = report
    if report["failures"] or report["errors"]:
        failures.append(f"stall: {report['failures']} non-200 responses,"
                        f" {len(report['errors'])} dropped clients")
    if report["mismatches"]:
        failures.append(f"stall: {report['mismatches']} responses "
                        "drifted from the monolithic baseline")
    if not counters["hedges"]:
        failures.append("stall: no hedged subqueries fired")
    if counters["breaker_state"].get("s0") != 1:
        failures.append("stall: the s0 breaker never opened")
    elif open_p95 is not None and open_p95 * 1000.0 >= args.deadline_ms:
        failures.append(f"stall: post-open p95 "
                        f"{open_p95 * 1000.0:.1f}ms is not under the "
                        f"{args.deadline_ms:.0f}ms deadline")
    print(f"stall: statuses={report['statuses']} "
          f"hedges={counters['hedges']} "
          f"hedge_wins={counters['hedge_wins']} "
          f"interrupts={counters['interrupts']} "
          f"breaker_state={counters['breaker_state']} "
          f"post_open_p95={report['post_open_p95_ms']}ms "
          f"(deadline {args.deadline_ms:.0f}ms)")

    ok = not failures
    for failure in failures:
        print(f"FAIL: {failure}")
    if ok:
        print("OK: 100% availability, byte-identical answers, breaker "
              "walled off the faulty shard in both phases")

    if args.json:
        artifact = {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "deadline_ms": args.deadline_ms,
            "corpus": {"seed": args.seed, "enzyme": args.enzyme,
                       "embl": args.embl, "sprot": args.sprot},
            "phases": phases,
            "failures": failures,
            "ok": ok,
        }
        Path(args.json).write_text(json.dumps(artifact, indent=2))
        print(f"artifact: {args.json}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
