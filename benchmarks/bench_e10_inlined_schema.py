"""E10 — generic edge schema vs DTD-aware inlined schema.

The paper shreds into a *generic* schema; its reference [40]
(Shanmugasundaram et al.) derives *inlined* per-DTD schemas instead.
We run both over the same corpus:

* load throughput,
* the Figure 11 join (hand-written SQL on inlined vs XQ2SQL on
  generic),
* the Figure 9 keyword search (LIKE scan on inlined — it has no
  keyword index — vs inverted-index probe on generic).

Expected shape: inlined wins the join (navigation is pre-compiled into
the schema: 4 joins instead of ~11) and loads faster (fewer rows); the
generic schema wins keyword search (inverted index vs LIKE scan) and,
decisively, needs no per-DTD DDL — the flexibility argument the paper
leads with.
"""

import pytest

from repro.datahounds.sources.embl import EmblTransformer
from repro.datahounds.sources.enzyme import EnzymeTransformer
from repro.engine import Warehouse
from repro.flatfile import parse_entries
from repro.relational import SqliteBackend
from repro.relational.inlined import InlinedSchema

FIG11 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $a//entry_name'''

FIG9 = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id'''

_cache = {}


def keyed(transformer, text):
    return [(transformer.entry_key(e), transformer.transform_entry(e))
            for e in parse_entries(text)]


def inlined_setup(corpus_medium):
    if "inlined" not in _cache:
        backend = SqliteBackend()
        enzyme_schema = InlinedSchema("hlx_enzyme", EnzymeTransformer.dtd)
        embl_schema = InlinedSchema("hlx_embl", EmblTransformer.dtd)
        enzyme_schema.create(backend)
        embl_schema.create(backend)
        enzyme_schema.load_documents(
            backend, keyed(EnzymeTransformer(), corpus_medium.enzyme_text))
        embl_schema.load_documents(
            backend, keyed(EmblTransformer(), corpus_medium.embl_text))
        _cache["inlined"] = (backend, enzyme_schema, embl_schema)
    return _cache["inlined"]


def inlined_join_sql(enzyme_schema, embl_schema):
    feature = next(t for t in embl_schema.tables.values()
                   if t.anchor_tag == "feature")
    qualifier = feature.children[0]
    return f"""
        SELECT e.entry_name
        FROM {embl_schema.entry_table.name} e
        JOIN {feature.name} f ON f.parent_id = e.row_id
        JOIN {qualifier.name} q ON q.parent_id = f.row_id
        JOIN {enzyme_schema.entry_table.name} z ON z.enzyme_id = q.value
        WHERE q.qualifier_type = 'EC_number'"""


def inlined_keyword_sql(enzyme_schema):
    activity = next(t for t in enzyme_schema.tables.values()
                    if t.anchor_tag == "catalytic_activity")
    return (f"SELECT z.enzyme_id FROM {enzyme_schema.entry_table.name} z "
            f"JOIN {activity.name} c ON c.parent_id = z.row_id "
            f"WHERE c.value LIKE '%ketone%'")


class TestLoadThroughput:
    def test_e10_load_generic(self, benchmark, corpus_small):
        def load():
            warehouse = Warehouse(backend=SqliteBackend())
            count = warehouse.load_text("hlx_enzyme",
                                        corpus_small.enzyme_text)
            warehouse.close()
            return count

        loaded = benchmark.pedantic(load, rounds=3, iterations=1)
        benchmark.extra_info["entries"] = loaded

    def test_e10_load_inlined(self, benchmark, corpus_small):
        documents = keyed(EnzymeTransformer(), corpus_small.enzyme_text)

        def load():
            backend = SqliteBackend()
            schema = InlinedSchema("hlx_enzyme", EnzymeTransformer.dtd)
            schema.create(backend)
            count = schema.load_documents(backend, documents)
            backend.close()
            return count

        loaded = benchmark.pedantic(load, rounds=3, iterations=1)
        benchmark.extra_info["entries"] = loaded


class TestQueries:
    def test_e10_join_generic(self, benchmark, sqlite_warehouse):
        result = benchmark(sqlite_warehouse.query, FIG11)
        benchmark.extra_info["rows"] = len(result)

    def test_e10_join_inlined(self, benchmark, corpus_medium,
                              sqlite_warehouse):
        backend, enzyme_schema, embl_schema = inlined_setup(corpus_medium)
        sql = inlined_join_sql(enzyme_schema, embl_schema)
        rows = benchmark(backend.execute, sql)
        # same answer as the generic path
        expected = sorted(sqlite_warehouse.query(FIG11).scalars(
            "entry_name"))
        assert sorted(v for (v,) in rows) == expected
        benchmark.extra_info["rows"] = len(rows)

    def test_e10_keyword_generic(self, benchmark, sqlite_warehouse):
        result = benchmark(sqlite_warehouse.query, FIG9)
        benchmark.extra_info["rows"] = len(result)

    def test_e10_keyword_inlined_like_scan(self, benchmark, corpus_medium):
        backend, enzyme_schema, __ = inlined_setup(corpus_medium)
        sql = inlined_keyword_sql(enzyme_schema)
        rows = benchmark(backend.execute, sql)
        assert rows
        benchmark.extra_info["rows"] = len(rows)
