"""E7 — the string/numeric value split.

The paper stores numeric annotations (sequence length, positions,
scores) in a typed column so that "common queries ... compare these
numeric types across large datasets". Two measurements:

1. Performance: a numeric range predicate answered through the typed
   ``num_value`` column (ordered-index range scan on minidb) vs the
   same rows found by fetching all values and filtering in the client
   (what an untyped store forces).
2. Correctness: with numeric typing disabled at shred time, the same
   XomatiQ query silently returns nothing — and a string comparison of
   the raw text gives a *different, lexicographic* answer. The split
   is not an optimization detail; it changes answers.
"""

import pytest

from repro.engine import Warehouse
from repro.relational import MiniDbBackend, SchemaOptions, SqliteBackend
from repro.shredding import numeric_value

RANGE_QUERY = '''FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
WHERE $a//sequence/@length > 500
RETURN $a//entry_name'''


@pytest.mark.parametrize("backend_name", ["sqlite", "minidb"])
def test_e7_typed_numeric_range(benchmark, sqlite_warehouse,
                                minidb_warehouse, backend_name):
    warehouse = {"sqlite": sqlite_warehouse,
                 "minidb": minidb_warehouse}[backend_name]
    result = benchmark(warehouse.query, RANGE_QUERY)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)


def test_e7_client_side_filter_baseline(benchmark, sqlite_warehouse):
    """The untyped alternative: pull every length out of the engine and
    compare client-side."""
    backend = sqlite_warehouse.backend

    def run():
        rows = backend.execute(
            "SELECT a.value FROM attributes a, elements e, documents d "
            "WHERE d.source = 'hlx_sprot' AND e.doc_id = d.doc_id "
            "AND e.tag = 'sequence' AND a.doc_id = e.doc_id "
            "AND a.node_id = e.node_id AND a.name = 'length'")
        return [v for (v,) in rows
                if numeric_value(v) is not None and numeric_value(v) > 500]

    values = benchmark(run)
    assert values
    benchmark.extra_info["rows"] = len(values)


def test_e7_untyped_schema_changes_answers(corpus_small):
    """Correctness half: numeric typing off → numeric predicates find
    nothing; string comparison gives lexicographic (wrong) results."""
    typed = Warehouse(backend=SqliteBackend())
    typed.load_corpus(corpus_small)
    untyped = Warehouse(backend=SqliteBackend(),
                        options=SchemaOptions(numeric_typing=False))
    untyped.load_corpus(corpus_small)

    typed_rows = len(typed.query(RANGE_QUERY))
    untyped_rows = len(untyped.query(RANGE_QUERY))
    assert typed_rows > 0
    assert untyped_rows == 0   # num_value is NULL everywhere

    # lexicographic string comparison disagrees with numeric comparison
    lex = typed.query(RANGE_QUERY.replace("> 500", '> "500"'))
    lex_set = set(lex.scalars("entry_name"))
    num_set = set(typed.query(RANGE_QUERY).scalars("entry_name"))
    assert lex_set != num_set
