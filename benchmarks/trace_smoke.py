"""CI smoke check for end-to-end request tracing.

Points at a *running* ``xomatiq serve`` instance, sends a small burst
of mixed traffic (joins, keyword lookups, an error or two), and then
verifies the whole tracing pipeline from the outside:

* every response echoes ``X-Request-Id`` and carries ``X-Trace-Id``,
* ``GET /traces`` serves a schema-valid listing,
* the join request's trace resolves by id as one *connected* span
  tree — request → admission → plan → per-shard subqueries (with SQL
  statements) → coordinator join when the service fronts a
  federation, request → admission → query on a single warehouse,
* the Chrome ``trace_event`` export is valid JSON and is written to
  ``--out`` as a CI artifact,
* the Prometheus exposition carries an exemplar pointing back at a
  retained trace.

Exit status 0 on success, 1 with a diagnostic on the first failure.

Usage::

    python benchmarks/trace_smoke.py --url http://127.0.0.1:8014
        [--out trace_chrome.json] [--federated]
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path

JOIN_QUERY = '''
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number
'''

ENZYME_QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'RETURN $a//enzyme_id')


def request(url, payload=None, headers=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, dict(response.headers), \
                response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def walk(span):
    yield span
    for child in span.get("children", []):
        yield from walk(child)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8014")
    parser.add_argument("--out", default="trace_chrome.json",
                        help="Chrome trace_event artifact path")
    parser.add_argument("--federated", action="store_true",
                        help="expect federation spans (shard "
                        "subqueries + coordinator join) in the trace")
    args = parser.parse_args()
    base = args.url.rstrip("/")

    # -- mixed traffic ---------------------------------------------------
    status, headers, body = request(
        base + "/query", payload={"query": JOIN_QUERY},
        headers={"X-Request-Id": "smoke-join"})
    check(status == 200, f"join query returned {status}: {body[:200]}")
    check(headers.get("X-Request-Id") == "smoke-join",
          "X-Request-Id not echoed on the join response")
    trace_id = headers.get("X-Trace-Id", "")
    check(trace_id == "smoke-join",
          f"X-Trace-Id is {trace_id!r}, expected the request id")
    for __ in range(3):
        status, headers, __body = request(
            base + "/query", payload={"query": ENZYME_QUERY})
        check(status == 200, f"enzyme query returned {status}")
        check(headers.get("X-Trace-Id", ""),
              "minted X-Trace-Id missing on an id-less request")
    status, headers, __body = request(base + "/nope")
    check(status == 404 and headers.get("X-Request-Id"),
          "404 path lost its X-Request-Id header")
    status, __h, __body = request(base + "/query",
                                  payload={"query": "NOT XQUERY ("})
    check(status == 400, f"bad query returned {status}, expected 400")
    print(f"traffic OK: join trace id {trace_id}")

    # -- listing schema --------------------------------------------------
    status, __h, body = request(base + "/traces")
    check(status == 200, f"/traces returned {status}")
    listing = json.loads(body)
    for key in ("count", "offered", "kept", "capacity", "traces"):
        check(key in listing, f"/traces listing missing {key!r}")
    check(listing["count"] >= 4,
          f"only {listing['count']} retained traces after 5+ requests")
    summary_keys = {"trace_id", "root", "endpoint", "status",
                    "duration_ms", "spans", "kept"}
    for summary in listing["traces"]:
        check(summary_keys <= set(summary),
              f"trace summary missing keys: {summary}")
    ids = [summary["trace_id"] for summary in listing["traces"]]
    check("smoke-join" in ids, "join trace not in the listing")
    print(f"listing OK: {listing['kept']}/{listing['offered']} kept, "
          f"capacity {listing['capacity']}")

    # -- span tree -------------------------------------------------------
    status, __h, body = request(base + f"/traces/{trace_id}")
    check(status == 200, f"/traces/{trace_id} returned {status}")
    payload = json.loads(body)
    check(payload.get("format") == "xomatiq-trace/1",
          f"unexpected trace format {payload.get('format')!r}")
    root = payload["root"]
    check(root["name"] == "request", f"root span is {root['name']!r}")
    spans = list(walk(root))
    by_id = {span["span_id"]: span for span in spans}
    for span in spans:
        check(span["trace_id"] == trace_id,
              f"span {span['name']} has foreign trace id")
        if span is not root:
            check(span["parent_id"] in by_id,
                  f"span {span['name']} is orphaned")
    names = {span["name"] for span in spans}
    check("admission" in names, "no admission span in the trace")
    if args.federated:
        for expected in ("plan", "federated_query", "shard_subquery",
                         "coordinator_join"):
            check(expected in names, f"no {expected} span in the trace")
        shard_spans = [span for span in spans
                       if span["name"] == "shard_subquery"]
        for shard_span in shard_spans:
            statements = [stmt for span in walk(shard_span)
                          for stmt in span.get("statements", [])]
            check(bool(statements),
                  f"shard {shard_span['meta'].get('shard')} subquery "
                  "has no SQL statements")
        shards = sorted(span["meta"].get("shard", "")
                        for span in shard_spans)
        print(f"span tree OK: {len(spans)} spans, shards {shards}")
    else:
        check("query" in names, "no query span in the trace")
        statements = [stmt for span in spans
                      for stmt in span.get("statements", [])]
        check(bool(statements), "no SQL statements in the trace")
        print(f"span tree OK: {len(spans)} spans")

    # -- Chrome export ---------------------------------------------------
    status, __h, body = request(
        base + f"/traces/{trace_id}?format=chrome")
    check(status == 200, f"chrome export returned {status}")
    chrome = json.loads(body)
    events = chrome.get("traceEvents", [])
    check(any(event.get("ph") == "X" for event in events),
          "chrome export has no complete events")
    check(chrome.get("otherData", {}).get("trace_id") == trace_id,
          "chrome export lost the trace id")
    Path(args.out).write_text(json.dumps(chrome, indent=2),
                              encoding="utf-8")
    print(f"chrome export OK: {len(events)} events -> {args.out}")

    # -- exemplar --------------------------------------------------------
    status, __h, body = request(base + "/metrics?format=prometheus")
    check(status == 200, f"/metrics returned {status}")
    text = body.decode()
    exemplars = [line for line in text.splitlines()
                 if "_bucket" in line and " # " in line]
    check(any("service_request_seconds_bucket" in line
              for line in exemplars),
          "no exemplar on service_request_seconds buckets")
    check(any(f'trace_id="{trace_id}"' in line for line in exemplars)
          or any('trace_id="' in line for line in exemplars),
          "exemplars carry no trace ids")
    print(f"exemplars OK: {len(exemplars)} bucket lines linked")
    print("trace smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
