"""E1 — warehouse load throughput (paper claim: Data Hounds
"efficiently warehouse data locally").

Measures the full transform+shred+load path (flat text → XML documents →
generic-schema rows in the backend) at three corpus sizes, for both
relational backends. ``entries_per_second`` lands in extra_info.
"""

import pytest

from repro.engine import Warehouse
from repro.relational import MiniDbBackend, SqliteBackend
from repro.synth import generate_enzyme_release

SIZES = [50, 150, 400]
BACKENDS = {"sqlite": SqliteBackend, "minidb": MiniDbBackend}


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("backend_name", list(BACKENDS))
def test_e1_load_enzyme_release(benchmark, backend_name, size):
    text = generate_enzyme_release(seed=13, count=size)

    def load():
        warehouse = Warehouse(backend=BACKENDS[backend_name]())
        count = warehouse.load_text("hlx_enzyme", text)
        warehouse.close()
        return count

    loaded = benchmark.pedantic(load, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert loaded == size
    benchmark.extra_info["entries"] = size
    benchmark.extra_info["entries_per_second"] = round(
        size / benchmark.stats.stats.mean, 1)


def test_e1_transform_only(benchmark, corpus_small):
    """The XML-transformation half alone (no relational load), to show
    where load time goes."""
    from repro.datahounds.sources.enzyme import EnzymeTransformer
    transformer = EnzymeTransformer()
    docs = benchmark(lambda: transformer.transform_text(
        corpus_small.enzyme_text))
    assert len(docs) == corpus_small.sizes()["hlx_enzyme"]
