"""E2 — keyword query (the paper's Figure 8) across engines.

The claim under test: keyword searches pushed into the relational
engine via the inverted keyword index are efficient, versus (a) the
native-XML tree-walking evaluator, which tokenizes documents on the
fly, and (b) the SRS-style flat-file index, which is fast but only
sees its pre-indexed fields.

Expected shape: sqlite ≈ minidb ≪ native; flatscan fast but answering
a weaker question (no join, indexed fields only).
"""

import pytest

FIG8 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
     $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains ($a, "cdc6", any)
AND   contains ($b, "cdc6", any)
RETURN
     $b//sprot_accession_number,
     $a//embl_accession_number'''

SINGLE_DB = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE contains($a, "cdc6", any)
RETURN $a//embl_accession_number'''


@pytest.mark.parametrize("engine", ["sqlite", "minidb", "native"])
def test_e2_figure8_two_database_keyword(benchmark, engines, engine,
                                         sqlite_warehouse,
                                         minidb_warehouse,
                                         stage_breakdown):
    result = benchmark(engines[engine], FIG8)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)
    if engine in ("sqlite", "minidb"):
        warehouse = (sqlite_warehouse if engine == "sqlite"
                     else minidb_warehouse)
        benchmark.extra_info["stages"] = stage_breakdown(warehouse, FIG8)


@pytest.mark.parametrize("engine", ["sqlite", "minidb", "native"])
def test_e2_single_database_keyword(benchmark, engines, engine):
    result = benchmark(engines[engine], SINGLE_DB)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)


def test_e2_flatscan_baseline(benchmark, embl_flat_index):
    """The SRS-class lookup — fast, but only over ID/DE/KW lines and
    with no join capability (expressiveness gap, paper §4)."""
    hits = benchmark(embl_flat_index.search, "cdc6")
    benchmark.extra_info["rows"] = len(hits)


@pytest.mark.parametrize("engine", ["sqlite", "minidb"])
def test_e2_repeated_query_cached(benchmark, engine, sqlite_warehouse,
                                  minidb_warehouse):
    """The dashboard/GUI pattern: the same query re-issued against an
    unchanged warehouse. After the first call the compiled-query cache
    serves the translation, so repeats pay execution cost only —
    compare against the cold figures above to see the compile share
    amortized away."""
    warehouse = (sqlite_warehouse if engine == "sqlite"
                 else minidb_warehouse)
    warehouse.query(FIG8)  # prime the cache
    hits_before = warehouse.xomatiq.cache.hits
    result = benchmark(warehouse.query, FIG8)
    assert warehouse.xomatiq.cache.hits > hits_before
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["cache"] = warehouse.xomatiq.cache.stats()


def test_e2_translation_cache_hit_cost(benchmark, sqlite_warehouse):
    """The hit path in isolation: two dict operations and a generation
    compare — the compile stage amortized to ~0."""
    warehouse = sqlite_warehouse
    warehouse.query(FIG8)  # prime the cache

    def hit():
        compiled, was_hit = warehouse.xomatiq.translate_cached(FIG8)
        assert was_hit
        return compiled

    benchmark(hit)
    benchmark.extra_info["cache"] = warehouse.xomatiq.cache.stats()


def test_e2_translation_cold_cost(benchmark, sqlite_warehouse):
    """The miss path for the same query: full parse + check + compile
    (the denominator of the cache's amortization claim)."""
    warehouse = sqlite_warehouse
    benchmark(warehouse.xomatiq.translate, FIG8)


def test_e2_proximity_keyword(benchmark, sqlite_warehouse):
    """The positional extension: both tokens within a 12-token window."""
    query = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
             'WHERE contains($a, "alcohol ketone", 12) '
             'RETURN $a//enzyme_id')
    result = benchmark(sqlite_warehouse.query, query)
    benchmark.extra_info["rows"] = len(result)
