"""E13 — federated cross-database join: scatter-gather over shards.

Three questions the monolithic experiments (E4) cannot answer:

1. What does federation *cost*? The same Figure 11 join runs against
   one warehouse and against federations of 2, 4 and 8 shards (EMBL
   horizontally partitioned, ENZYME whole). The gap between the
   monolithic bar and the 2-shard bar is the coordinator tax: rows
   shipped out of the shard engines plus the coordinator-side hash
   join, instead of one in-RDBMS join.

2. What does the scatter *buy*? Shard access dominates real
   federations as round-trip latency, not local CPU (HepToX/YeastMed
   mediate *remote* stores). Shards here carry a simulated 25 ms
   round-trip (``ShardSpec.latency_s`` — the same injected-delay
   style as the harvest fault plan's ``stall``), and the same 4-shard
   plan runs once with the thread-pool scatter and once degraded to
   sequential shard visits (``max_workers=1``). Sequential pays the
   sum of the round-trips, scatter pays roughly the max — asserted,
   not just reported.

3. What gets *shipped*? Rows shipped per layout are recorded in
   ``extra_info`` — federated plans ship only projections (join keys
   + output paths), so shipped volume stays flat as shard count grows
   while per-shard work shrinks.
"""

import time

import pytest

from repro.engine import Warehouse
from repro.federation import FederatedXomatiQ, ShardCatalog
from repro.obs import MetricsRegistry
from repro.synth import build_corpus

FIG11 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description'''

CORPUS = dict(enzyme_count=120, embl_count=400, sprot_count=10)

#: simulated shard round-trip for the scatter-vs-sequential pair
REMOTE_LATENCY_S = 0.025

_cache = {}


def _corpus():
    if "corpus" not in _cache:
        _cache["corpus"] = build_corpus(seed=17, **CORPUS)
    return _cache["corpus"]


def _monolithic():
    if "mono" not in _cache:
        warehouse = Warehouse(metrics=False)
        warehouse.load_corpus(_corpus())
        _cache["mono"] = warehouse
    return _cache["mono"]


def _federation(shards: int, max_workers: int | None = None,
                latency_s: float = 0.0):
    """ENZYME whole on s0, EMBL partitioned over the remaining
    ``shards - 1``; a fresh MetricsRegistry per federation so
    rows-shipped counters are attributable."""
    key = ("fed", shards, max_workers, latency_s)
    if key not in _cache:
        catalog = ShardCatalog()
        for index in range(shards):
            catalog.add_shard(f"s{index}", latency_s=latency_s)
        catalog.assign("hlx_enzyme", "s0")
        embl_shards = [f"s{index}" for index in range(1, shards)] \
            or ["s0"]
        catalog.assign("hlx_embl", *embl_shards)
        catalog.assign("hlx_sprot", "s0")
        registry = MetricsRegistry()
        federation = FederatedXomatiQ(catalog, metrics=registry,
                                      max_workers=max_workers)
        federation.load_corpus(_corpus())
        _cache[key] = (federation, registry)
    return _cache[key]


def test_e13_join_monolithic_baseline(benchmark):
    warehouse = _monolithic()
    result = benchmark.pedantic(warehouse.query, args=(FIG11,),
                                rounds=5, iterations=1, warmup_rounds=1)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)
    _cache["expected_xml"] = result.to_xml()


@pytest.mark.parametrize("shards", [2, 4, 8])
def test_e13_join_federated(benchmark, shards):
    federation, registry = _federation(shards)
    result = benchmark.pedantic(federation.query, args=(FIG11,),
                                rounds=5, iterations=1, warmup_rounds=1)
    assert result.complete
    # byte-identical to the monolithic answer, at every shard count
    expected = _cache.get("expected_xml")
    if expected is None:
        expected = _monolithic().query(FIG11).to_xml()
        _cache["expected_xml"] = expected
    assert result.to_xml() == expected
    queries = registry.get_counter("federation.queries")
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["fanout"] = shards
    benchmark.extra_info["rows_shipped_per_query"] = (
        registry.counter_total("federation.rows_shipped") / queries)


@pytest.mark.parametrize("mode", ["scatter", "sequential"])
def test_e13_remote_4shard(benchmark, mode):
    """The scatter-vs-sequential pair over simulated remote shards
    (25 ms round-trip each, 4 tasks)."""
    max_workers = 1 if mode == "sequential" else None
    federation, __ = _federation(4, max_workers=max_workers,
                                 latency_s=REMOTE_LATENCY_S)
    result = benchmark.pedantic(federation.query, args=(FIG11,),
                                rounds=5, iterations=1, warmup_rounds=1)
    assert result.complete
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["latency_s"] = REMOTE_LATENCY_S


def test_e13_scatter_beats_sequential_on_4_shards():
    """Acceptance gate: with 4 remote shards the concurrent scatter
    must finish under the sequential shard-by-shard walk. Sequential
    pays 4 x 25 ms of round-trips; scatter overlaps them, so even
    with the GIL serializing the local CPU work it wins by roughly
    3 round-trips. Best-of-5 each to damp scheduler noise."""
    scatter, __ = _federation(4, latency_s=REMOTE_LATENCY_S)
    sequential, __ = _federation(4, max_workers=1,
                                 latency_s=REMOTE_LATENCY_S)

    def best_of(federation, rounds=5):
        federation.query(FIG11)  # warm compiled-query caches
        times = []
        for __ in range(rounds):
            start = time.perf_counter()
            federation.query(FIG11)
            times.append(time.perf_counter() - start)
        return min(times)

    sequential_s = best_of(sequential)
    scatter_s = best_of(scatter)
    assert scatter_s < sequential_s, (
        f"scatter {scatter_s:.4f}s not faster than "
        f"sequential {sequential_s:.4f}s")
