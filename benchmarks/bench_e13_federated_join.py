"""E13 — federated cross-database join: scatter-gather over shards.

Three questions the monolithic experiments (E4) cannot answer:

1. What does federation *cost*? The same Figure 11 join runs against
   one warehouse and against federations of 2, 4 and 8 shards (EMBL
   horizontally partitioned, ENZYME whole). The gap between the
   monolithic bar and the 2-shard bar is the coordinator tax: rows
   shipped out of the shard engines plus the coordinator-side hash
   join, instead of one in-RDBMS join.

2. What does the scatter *buy*? Shard access dominates real
   federations as round-trip latency, not local CPU (HepToX/YeastMed
   mediate *remote* stores). Shards here carry a simulated 25 ms
   round-trip (``ShardSpec.latency_s`` — the same injected-delay
   style as the harvest fault plan's ``stall``), and the same 4-shard
   plan runs once with the thread-pool scatter and once degraded to
   sequential shard visits (``max_workers=1``). Sequential pays the
   sum of the round-trips, scatter pays roughly the max — asserted,
   not just reported.

3. What gets *shipped*? Rows shipped per layout are recorded in
   ``extra_info`` — federated plans ship only projections (join keys
   + output paths), so shipped volume stays flat as shard count grows
   while per-shard work shrinks.
"""

import time

import pytest

from repro.engine import Warehouse
from repro.federation import FederatedXomatiQ, ShardCatalog
from repro.obs import MetricsRegistry
from repro.synth import build_corpus

FIG11 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description'''

CORPUS = dict(enzyme_count=120, embl_count=400, sprot_count=10)

#: simulated shard round-trip for the scatter-vs-sequential pair
REMOTE_LATENCY_S = 0.025

_cache = {}


def _corpus():
    if "corpus" not in _cache:
        _cache["corpus"] = build_corpus(seed=17, **CORPUS)
    return _cache["corpus"]


def _monolithic():
    if "mono" not in _cache:
        warehouse = Warehouse(metrics=False)
        warehouse.load_corpus(_corpus())
        _cache["mono"] = warehouse
    return _cache["mono"]


def _federation(shards: int, max_workers: int | None = None,
                latency_s: float = 0.0):
    """ENZYME whole on s0, EMBL partitioned over the remaining
    ``shards - 1``; a fresh MetricsRegistry per federation so
    rows-shipped counters are attributable."""
    key = ("fed", shards, max_workers, latency_s)
    if key not in _cache:
        catalog = ShardCatalog()
        for index in range(shards):
            catalog.add_shard(f"s{index}", latency_s=latency_s)
        catalog.assign("hlx_enzyme", "s0")
        embl_shards = [f"s{index}" for index in range(1, shards)] \
            or ["s0"]
        catalog.assign("hlx_embl", *embl_shards)
        catalog.assign("hlx_sprot", "s0")
        registry = MetricsRegistry()
        federation = FederatedXomatiQ(catalog, metrics=registry,
                                      max_workers=max_workers)
        federation.load_corpus(_corpus())
        _cache[key] = (federation, registry)
    return _cache[key]


def test_e13_join_monolithic_baseline(benchmark):
    warehouse = _monolithic()
    result = benchmark.pedantic(warehouse.query, args=(FIG11,),
                                rounds=5, iterations=1, warmup_rounds=1)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)
    _cache["expected_xml"] = result.to_xml()


@pytest.mark.parametrize("shards", [2, 4, 8])
def test_e13_join_federated(benchmark, shards):
    federation, registry = _federation(shards)
    result = benchmark.pedantic(federation.query, args=(FIG11,),
                                rounds=5, iterations=1, warmup_rounds=1)
    assert result.complete
    # byte-identical to the monolithic answer, at every shard count
    expected = _cache.get("expected_xml")
    if expected is None:
        expected = _monolithic().query(FIG11).to_xml()
        _cache["expected_xml"] = expected
    assert result.to_xml() == expected
    queries = registry.get_counter("federation.queries")
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["fanout"] = shards
    benchmark.extra_info["rows_shipped_per_query"] = (
        registry.counter_total("federation.rows_shipped") / queries)


@pytest.mark.parametrize("mode", ["scatter", "sequential"])
def test_e13_remote_4shard(benchmark, mode):
    """The scatter-vs-sequential pair over simulated remote shards
    (25 ms round-trip each, 4 tasks)."""
    max_workers = 1 if mode == "sequential" else None
    federation, __ = _federation(4, max_workers=max_workers,
                                 latency_s=REMOTE_LATENCY_S)
    result = benchmark.pedantic(federation.query, args=(FIG11,),
                                rounds=5, iterations=1, warmup_rounds=1)
    assert result.complete
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["latency_s"] = REMOTE_LATENCY_S


def test_e13_scatter_beats_sequential_on_4_shards():
    """Acceptance gate: with 4 remote shards the concurrent scatter
    must finish under the sequential shard-by-shard walk. Sequential
    pays 4 x 25 ms of round-trips; scatter overlaps them, so even
    with the GIL serializing the local CPU work it wins by roughly
    3 round-trips. Best-of-5 each to damp scheduler noise."""
    scatter, __ = _federation(4, latency_s=REMOTE_LATENCY_S)
    sequential, __ = _federation(4, max_workers=1,
                                 latency_s=REMOTE_LATENCY_S)

    def best_of(federation, rounds=5):
        federation.query(FIG11)  # warm compiled-query caches
        times = []
        for __ in range(rounds):
            start = time.perf_counter()
            federation.query(FIG11)
            times.append(time.perf_counter() - start)
        return min(times)

    sequential_s = best_of(sequential)
    scatter_s = best_of(scatter)
    assert scatter_s < sequential_s, (
        f"scatter {scatter_s:.4f}s not faster than "
        f"sequential {sequential_s:.4f}s")


# -- E15: the cost-based optimizer leg ---------------------------------------

#: the selective cross-shard join workload: FIG11 narrowed by a
#: keyword predicate on the build (ENZYME) side, so the semi-join
#: filter ships a short EC-number list into every EMBL shard
SELECTIVE = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
  AND contains($b//catalytic_activity, "ketone")
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description'''


def _optimizer_federation(analyzed: bool):
    """A 4-shard federation for the E15 pair; the ``analyzed`` leg has
    run ``analyze()`` (cost-based plans), the other is rule-based."""
    key = ("e15", analyzed)
    if key not in _cache:
        federation, registry = _federation(4)
        if analyzed:
            # a separate instance so the rule-based leg stays rule-based
            catalog = ShardCatalog()
            for index in range(4):
                catalog.add_shard(f"s{index}")
            catalog.assign("hlx_enzyme", "s0")
            catalog.assign("hlx_embl", "s1", "s2", "s3")
            catalog.assign("hlx_sprot", "s0")
            registry = MetricsRegistry()
            federation = FederatedXomatiQ(catalog, metrics=registry)
            federation.load_corpus(_corpus())
            federation.analyze(persist=False)
        _cache[key] = (federation, registry)
    return _cache[key]


@pytest.mark.parametrize("planner", ["rule_based", "cost_based"])
def test_e15_optimizer_selective_join(benchmark, planner):
    federation, registry = _optimizer_federation(planner == "cost_based")
    result = benchmark.pedantic(federation.query, args=(SELECTIVE,),
                                rounds=5, iterations=1, warmup_rounds=1)
    assert result.complete
    expected = _cache.setdefault(
        "e15_expected_xml", _monolithic().query(SELECTIVE).to_xml())
    assert result.to_xml() == expected
    queries = registry.get_counter("federation.queries")
    benchmark.extra_info["planner"] = planner
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["rows_shipped_per_query"] = (
        registry.counter_total("federation.rows_shipped") / queries)
    benchmark.extra_info["bytes_shipped_per_query"] = (
        registry.counter_total("federation.bytes_shipped") / queries)


def test_e15_optimizer_cuts_shipped_rows_and_tax():
    """Acceptance gate: on the selective cross-shard join the
    cost-based plan must ship >=40% fewer rows than the rule-based
    plan (it ships ~84% fewer: the IN-list filter runs inside each
    EMBL shard's SQL), answer byte-identically, and measurably cut
    the coordinator tax (federated minus monolithic wall time)."""
    baseline, base_registry = _optimizer_federation(False)
    optimized, opt_registry = _optimizer_federation(True)
    mono = _monolithic()

    base_before = base_registry.counter_total("federation.rows_shipped")
    base_queries = base_registry.get_counter("federation.queries")
    base_result = baseline.query(SELECTIVE)
    base_shipped = (base_registry.counter_total("federation.rows_shipped")
                    - base_before)

    opt_before = opt_registry.counter_total("federation.rows_shipped")
    opt_result = optimized.query(SELECTIVE)
    opt_shipped = (opt_registry.counter_total("federation.rows_shipped")
                   - opt_before)

    assert opt_result.to_xml() == base_result.to_xml() \
        == mono.query(SELECTIVE).to_xml()
    assert opt_shipped <= 0.6 * base_shipped, (
        f"optimizer shipped {opt_shipped} rows vs rule-based "
        f"{base_shipped}: less than a 40% cut")
    assert opt_registry.counter_items("federation.semijoin_filters")

    def best_of(engine, rounds=5):
        engine.query(SELECTIVE)     # warm compiled-query caches
        times = []
        for __ in range(rounds):
            start = time.perf_counter()
            engine.query(SELECTIVE)
            times.append(time.perf_counter() - start)
        return min(times)

    mono_s = best_of(mono)
    base_tax = best_of(baseline) - mono_s
    opt_tax = best_of(optimized) - mono_s
    assert opt_tax < base_tax, (
        f"coordinator tax did not drop: rule-based {base_tax:.4f}s, "
        f"cost-based {opt_tax:.4f}s")
