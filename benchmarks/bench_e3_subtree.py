"""E3 — sub-tree query (the paper's Figure 9) across engines.

The claim under test: XomatiQ "permits searches on attributes at any
level" efficiently — a keyword scoped to one element path compiles to
an interval-constrained probe of the keyword index, versus the native
evaluator's per-document subtree tokenization.
"""

import pytest

FIG9 = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id,
       $a//enzyme_description'''

DEEP_SCOPE = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE contains($a//feature_list, "cdc6")
RETURN $a//embl_accession_number'''


@pytest.mark.parametrize("engine", ["sqlite", "minidb", "native"])
def test_e3_figure9_subtree_keyword(benchmark, engines, engine):
    result = benchmark(engines[engine], FIG9)
    assert len(result) > 0
    benchmark.extra_info["rows"] = len(result)


@pytest.mark.parametrize("engine", ["sqlite", "minidb", "native"])
def test_e3_deep_scope_keyword(benchmark, engines, engine):
    """Scope sits two levels down and covers attribute values —
    the 'any level' claim (an SRS-style field index cannot express
    this at all)."""
    result = benchmark(engines[engine], DEEP_SCOPE)
    benchmark.extra_info["rows"] = len(result)


@pytest.mark.parametrize("engine", ["sqlite", "minidb"])
def test_e3_translation_overhead(benchmark, sqlite_warehouse,
                                 minidb_warehouse, engine):
    """XQ2SQL compile time alone — the fixed overhead the relational
    path pays before touching data."""
    warehouse = {"sqlite": sqlite_warehouse,
                 "minidb": minidb_warehouse}[engine]
    compiled = benchmark(warehouse.translate, FIG9)
    assert compiled.disjuncts
