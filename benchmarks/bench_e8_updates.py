"""E8 — incremental update vs full reload.

The paper's second Data Hounds requirement: integrate updates "without
any information being left out or added twice". The payoff of the
entry-level diff is that a refresh touches only changed entries; a
naive mirror reloads everything. We sweep the changed fraction.

Expected shape: incremental cost ∝ changed fraction; full reload flat
at the total-load cost; crossover only as the fraction approaches 1.
"""

import pytest

from repro.datahounds import InMemoryRepository
from repro.engine import Warehouse
from repro.relational import SqliteBackend
from repro.synth import generate_enzyme_release, mutate_release

BASE_SIZE = 200
FRACTIONS = [0.05, 0.25, 0.5]


def make_releases(fraction):
    release_1 = generate_enzyme_release(seed=23, count=BASE_SIZE)
    release_2 = mutate_release(release_1, seed=29,
                               update_fraction=fraction,
                               remove_fraction=fraction / 5)
    return release_1, release_2


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_e8_incremental_refresh(benchmark, fraction):
    release_1, release_2 = make_releases(fraction)

    def setup():
        repository = InMemoryRepository()
        repository.publish("hlx_enzyme", "r1", release_1)
        repository.publish("hlx_enzyme", "r2", release_2)
        warehouse = Warehouse(backend=SqliteBackend())
        hound = warehouse.connect(repository)
        hound.load("hlx_enzyme", "r1")
        return (hound,), {}

    def refresh(hound):
        return hound.load("hlx_enzyme", "r2")

    report = benchmark.pedantic(refresh, setup=setup, rounds=3,
                                iterations=1)
    assert report.plan.unchanged
    benchmark.extra_info["changed_fraction"] = fraction
    benchmark.extra_info["reloaded_documents"] = report.documents_loaded


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_e8_full_reload_baseline(benchmark, fraction):
    """The naive mirror: drop and reload release 2 wholesale."""
    __, release_2 = make_releases(fraction)

    def reload():
        warehouse = Warehouse(backend=SqliteBackend())
        count = warehouse.load_text("hlx_enzyme", release_2)
        warehouse.close()
        return count

    count = benchmark.pedantic(reload, rounds=3, iterations=1)
    assert count > 0
    benchmark.extra_info["changed_fraction"] = fraction
    benchmark.extra_info["reloaded_documents"] = count


def test_e8_diff_detection_cost(benchmark):
    """The overhead side: computing the diff itself (fingerprint both
    releases) without applying anything."""
    from repro.datahounds import ReleaseSnapshot, diff_releases
    from repro.datahounds.sources.enzyme import EnzymeTransformer
    from repro.flatfile import parse_entries

    release_1, release_2 = make_releases(0.25)
    transformer = EnzymeTransformer()

    def run():
        old = ReleaseSnapshot.build("r1", [
            (transformer.entry_key(e), e)
            for e in parse_entries(release_1)])
        new = ReleaseSnapshot.build("r2", [
            (transformer.entry_key(e), e)
            for e in parse_entries(release_2)])
        return diff_releases(old, new)

    plan = benchmark(run)
    assert plan.updated
