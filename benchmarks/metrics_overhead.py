"""Guardrail: always-on observability must cost < 5% on the hot path.

The observability plane is on by default, so its price is a product
property, not a benchmark curiosity. This script times the E2
repeated-keyword leg (the paper's Figure 8 query served from the
compiled-query cache — the cheapest real query we have, i.e. the one
where fixed per-query overhead shows up largest) and gates each
plane's *incremental* cost — what enabling it adds on top of what is
already running, which is how the planes actually stack in service:

* ``metrics``: ``Warehouse()`` default (metrics on, instrumented
  backend) vs ``Warehouse(metrics=False)`` (plane off, backend
  unwrapped) — the original always-on guarantee;
* ``trace``:  metrics + ``enable_tracing()`` (per-request spans,
  per-statement SQL records, bounded span ring — the query service's
  always-on configuration) vs the metrics-only warehouse — the price
  of tracing over the plane it requires;
* ``subscriptions``: one incremental standing-query refresh
  (``StandingEvaluation.apply`` on a small delta — the subscription
  engine's hot path, run once per harvest commit per standing query)
  with the evaluation's own metric emission on vs off, both over a
  metrics-instrumented warehouse — the subscription plane's increment
  on top of the metrics plane it stacks on (the backend's
  per-statement instrumentation is already priced by ``metrics``).

Each increment must clear the threshold independently. The increments
are gated separately rather than summed against the bare warehouse
because each answers the operative question — "what does turning
this on cost me on top of what I already run?" — and a combined gate
would re-charge the tracing arm for the metrics plane it sits on.

Measurement: rounds alternate one off-batch and one on-batch (order
swapping each round, GC paused). Batches are timed with
``time.process_time`` — the instrumentation cost is pure CPU work
(the warehouses are in-memory), and CPU time is immune to the
involuntary-preemption noise (other tenants, hypervisor steal) that
makes wall-clock thresholds flaky on shared single-core runners.
Two estimators are computed per attempt and the smaller decides:

* **floor-to-floor** — the ratio of the two per-arm minima. Residual
  noise is strictly additive, so the fastest batch of each arm is
  its closest approach to the noise-free cost; fragile only when one
  arm never gets a quiet round.
* **median paired ratio** — the median of per-round on/off ratios
  from batches run back-to-back; robust to slow drift, fragile when
  bursts are frequent enough to land inside most pairs.

Neither is systematically low, so the smaller of the two is still an
honest estimate and survives whichever noise regime the host is in.
Batches must be long enough (~50 ms+) to dominate the clock's
granularity. Because every noise source inflates the estimate and
none deflates it, a sub-threshold reading is conclusive while an
over-threshold one may just be a bad window — so the check
re-measures (fresh warehouses, up to ``--attempts`` times) before
failing. Exit status 1 when every attempt exceeds the threshold — CI
runs this as a step.

Usage::

    python benchmarks/metrics_overhead.py [--rounds 15] [--per-round 100]
        [--threshold 5.0] [--attempts 3]
"""

from __future__ import annotations

import argparse
import gc
import sys
from pathlib import Path
from time import process_time

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

FIG8 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
     $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains ($a, "cdc6", any)
AND   contains ($b, "cdc6", any)
RETURN
     $b//sprot_accession_number,
     $a//embl_accession_number'''


def build_warehouse(metrics, trace=False):
    from repro.engine import Warehouse
    from repro.synth import build_corpus
    corpus = build_corpus(seed=7, enzyme_count=40, embl_count=60,
                          sprot_count=40)
    warehouse = Warehouse(metrics=metrics)
    if trace:
        # the service's configuration: tracing always-on with a
        # bounded ring, so spans can't accumulate across the run
        warehouse.enable_tracing(max_spans=64)
    warehouse.load_corpus(corpus)
    warehouse.query(FIG8)   # prime the compiled-query cache
    return warehouse


SUBSCRIPTION_QUERY = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//enzyme_id'''


def build_subscription_arm(instrumented: bool):
    """A primed standing evaluation plus a small synthetic delta event
    over entries that exist — ``apply`` takes the incremental path and
    lands back on the same snapshot every time, so batches are
    steady-state. Both arms run over a metrics-instrumented warehouse;
    ``instrumented`` toggles only the evaluation's own emission."""
    from repro.datahounds.triggers import ChangeEvent
    from repro.obs import MetricsRegistry
    from repro.subscriptions import StandingEvaluation
    warehouse = build_warehouse(metrics=MetricsRegistry())
    evaluation = StandingEvaluation(warehouse, SUBSCRIPTION_QUERY)
    if not instrumented:
        evaluation._metrics = None
    evaluation.refresh_full()
    keys = [key for (key,) in warehouse.backend.execute(
        "SELECT entry_key FROM documents WHERE source = 'hlx_enzyme' "
        "ORDER BY entry_key LIMIT 5")]
    event = ChangeEvent(source="hlx_enzyme", release="r2",
                        updated=tuple(keys))
    return warehouse, evaluation, event


def time_batch(arm, per_round: int) -> float:
    if isinstance(arm, tuple):           # subscriptions leg
        __, evaluation, event = arm
        start = process_time()
        for __ in range(per_round):
            evaluation.apply(event)
        return process_time() - start
    start = process_time()
    for __ in range(per_round):
        arm.query(FIG8)
    return process_time() - start


def measure(rounds: int, per_round: int,
            leg: str = "metrics") -> tuple[float, float, float]:
    """One full measurement: (best_off, best_on, median paired ratio).

    ``metrics`` compares metrics-on against bare; ``trace`` compares
    metrics+tracing against metrics-on (tracing's increment over the
    plane it stacks on); ``subscriptions`` compares one incremental
    standing-query refresh with the evaluation's metric emission on
    vs off over an instrumented warehouse. Builds fresh warehouses so
    a retry also re-rolls allocation layout, not just scheduler
    luck."""
    from repro.obs import MetricsRegistry
    if leg == "trace":
        off = build_warehouse(metrics=MetricsRegistry())
        on = build_warehouse(metrics=MetricsRegistry(), trace=True)
    elif leg == "subscriptions":
        off = build_subscription_arm(instrumented=False)
        on = build_subscription_arm(instrumented=True)
    else:
        off = build_warehouse(metrics=False)
        on = build_warehouse(metrics=MetricsRegistry())
    time_batch(off, per_round)   # warm both up
    time_batch(on, per_round)
    ratios = []
    best_off = best_on = float("inf")
    # a collection landing inside one batch of a pair would skew that
    # ratio by far more than the effect under test
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_index in range(rounds):
            gc.collect()
            if round_index % 2:       # alternate order inside the pair
                t_on = time_batch(on, per_round)
                t_off = time_batch(off, per_round)
            else:
                t_off = time_batch(off, per_round)
                t_on = time_batch(on, per_round)
            ratios.append(t_on / t_off)
            best_off = min(best_off, t_off)
            best_on = min(best_on, t_on)
    finally:
        if gc_was_enabled:
            gc.enable()
    for arm in (off, on):
        (arm[0] if isinstance(arm, tuple) else arm).close()
    ratios.sort()
    return best_off, best_on, ratios[len(ratios) // 2]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--per-round", type=int, default=100)
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max allowed overhead in percent")
    parser.add_argument("--attempts", type=int, default=3,
                        help="re-measure up to N times before failing "
                        "(noise only ever inflates the estimate, so "
                        "one clean sub-threshold reading settles it)")
    args = parser.parse_args()

    failed = []
    for label in ("metrics", "trace", "subscriptions"):
        for attempt in range(args.attempts):
            best_off, best_on, median_ratio = measure(
                args.rounds, args.per_round, leg=label)
            floor_pct = (best_on / best_off - 1.0) * 100.0
            median_pct = (median_ratio - 1.0) * 100.0
            overhead = min(floor_pct, median_pct)
            per_query_us = (best_on - best_off) / args.per_round * 1e6
            print(f"[{label}] off: {best_off * 1000:.2f} ms / "
                  f"{args.per_round} queries "
                  f"(best of {args.rounds} rounds)")
            print(f"[{label}] on:  {best_on * 1000:.2f} ms / "
                  f"{args.per_round} queries "
                  f"(best of {args.rounds} rounds)")
            print(f"[{label}] overhead: {overhead:+.2f}% "
                  f"(floor-to-floor {floor_pct:+.2f}%, "
                  f"{per_query_us:+.1f} us/query; "
                  f"median paired ratio {median_pct:+.2f}%)")
            if overhead <= args.threshold:
                print(f"[{label}] OK: within "
                      f"{args.threshold:.1f}% threshold")
                break
            remaining = args.attempts - attempt - 1
            if remaining:
                print(f"[{label}] above {args.threshold:.1f}% "
                      f"threshold — noisy run? re-measuring "
                      f"({remaining} attempt(s) left)")
        else:
            failed.append(label)
    if failed:
        print(f"FAIL: {', '.join(failed)} overhead exceeds "
              f"{args.threshold:.1f}% threshold in "
              f"{args.attempts} attempts")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
