"""E17: standing-query subscriptions — incremental maintenance and
push fan-out.

Three claims, three phases:

* **maintenance** — on a ≤1% harvest delta, incrementally maintaining
  a standing query (``entry_key IN`` splice + tombstones) must be at
  least 5x faster per refresh than re-running it in full (the smoke
  corpus is too small for the asymptotics to fully show, so the gate
  drops there), while staying *byte-identical* to a full-refresh
  oracle's snapshot after every single event.
* **fan-out** — one delta pushed to 100 → 1k → 10k subscribers of the
  same query text: the manager must compile/refresh once (dedupe), and
  every subscriber must receive every delta. Reports deliveries/sec.
* **no-stall** — a subscriber that sleeps through every delivery,
  registered under ``coalesce`` and under ``drop_oldest``, must not
  slow the harvest loop: publish is non-blocking for those policies,
  so the whole mutation+load loop must finish in well under the time
  the slow consumers spend sleeping, and the fast subscriber alongside
  them must still see every delta.

Exit status 1 on any gate failure. The JSON artifact carries per-phase
numbers — CI runs ``--smoke`` and uploads it.

Usage::

    python benchmarks/bench_e17_subscriptions.py [--smoke]
        [--rounds 5] [--json artifact.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
         'RETURN $a//enzyme_id, $a//enzyme_description')


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus, 100 subscribers, relaxed "
                             "speedup gate (CI)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="mutation rounds per phase (default 5)")
    parser.add_argument("--enzyme", type=int, default=None,
                        help="enzyme entries (default 600, smoke 120)")
    parser.add_argument("--seed", type=int, default=41)
    parser.add_argument("--json", help="write a JSON artifact here")
    args = parser.parse_args(argv)
    if args.enzyme is None:
        args.enzyme = 120 if args.smoke else 600
    args.subscriber_counts = [100] if args.smoke else [100, 1000, 10000]
    args.min_speedup = 1.5 if args.smoke else 5.0
    # ~1% of entries touched per round (the smoke corpus is small, so
    # roll a higher per-entry fraction to avoid empty rounds)
    args.delta_fraction = 0.02 if args.smoke else 0.005
    return args


def fresh_setup(args, metrics=False):
    from repro.datahounds import InMemoryRepository
    from repro.engine import Warehouse
    from repro.obs import MetricsRegistry
    from repro.synth import build_corpus
    corpus = build_corpus(seed=args.seed, enzyme_count=args.enzyme,
                          embl_count=10, sprot_count=10)
    repository = InMemoryRepository()
    corpus.publish_to(repository, "r1")
    warehouse = Warehouse(metrics=MetricsRegistry() if metrics else False)
    hound = warehouse.connect(repository)
    return corpus, repository, warehouse, hound


def mutation_rounds(args, corpus, repository, hound, collect):
    """Publish ``rounds`` small-delta releases and load each; events
    land in ``collect`` via the caller's trigger subscription."""
    from repro.synth import mutate_release
    for round_no in range(2, args.rounds + 2):
        repository.publish(
            "hlx_enzyme", f"r{round_no}",
            mutate_release(corpus.enzyme_text, seed=round_no,
                           update_fraction=args.delta_fraction,
                           remove_fraction=args.delta_fraction))
        hound.load("hlx_enzyme")
    return collect


def phase_maintenance(args) -> dict:
    """Incremental vs full-refresh oracle: speed and exactness.

    Both evaluations apply each event *at event time* (inside the
    trigger callback, while the warehouse is in exactly the state the
    event describes) — applying a stale event against a newer
    warehouse is outside the incremental contract.
    """
    from repro.subscriptions import StandingEvaluation
    corpus, repository, warehouse, hound = fresh_setup(args)
    incremental = StandingEvaluation(warehouse, QUERY)
    oracle = StandingEvaluation(warehouse, QUERY, incremental=False)
    mismatches = 0
    non_incremental = 0
    delta_sizes = []
    primed = []

    def on_event(event):
        nonlocal mismatches, non_incremental
        if not primed:
            incremental.refresh_full(event)
            oracle.refresh_full(event)
            primed.append(True)
            return
        inc_delta = incremental.apply(event)
        oracle.apply(event)
        delta_sizes.append(event.total_changes)
        if incremental.canonical() != oracle.canonical():
            mismatches += 1
        if inc_delta.origin != "incremental":
            non_incremental += 1   # the fast path must engage

    hound.triggers.subscribe(on_event, "hlx_enzyme")
    hound.load("hlx_enzyme")
    inc_before = (incremental.incremental_seconds,
                  incremental.incremental_refreshes)
    full_before = (oracle.full_seconds, oracle.full_refreshes)
    mutation_rounds(args, corpus, repository, hound, [])
    warehouse.close()
    inc_refreshes = incremental.incremental_refreshes - inc_before[1]
    full_refreshes = oracle.full_refreshes - full_before[1]
    inc_per = ((incremental.incremental_seconds - inc_before[0])
               / max(1, inc_refreshes))
    full_per = ((oracle.full_seconds - full_before[0])
                / max(1, full_refreshes))
    speedup = full_per / inc_per if inc_per > 0 else float("inf")
    return {
        "rows": incremental.total_rows,
        "events": len(delta_sizes),
        "non_incremental_refreshes": non_incremental,
        "mean_delta_entries": (round(sum(delta_sizes) / len(delta_sizes), 1)
                               if delta_sizes else 0),
        "delta_fraction_pct": round(100.0 * sum(delta_sizes)
                                    / max(1, len(delta_sizes))
                                    / max(1, args.enzyme), 2),
        "full_ms_per_refresh": round(full_per * 1e3, 3),
        "incremental_ms_per_refresh": round(inc_per * 1e3, 3),
        "speedup": round(speedup, 2),
        "snapshot_mismatches": mismatches,
    }


def phase_fanout(args, subscribers: int) -> dict:
    """One load, ``subscribers`` consumers of one query text."""
    from repro.subscriptions import SubscriptionManager
    corpus, repository, warehouse, hound = fresh_setup(args)
    manager = SubscriptionManager(warehouse, workers=4, persist=False)
    counts = [0] * subscribers

    def sink(index):
        def receive(delta):
            counts[index] += 1
        return receive

    subscribe_start = time.perf_counter()
    for index in range(subscribers):
        manager.subscribe(QUERY, callback=sink(index), policy="coalesce")
    subscribe_seconds = time.perf_counter() - subscribe_start
    load_start = time.perf_counter()
    hound.load("hlx_enzyme")
    load_seconds = time.perf_counter() - load_start
    flushed = manager.bus.flush(timeout=120.0)
    drain_seconds = time.perf_counter() - load_start
    evaluations = manager.evaluation_count
    refreshes = manager.evaluation_for(QUERY).refreshes
    delivered = sum(counts)
    missing = sum(1 for count in counts if count != 1)
    manager.close()
    warehouse.close()
    return {
        "subscribers": subscribers,
        "evaluations": evaluations,        # dedupe: must be 1
        "refreshes": refreshes,            # prime + 1 load
        "subscribe_seconds": round(subscribe_seconds, 3),
        "load_seconds": round(load_seconds, 3),
        "drain_seconds": round(drain_seconds, 3),
        "deliveries": delivered,
        "deliveries_per_second": (round(delivered / drain_seconds)
                                  if drain_seconds > 0 else None),
        "subscribers_missing_delta": missing,
        "flushed": flushed,
    }


def phase_no_stall(args) -> dict:
    """Slow consumers under coalesce/drop_oldest vs the harvest loop."""
    from repro.subscriptions import SubscriptionManager
    sleep_s = 0.5
    # baseline: the same harvest loop with no subscribers at all
    corpus, repository, warehouse, hound = fresh_setup(args)
    baseline_start = time.perf_counter()
    hound.load("hlx_enzyme")
    mutation_rounds(args, corpus, repository, hound, [])
    baseline_seconds = time.perf_counter() - baseline_start
    warehouse.close()

    corpus, repository, warehouse, hound = fresh_setup(args)
    manager = SubscriptionManager(warehouse, workers=2, queue_max=2,
                                  persist=False)
    fast_deliveries = []
    slow_calls = {"coalesce": 0, "drop_oldest": 0}

    def slow(policy):
        def receive(delta):
            slow_calls[policy] += 1
            time.sleep(sleep_s)
        return receive

    manager.subscribe(QUERY, callback=slow("coalesce"),
                      policy="coalesce")
    manager.subscribe(QUERY, callback=slow("drop_oldest"),
                      policy="drop_oldest")
    manager.subscribe(QUERY, callback=fast_deliveries.append,
                      policy="block")
    harvest_start = time.perf_counter()
    hound.load("hlx_enzyme")
    mutation_rounds(args, corpus, repository, hound, [])
    harvest_seconds = time.perf_counter() - harvest_start
    loads = args.rounds + 1
    # if the publisher had waited on the sleeping consumers, the loop
    # would cost at least one sleep per load per slow subscriber
    # beyond the baseline; gate at half of a *single* slow
    # subscriber's serialized cost on top of the measured baseline
    stall_budget = baseline_seconds + loads * sleep_s * 0.5
    manager.bus.flush(timeout=loads * sleep_s * 4 + 30.0)
    bus_stats = manager.bus.stats()
    manager.close()
    warehouse.close()
    changed_deltas = len(fast_deliveries)
    return {
        "loads": loads,
        "slow_sleep_seconds": sleep_s,
        "baseline_seconds": round(baseline_seconds, 3),
        "harvest_seconds": round(harvest_seconds, 3),
        "stall_budget_seconds": round(stall_budget, 3),
        "fast_subscriber_deltas": changed_deltas,
        "slow_deliveries": dict(slow_calls),
        "coalesced": sum(queue["coalesced"]
                         for queue in bus_stats.values()),
        "dropped": sum(queue["dropped"] for queue in bus_stats.values()),
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    failures = []
    report: dict = {"config": {
        "smoke": args.smoke, "rounds": args.rounds,
        "enzyme_entries": args.enzyme, "seed": args.seed,
        "min_speedup": args.min_speedup,
        "subscriber_counts": args.subscriber_counts,
    }}

    maintenance = phase_maintenance(args)
    report["maintenance"] = maintenance
    print(f"maintenance: {maintenance['events']} events of "
          f"~{maintenance['mean_delta_entries']} entries "
          f"({maintenance['delta_fraction_pct']}% of "
          f"{args.enzyme}): full {maintenance['full_ms_per_refresh']}ms "
          f"vs incremental "
          f"{maintenance['incremental_ms_per_refresh']}ms per refresh "
          f"= {maintenance['speedup']}x")
    if maintenance["snapshot_mismatches"]:
        failures.append(f"maintenance: {maintenance['snapshot_mismatches']}"
                        " snapshot mismatches vs the full-refresh oracle")
    if maintenance["non_incremental_refreshes"]:
        failures.append(
            f"maintenance: {maintenance['non_incremental_refreshes']} "
            "refreshes fell back to the full path on a small delta")
    if maintenance["events"] == 0:
        failures.append("maintenance: no change events fired")
    if maintenance["speedup"] < args.min_speedup:
        failures.append(f"maintenance: speedup {maintenance['speedup']}x "
                        f"is under the {args.min_speedup}x gate")

    report["fanout"] = []
    for subscribers in args.subscriber_counts:
        fanout = phase_fanout(args, subscribers)
        report["fanout"].append(fanout)
        print(f"fanout: {subscribers} subscribers, "
              f"{fanout['evaluations']} evaluation(s), "
              f"{fanout['deliveries']} deliveries in "
              f"{fanout['drain_seconds']}s "
              f"({fanout['deliveries_per_second']}/s), "
              f"{fanout['subscribers_missing_delta']} missing")
        if not fanout["flushed"]:
            failures.append(f"fanout[{subscribers}]: bus never drained")
        if fanout["evaluations"] != 1:
            failures.append(f"fanout[{subscribers}]: dedupe failed "
                            f"({fanout['evaluations']} evaluations)")
        if fanout["subscribers_missing_delta"]:
            failures.append(
                f"fanout[{subscribers}]: "
                f"{fanout['subscribers_missing_delta']} subscribers "
                "missed the delta")

    no_stall = phase_no_stall(args)
    report["no_stall"] = no_stall
    print(f"no-stall: {no_stall['loads']} loads in "
          f"{no_stall['harvest_seconds']}s with two consumers sleeping "
          f"{no_stall['slow_sleep_seconds']}s per delivery "
          f"(budget {no_stall['stall_budget_seconds']}s; "
          f"coalesced={no_stall['coalesced']} "
          f"dropped={no_stall['dropped']})")
    if no_stall["harvest_seconds"] >= no_stall["stall_budget_seconds"]:
        failures.append(
            f"no-stall: harvest took {no_stall['harvest_seconds']}s, "
            f"over the {no_stall['stall_budget_seconds']}s budget — "
            "a slow subscriber stalled the load path")
    if no_stall["fast_subscriber_deltas"] == 0:
        failures.append("no-stall: the fast subscriber saw no deltas")

    report["failures"] = failures
    report["ok"] = not failures
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: incremental refreshes are exact and fast, fan-out "
              "is lossless, slow subscribers never stall the harvest")
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2))
        print(f"artifact: {args.json}")
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
