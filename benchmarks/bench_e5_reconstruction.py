"""E5 — result delivery cost: table values vs full XML reconstruction.

The paper: "reconstruction of entire large XML document from the
tuples is expensive compared to the query processing time in the
RDBMS" — which is why XomatiQ offers the plain table view. We measure
the same query delivered three ways:

  (a) binding+values only (the table panel),
  (b) values re-tagged into a result XML document (the XML panel),
  (c) full reconstruction of every matching source document (clicking
      every result row).

Expected shape: (a) < (b) ≪ (c); (c)'s gap grows with document size.
"""

import pytest

from repro.shredding import reconstruct_document
from repro.xmlkit import serialize

FIG9 = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description'''

SEQ_QUERY = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE $a//sequence/@length > 500
RETURN $a//embl_accession_number'''


def test_e5_table_values_only(benchmark, sqlite_warehouse):
    result = benchmark(sqlite_warehouse.query, FIG9)
    benchmark.extra_info["rows"] = len(result)


def test_e5_result_xml_tagging(benchmark, sqlite_warehouse):
    def run():
        return sqlite_warehouse.query(FIG9).to_xml()

    xml = benchmark(run)
    assert xml.startswith("<?xml")


def test_e5_full_document_reconstruction(benchmark, sqlite_warehouse):
    def run():
        result = sqlite_warehouse.query(FIG9)
        return [serialize(sqlite_warehouse.fetch_document(
            row.bindings["a"])) for row in result.rows]

    documents = benchmark(run)
    assert documents
    benchmark.extra_info["documents"] = len(documents)


def test_e5_reconstruction_of_sequence_documents(benchmark,
                                                 sqlite_warehouse):
    """Documents carrying sequences are the paper's 'large' case."""
    result = sqlite_warehouse.query(SEQ_QUERY)
    doc_ids = [row.bindings["a"].doc_id for row in result.rows]
    assert doc_ids

    def run():
        return [reconstruct_document(sqlite_warehouse.backend, doc_id)
                for doc_id in doc_ids]

    rebuilt = benchmark(run)
    benchmark.extra_info["documents"] = len(rebuilt)


def test_e5_single_document_reconstruction(benchmark, sqlite_warehouse):
    doc_id = sqlite_warehouse.loader.doc_ids("hlx_embl")[0]
    doc = benchmark(reconstruct_document, sqlite_warehouse.backend, doc_id)
    benchmark.extra_info["elements"] = doc.element_count()
