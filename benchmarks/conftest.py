"""Shared benchmark fixtures.

Two corpus scales; warehouses for both relational backends plus the
native-XML and flat-scan baselines, built once per session. Benchmarks
measure query/load paths only, never corpus generation.
"""

from __future__ import annotations

import pytest

from repro.baselines import FlatFileIndex, NativeXmlStore
from repro.engine import Warehouse
from repro.relational import MiniDbBackend, SqliteBackend
from repro.synth import build_corpus

SMALL = dict(enzyme_count=60, embl_count=80, sprot_count=60)
MEDIUM = dict(enzyme_count=180, embl_count=260, sprot_count=180)


@pytest.fixture(scope="session")
def corpus_small():
    return build_corpus(seed=7, **SMALL)


@pytest.fixture(scope="session")
def corpus_medium():
    return build_corpus(seed=7, **MEDIUM)


def _warehouse(backend, corpus):
    warehouse = Warehouse(backend=backend)
    warehouse.load_corpus(corpus)
    return warehouse


@pytest.fixture(scope="session")
def sqlite_warehouse(corpus_medium):
    return _warehouse(SqliteBackend(), corpus_medium)


@pytest.fixture(scope="session")
def minidb_warehouse(corpus_medium):
    return _warehouse(MiniDbBackend(), corpus_medium)


@pytest.fixture(scope="session")
def native_store(corpus_medium):
    store = NativeXmlStore()
    store.load_corpus(corpus_medium)
    return store


@pytest.fixture(scope="session")
def embl_flat_index(corpus_medium):
    return FlatFileIndex.build("hlx_embl", corpus_medium.embl_text,
                               ("ID", "DE", "KW"))


@pytest.fixture(scope="session")
def stage_breakdown():
    """``(warehouse, query_text) -> {stage: ms}`` — one profiled run's
    stage timings, for attaching to ``benchmark.extra_info`` so
    experiment tables show where the time went, not just the total
    (EXPLAIN capture off — it would bill the planner's extra pass to
    the stage)."""
    def breakdown(warehouse, query_text: str) -> dict[str, float]:
        report = warehouse.profile(query_text, explain=False)
        return {stage: round(ms, 3)
                for stage, ms in report.stages.items()}
    return breakdown


@pytest.fixture(scope="session")
def engines(sqlite_warehouse, minidb_warehouse, native_store):
    """Engine name → callable(query_text) -> result, for the engine
    comparison benchmarks."""
    return {
        "sqlite": sqlite_warehouse.query,
        "minidb": minidb_warehouse.query,
        "native": native_store.query,
    }
