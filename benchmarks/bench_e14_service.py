"""E14: the always-on query service under concurrent client load.

The paper's warehouse answered one analyst at a time; E14 measures the
service layer that turns it into shared infrastructure. A
:class:`~repro.service.ServiceServer` (one warehouse, a thread per
connection, locked compiled-query cache) is driven by hundreds of
concurrent clients running the mixed traffic an integrated site sees:

* keyword lookups  — ``GET /keyword?q=ketone&source=hlx_enzyme``
* sub-tree queries — ``POST /query`` (the Figure 9 ENZYME selection)
* join queries     — ``POST /query`` (the Figure 11 EMBL×ENZYME join)

Every response is checked against a sequential baseline captured
before the storm — a dropped connection, a 5xx, or a drifted answer is
a failure (``429`` rate-limit rejections are the contract working and
are counted separately, though with the default unlimited rate none
occur). Latency is reported from the service's own always-on
``service.request_seconds`` histograms (the same numbers a scraper
sees), alongside client-side wall-clock percentiles; the JSON artifact
carries both. Exit status 1 on any failure or wrong answer — CI runs
a smoke-sized invocation as a step.

Usage::

    python benchmarks/bench_e14_service.py [--clients 120] [--requests 8]
        [--url http://host:port] [--json artifact.json]
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
from pathlib import Path
from urllib.parse import urlsplit

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

ENZYME_QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'WHERE contains($a//catalytic_activity, "ketone") '
                'RETURN $a//enzyme_id, $a//enzyme_description')

JOIN_QUERY = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number'''

KEYWORD_TARGET = "/keyword?q=ketone&source=hlx_enzyme"

#: the traffic mix, cycled per client so every thread runs all three
LEGS = ("keyword", "subtree", "join")


def start_server(args):
    """An in-process server over a synthetic corpus; returns
    (server, thread)."""
    from repro.engine import Warehouse
    from repro.obs import MetricsRegistry
    from repro.service import ServiceConfig, serve
    from repro.synth import build_corpus
    corpus = build_corpus(seed=args.seed, enzyme_count=args.enzyme,
                          embl_count=args.embl, sprot_count=args.sprot)
    warehouse = Warehouse(metrics=MetricsRegistry())
    warehouse.load_corpus(corpus)
    config = ServiceConfig(host="127.0.0.1", port=0,
                           max_in_flight=args.max_in_flight)
    server = serve(warehouse, config)
    thread = threading.Thread(target=server.serve_forever,
                              name="bench-e14-server", daemon=True)
    thread.start()
    return server, thread


class Client:
    """One keep-alive connection issuing the mixed legs in turn."""

    def __init__(self, base: str, index: int, requests: int):
        split = urlsplit(base)
        self.host = split.hostname
        self.port = split.port or 80
        self.index = index
        self.requests = requests
        self.statuses: dict[int, int] = {}
        self.timings: dict[str, list[float]] = {leg: [] for leg in LEGS}
        self.mismatches = 0
        self.errors: list[str] = []

    def _request(self, connection, leg: str):
        if leg == "keyword":
            connection.request("GET", KEYWORD_TARGET, headers={
                "X-Client-Id": f"client-{self.index}"})
        else:
            text = ENZYME_QUERY if leg == "subtree" else JOIN_QUERY
            body = json.dumps({"query": text}).encode()
            connection.request("POST", "/query", body=body, headers={
                "Content-Type": "application/json",
                "X-Client-Id": f"client-{self.index}"})
        response = connection.getresponse()
        return response.status, response.read()

    def run(self, expected: dict[str, dict]):
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=60)
        try:
            for turn in range(self.requests):
                leg = LEGS[(self.index + turn) % len(LEGS)]
                started = time.perf_counter()
                status, body = self._request(connection, leg)
                self.timings[leg].append(time.perf_counter() - started)
                self.statuses[status] = self.statuses.get(status, 0) + 1
                if status == 200 and \
                        _digest(leg, body) != expected[leg]:
                    self.mismatches += 1
        except Exception as exc:   # noqa: BLE001 - a drop is a failure
            self.errors.append(f"client {self.index}: {exc}")
        finally:
            connection.close()


def _digest(leg: str, body: bytes) -> dict:
    """The answer-defining fields of one 200 response."""
    payload = json.loads(body)
    if leg == "keyword":
        return {"count": payload["count"],
                "doc_ids": sorted(hit["doc_id"]
                                  for hit in payload["results"])}
    return {"columns": payload["columns"],
            "row_count": payload["row_count"],
            "values": sorted(json.dumps(row["values"], sort_keys=True)
                             for row in payload["rows"])}


def baseline(base: str, expect_rows: bool) -> dict[str, dict]:
    """Sequential ground truth for each leg, plus sanity checks."""
    probe = Client(base, index=0, requests=0)
    connection = http.client.HTTPConnection(probe.host, probe.port,
                                            timeout=60)
    expected = {}
    try:
        for offset, leg in enumerate(LEGS):
            probe.index = -offset   # cycle legs via _request directly
            status, body = probe._request(connection, leg)
            if status != 200:
                raise SystemExit(f"baseline {leg} answered {status}: "
                                 f"{body[:200]!r}")
            expected[leg] = _digest(leg, body)
    finally:
        connection.close()
    if expect_rows:
        if not expected["keyword"]["count"]:
            raise SystemExit("baseline keyword search found nothing — "
                             "is the corpus seeded?")
        if not expected["join"]["row_count"]:
            raise SystemExit("baseline join returned no rows")
    return expected


def service_histograms(base: str) -> dict[str, dict]:
    """Per-endpoint latency from the service's own histograms."""
    split = urlsplit(base)
    connection = http.client.HTTPConnection(split.hostname,
                                            split.port or 80,
                                            timeout=60)
    try:
        connection.request("GET", "/metrics")
        snapshot = json.loads(connection.getresponse().read())
    finally:
        connection.close()
    out = {}
    for histogram in snapshot.get("histograms", []):
        if histogram["name"] != "service.request_seconds":
            continue
        endpoint = dict(histogram["labels"]).get("endpoint", "?")
        out[endpoint] = {"count": histogram["count"],
                         "p50": histogram.get("p50"),
                         "p95": histogram.get("p95"),
                         "p99": histogram.get("p99")}
    return out


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=120,
                        help="concurrent client threads")
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per client")
    parser.add_argument("--url", default=None,
                        help="benchmark an external server instead of "
                             "starting one in-process")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--enzyme", type=int, default=30)
    parser.add_argument("--embl", type=int, default=40)
    parser.add_argument("--sprot", type=int, default=30)
    parser.add_argument("--max-in-flight", type=int, default=256,
                        help="admission cap for the in-process server "
                             "(≥ clients so nothing sheds)")
    parser.add_argument("--json", default=None,
                        help="write the latency/throughput artifact "
                             "to this path")
    args = parser.parse_args()

    server = thread = None
    if args.url:
        base = args.url.rstrip("/")
    else:
        server, thread = start_server(args)
        base = server.url
    print(f"target: {base}  "
          f"({'external' if args.url else 'in-process'})")

    try:
        expected = baseline(base, expect_rows=not args.url)
        clients = [Client(base, index, args.requests)
                   for index in range(args.clients)]
        threads = [threading.Thread(target=client.run,
                                    args=(expected,))
                   for client in clients]
        started = time.perf_counter()
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join()
        elapsed = time.perf_counter() - started
        histograms = service_histograms(base)
    finally:
        if server is not None:
            server.close()
            thread.join(timeout=10)

    statuses: dict[int, int] = {}
    client_times: dict[str, list[float]] = {leg: [] for leg in LEGS}
    mismatches = sum(client.mismatches for client in clients)
    errors = [error for client in clients for error in client.errors]
    for client in clients:
        for status, count in client.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
        for leg in LEGS:
            client_times[leg].extend(client.timings[leg])
    total = sum(statuses.values())
    rate_limited = statuses.get(429, 0)
    failures = sum(count for status, count in statuses.items()
                   if status != 200 and status != 429)

    print(f"clients: {args.clients}  requests/client: {args.requests}  "
          f"total: {total}  elapsed: {elapsed:.2f}s  "
          f"throughput: {total / elapsed:.1f} req/s")
    print(f"statuses: { {str(k): v for k, v in sorted(statuses.items())} }"
          f"  (429s excluded from failures: {rate_limited})")
    for leg in LEGS:
        times = client_times[leg]
        print(f"  {leg:<8} n={len(times):<5} "
              f"p50={percentile(times, 0.50) * 1000:7.2f}ms  "
              f"p95={percentile(times, 0.95) * 1000:7.2f}ms  "
              f"p99={percentile(times, 0.99) * 1000:7.2f}ms  "
              "(client-side)")
    for endpoint, stats in sorted(histograms.items()):
        print(f"  service.request_seconds{{endpoint={endpoint}}} "
              f"count={stats['count']} p50={stats['p50'] * 1000:.2f}ms "
              f"p95={stats['p95'] * 1000:.2f}ms "
              f"p99={stats['p99'] * 1000:.2f}ms")

    ok = not errors and not mismatches and failures == 0
    if errors:
        print(f"FAIL: {len(errors)} dropped/errored client(s); "
              f"first: {errors[0]}")
    if mismatches:
        print(f"FAIL: {mismatches} response(s) drifted from the "
              "sequential baseline")
    if failures:
        print(f"FAIL: {failures} non-200/non-429 response(s)")
    if ok:
        print("OK: zero dropped, zero incorrect, zero 5xx")

    if args.json:
        artifact = {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "total_requests": total,
            "elapsed_seconds": round(elapsed, 3),
            "throughput_rps": round(total / elapsed, 1),
            "statuses": {str(k): v for k, v in sorted(statuses.items())},
            "rate_limited": rate_limited,
            "failures": failures,
            "mismatches": mismatches,
            "client_errors": errors,
            "client_latency_ms": {
                leg: {"n": len(times),
                      "p50": round(percentile(times, 0.50) * 1000, 3),
                      "p95": round(percentile(times, 0.95) * 1000, 3),
                      "p99": round(percentile(times, 0.99) * 1000, 3)}
                for leg, times in client_times.items()},
            "service_histograms": histograms,
            "ok": ok,
        }
        Path(args.json).write_text(json.dumps(artifact, indent=2))
        print(f"artifact: {args.json}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
