"""Profiling, EXPLAIN capture, JSON export, and the hot-path guarantee
(no tracer allocated unless asked for)."""

import json

import pytest

from repro.engine import Warehouse
from repro.obs import (
    InstrumentedBackend,
    export_profiles,
    format_profile,
    profile_to_dict,
    span_to_dict,
)
from repro.obs.backend import statement_kind
from repro.xmlkit import parse_document

QUERY = ('FOR $a IN document("db.c")/r/item '
         'WHERE $a/name = "alpha" RETURN $a//name')


@pytest.fixture
def small_warehouse(backend):
    warehouse = Warehouse(backend=backend)
    warehouse.loader.store_document(
        "db", "c", "k1",
        parse_document("<r><item><name>alpha</name></item>"
                       "<item><name>beta</name></item></r>"))
    return warehouse


class TestHotPathDefault:
    """Tracing stays opt-in; only the (cheap) metrics plane is
    always on, and ``metrics=False`` removes even that."""

    def test_no_tracer_allocated_by_default(self, backend):
        warehouse = Warehouse(backend=backend)
        assert warehouse.tracer is None
        assert warehouse.loader.tracer is None
        # metrics are on by default: backend wrapped, but no tracer
        assert isinstance(warehouse.backend, InstrumentedBackend)
        assert warehouse.backend.tracer is None

    def test_metrics_false_leaves_backend_unwrapped(self, backend):
        warehouse = Warehouse(backend=backend, metrics=False)
        assert warehouse.tracer is None
        assert warehouse.backend is backend  # not wrapped
        assert not isinstance(warehouse.backend, InstrumentedBackend)
        assert warehouse._metrics_sink is None

    def test_connect_without_trace_passes_no_tracer(self, backend):
        from repro.datahounds import InMemoryRepository
        warehouse = Warehouse(backend=backend)
        hound = warehouse.connect(InMemoryRepository())
        assert hound.tracer is None


class TestProfileQuery:
    def test_profile_reports_all_stages(self, small_warehouse):
        report = small_warehouse.profile(QUERY)
        assert list(report.stages) == ["parse", "check", "compile",
                                       "execute", "tag"]
        assert all(ms >= 0 for ms in report.stages.values())
        assert report.rows == 1
        assert report.statement_count() > 0
        assert report.backend in ("sqlite", "minidb")

    def test_profile_restores_uninstrumented_backend(self,
                                                     small_warehouse):
        original = small_warehouse.backend
        small_warehouse.profile(QUERY)
        assert small_warehouse.backend is original

    def test_explain_plans_captured_for_selects(self, small_warehouse):
        report = small_warehouse.profile(QUERY, explain=True)
        selects = [record for record in report.trace.all_statements()
                   if record.kind == "SELECT"]
        assert selects
        assert all(record.plan for record in selects)

    def test_explain_off_captures_no_plans(self, small_warehouse):
        report = small_warehouse.profile(QUERY, explain=False)
        assert all(not record.plan
                   for record in report.trace.all_statements())

    def test_result_carries_trace(self, small_warehouse):
        report = small_warehouse.profile(QUERY)
        assert report.result.trace is report.trace

    def test_format_profile_renders_stages_and_sql(self,
                                                   small_warehouse):
        report = small_warehouse.profile(QUERY)
        text = format_profile(report)
        for stage in ("parse", "check", "compile", "execute", "tag"):
            assert stage in text
        assert "SELECT" in text
        assert "plan:" in text


class TestExport:
    def test_span_dict_schema(self, small_warehouse):
        report = small_warehouse.profile(QUERY)
        data = span_to_dict(report.trace)
        assert data["name"] == "query"
        assert set(data) == {"name", "duration_ms", "meta", "counters",
                             "statements", "children", "span_id",
                             "parent_id", "trace_id", "start_ms"}
        assert data["trace_id"]          # roots mint a trace id
        assert data["start_ms"] == 0.0   # offsets are root-relative
        child_names = [child["name"] for child in data["children"]]
        assert child_names == ["parse", "check", "compile", "execute",
                               "tag"]
        json.dumps(data)  # must be JSON-serializable

    def test_profile_dict_rollup(self, small_warehouse):
        report = small_warehouse.profile(QUERY)
        data = profile_to_dict(report)
        assert data["rows"] == 1
        assert data["sql_statements"] == report.statement_count()
        assert set(data["stages"]) == {"parse", "check", "compile",
                                       "execute", "tag"}

    def test_export_profiles_writes_tagged_file(self, small_warehouse,
                                                tmp_path):
        report = small_warehouse.profile(QUERY)
        out = tmp_path / "profile.json"
        payload = export_profiles([report], out)
        on_disk = json.loads(out.read_text(encoding="utf-8"))
        assert on_disk == payload
        assert on_disk["format"] == "xomatiq-profile/1"
        assert len(on_disk["profiles"]) == 1

    def test_summarize_ingests_profile_export(self, small_warehouse,
                                              tmp_path, capsys):
        import importlib.util
        from pathlib import Path
        spec = importlib.util.spec_from_file_location(
            "summarize", Path(__file__).resolve().parents[2]
            / "benchmarks" / "summarize.py")
        summarize = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(summarize)

        report = small_warehouse.profile(QUERY)
        out = tmp_path / "profile.json"
        export_profiles([report], out)
        assert summarize.main(["summarize.py", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "profile [" in printed
        assert "execute" in printed


class TestInstrumentedBackendWrapper:
    def test_statement_kind(self):
        assert statement_kind("  select 1") == "SELECT"
        assert statement_kind("INSERT INTO t VALUES (?)") == "INSERT"
        assert statement_kind("") == ""

    def test_executemany_recorded_as_batch(self, backend):
        from repro.obs import Tracer
        tracer = Tracer()
        instrumented = InstrumentedBackend(backend, tracer)
        instrumented.execute("CREATE TABLE t (x INTEGER)")
        with tracer.span("batch") as span:
            instrumented.executemany("INSERT INTO t (x) VALUES (?)",
                                     [(1,), (2,), (3,)])
        assert span.counters["statements"] == 3
        assert span.statements[0].executions == 3
        assert span.statements[0].kind == "INSERT"
        rows = instrumented.execute("SELECT COUNT(*) FROM t")
        assert rows[0][0] == 3

    def test_extras_delegate(self, backend):
        from repro.obs import Tracer
        instrumented = InstrumentedBackend(backend, Tracer())
        assert instrumented.name == backend.name
        instrumented.analyze()  # both engines expose analyze


FIG8 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
     $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains ($a, "cdc6", any)
AND   contains ($b, "cdc6", any)
RETURN
     $b//sprot_accession_number,
     $a//embl_accession_number'''

FIG11 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description'''


class TestFigureQueriesProfile:
    """Acceptance: the paper's Figure 8 keyword query and Figure 11
    join profile end to end on both backends — per-stage timings,
    per-statement counters, captured plans."""

    @pytest.mark.parametrize("query", [FIG8, FIG11],
                             ids=["fig8", "fig11"])
    def test_profile_figure_query(self, warehouse, query):
        report = warehouse.profile(query)
        assert report.rows > 0
        assert list(report.stages) == ["parse", "check", "compile",
                                       "execute", "tag"]
        assert report.statement_count() > 0
        selects = [record for record in report.trace.all_statements()
                   if record.kind == "SELECT"]
        assert selects and all(record.plan for record in selects)
        # the executor's sub-phases are present with sane counters
        execute = report.trace.find("execute")
        assert [c.name for c in execute.children] == [
            "bindings", "values", "merge"]
        assert execute.find("bindings").counters["binding_tuples"] == \
            report.rows
