"""Tracer/span unit tests and full-pipeline span coverage.

The pipeline coverage tests assert against minidb where statement
counts matter — it is fully deterministic (no statement cache warmup
differences, no engine-internal statements).
"""

import pytest

from repro.engine import Warehouse
from repro.obs import InstrumentedBackend, Tracer
from repro.relational import MiniDbBackend
from repro.xmlkit import parse_document

PIPELINE_STAGES = ["parse", "check", "compile", "execute"]
EXECUTE_PHASES = ["bindings", "values", "merge"]


class TestTracerUnit:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_1"):
                pass
            with tracer.span("inner_2"):
                tracer.count("things", 3)
        assert len(tracer.spans) == 1
        outer = tracer.spans[0]
        assert [c.name for c in outer.children] == ["inner_1", "inner_2"]
        assert outer.find("inner_2").counters == {"things": 3}

    def test_span_timings_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.spans[0]
        inner = outer.children[0]
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert outer.duration_s >= inner.duration_s >= 0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.spans[0].end is not None
        assert tracer.current is None

    def test_count_outside_span_lands_in_untracked(self):
        tracer = Tracer()
        tracer.count("orphan", 2)
        assert tracer.spans[0].name == "(untracked)"
        assert tracer.spans[0].counters == {"orphan": 2}

    def test_statement_outside_span_lands_in_untracked(self):
        tracer = Tracer()
        backend = InstrumentedBackend(MiniDbBackend(), tracer)
        backend.execute("CREATE TABLE t (x INTEGER)")
        assert tracer.spans[0].name == "(untracked)"
        assert tracer.spans[0].counters["statements"] == 1


class TestTracerThreadSafety:
    """Regression: the open-span stack was one shared list, so spans
    opened by bulk-load worker threads nested under whatever the main
    thread had open (or popped the wrong frame entirely)."""

    def test_concurrent_spans_never_cross_threads(self):
        import threading

        tracer = Tracer()
        barrier = threading.Barrier(4)
        errors = []

        def work(index):
            try:
                barrier.wait()
                for __ in range(200):
                    with tracer.span(f"outer-{index}") as outer:
                        with tracer.span(f"inner-{index}") as inner:
                            assert tracer.current is inner
                        assert tracer.current is outer
                    assert tracer.current is None
            except Exception as exc:   # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # every span is top-level in its own thread: 4 threads x 200
        assert len(tracer.spans) == 800
        for span in tracer.spans:
            assert span.end is not None
            # children belong to the same worker as their parent
            (child,) = span.children
            assert child.name.split("-")[1] == span.name.split("-")[1]

    def test_concurrent_bulk_load_with_workers_keeps_spans_sane(self):
        """End to end: a traced warehouse loading with worker threads
        must produce a well-formed span forest (no span parented under
        another thread's open span, no negative durations)."""
        from repro.synth import build_corpus

        corpus = build_corpus(seed=11, enzyme_count=20, embl_count=20,
                              sprot_count=10)
        warehouse = Warehouse(trace=True, metrics=False, bulk_workers=3)
        warehouse.load_corpus(corpus)
        warehouse.tracer.finish()
        for span in warehouse.tracer.spans:
            for node in span.walk():
                assert node.end is not None
                assert node.end >= node.start


class TestUntrackedSpanClose:
    """Regression: the ``(untracked)`` catch-all span was never closed,
    so exports rendered a nonsense duration."""

    def test_finish_closes_untracked_spans(self):
        tracer = Tracer()
        tracer.count("orphan")
        (span,) = tracer.spans
        assert span.end is None
        tracer.finish()
        assert span.end is not None
        assert span.duration_s >= 0

    def test_open_span_renders_null_duration(self):
        from repro.obs import span_to_dict
        tracer = Tracer()
        tracer.count("orphan")
        rendered = span_to_dict(tracer.spans[0])
        assert rendered["duration_ms"] is None

    def test_tracer_to_dicts_finishes_first(self):
        from repro.obs import tracer_to_dicts
        tracer = Tracer()
        tracer.count("orphan")
        (rendered,) = tracer_to_dicts(tracer)
        assert rendered["name"] == "(untracked)"
        assert rendered["duration_ms"] is not None


class _CountingBackend:
    """Sits *under* the instrumented wrapper and counts what actually
    reaches the engine — the ground truth the tracer must match."""

    def __init__(self, inner):
        self.inner = inner
        self.execute_calls = 0
        self.executemany_statements = 0

    @property
    def name(self):
        return self.inner.name

    def execute(self, sql, params=()):
        self.execute_calls += 1
        return self.inner.execute(sql, params)

    def executemany(self, sql, params_seq):
        count = self.inner.executemany(sql, params_seq)
        self.executemany_statements += count
        return count

    def __getattr__(self, item):
        return getattr(self.inner, item)


@pytest.fixture
def traced_pair():
    counting = _CountingBackend(MiniDbBackend())
    warehouse = Warehouse(backend=counting, trace=True)
    warehouse.loader.store_document(
        "db", "c", "k1",
        parse_document("<r><item><name>alpha</name></item>"
                       "<item><name>beta</name></item></r>"))
    warehouse.loader.store_document(
        "db", "c", "k2",
        parse_document("<r><item><name>gamma</name></item></r>"))
    return warehouse, counting


class TestPipelineSpans:
    QUERY = ('FOR $a IN document("db.c")/r/item '
             'WHERE $a/name = "alpha" RETURN $a//name')

    def test_every_stage_has_a_span(self, traced_pair):
        warehouse, __ = traced_pair
        result = warehouse.query(self.QUERY)
        root = result.trace
        assert root is not None and root.name == "query"
        assert [c.name for c in root.children] == PIPELINE_STAGES
        execute = root.find("execute")
        assert [c.name for c in execute.children] == EXECUTE_PHASES

    def test_stage_timings_monotonic_and_nested(self, traced_pair):
        warehouse, __ = traced_pair
        root = warehouse.query(self.QUERY).trace
        previous_end = root.start
        for child in root.children:
            assert child.start >= previous_end - 1e-9
            assert child.end >= child.start
            previous_end = child.end
        assert root.end >= previous_end
        execute = root.find("execute")
        for phase in execute.children:
            assert execute.start <= phase.start <= phase.end <= execute.end

    def test_backend_counters_equal_statements_actually_run(
            self, traced_pair):
        warehouse, counting = traced_pair
        before_execute = counting.execute_calls
        before_many = counting.executemany_statements
        result = warehouse.query(self.QUERY)
        ran = (counting.execute_calls - before_execute) + (
            counting.executemany_statements - before_many)
        assert result.trace.total_counter("statements") == ran
        assert ran > 0

    def test_load_counters_match_rows_stored(self, traced_pair):
        warehouse, __ = traced_pair
        tracer = warehouse.tracer
        elements = sum(span.counters.get("rows.elements", 0)
                       for top in tracer.spans for span in top.walk())
        expected = warehouse.stats()["elements"]
        assert elements == expected

    def test_result_rows_counter(self, traced_pair):
        warehouse, __ = traced_pair
        result = warehouse.query(self.QUERY)
        assert result.trace.find("execute").counters["result_rows"] == \
            len(result)

    def test_sql_text_and_param_counts_recorded(self, traced_pair):
        warehouse, __ = traced_pair
        result = warehouse.query(self.QUERY)
        statements = result.trace.all_statements()
        assert statements, "no statements recorded"
        for record in statements:
            assert record.sql.strip()
            assert record.kind == "SELECT"
            assert record.param_count >= 0
            assert record.duration_s >= 0

    def test_untraced_warehouse_has_no_trace(self):
        warehouse = Warehouse(backend=MiniDbBackend())
        warehouse.loader.store_document(
            "db", "c", "k1", parse_document("<r><name>x</name></r>"))
        result = warehouse.query(
            'FOR $a IN document("db.c")/r RETURN $a//name')
        assert result.trace is None


class TestHoundSpans:
    def test_load_produces_phase_spans_and_throughput(self):
        from repro.datahounds import InMemoryRepository
        from repro.synth import build_corpus
        corpus = build_corpus(seed=7, enzyme_count=5, embl_count=5,
                              sprot_count=5)
        repository = InMemoryRepository()
        corpus.publish_to(repository, "r1")
        warehouse = Warehouse(backend=MiniDbBackend(), trace=True)
        warehouse.refresh(repository, "hlx_enzyme")
        load_span = warehouse.tracer.last_span("load")
        assert load_span is not None
        names = [c.name for c in load_span.children]
        for phase in ("fetch", "diff", "transform", "store", "optimize"):
            assert phase in names
        assert load_span.counters["entries"] == 5
        assert load_span.counters["loaded"] == 5
        assert load_span.meta["entries_per_s"] > 0
