"""Structured event log (ring buffer, severities, JSONL) and the
slow-query log (threshold, SQL + EXPLAIN capture, event emission)."""

import json

import pytest

from repro.engine import Warehouse
from repro.obs import EventLog, MetricsRegistry, SlowQueryLog
from repro.xmlkit import parse_document

QUERY = ('FOR $a IN document("db.c")/r/item '
         'WHERE $a/name = "alpha" RETURN $a//name')


def small_warehouse(backend, **kwargs):
    warehouse = Warehouse(backend=backend, **kwargs)
    warehouse.loader.store_document(
        "db", "c", "k1",
        parse_document("<r><item><name>alpha</name></item>"
                       "<item><name>beta</name></item></r>"))
    return warehouse


class TestEventLog:
    def test_emit_and_read(self):
        log = EventLog(clock=lambda: 1000.0)
        event = log.emit("hound.load", source="embl", loaded=3)
        assert event.ts == 1000.0
        assert event.severity == "info"
        assert [e.name for e in log.events()] == ["hound.load"]
        assert log.events()[0].fields == {"source": "embl", "loaded": 3}

    def test_ring_buffer_drops_oldest(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("e", index=index)
        assert [e.fields["index"] for e in log.events()] == [2, 3, 4]
        assert log.emitted == 5
        assert len(log) == 3

    def test_severity_floor_suppresses(self):
        log = EventLog(min_severity="warning")
        assert log.emit("fine", severity="info") is None
        assert log.emit("bad", severity="error") is not None
        assert log.suppressed == 1
        assert [e.name for e in log.events()] == ["bad"]

    def test_filter_by_name_and_severity(self):
        log = EventLog()
        log.emit("a", severity="info")
        log.emit("b", severity="warning")
        log.emit("a", severity="error")
        assert len(log.events(name="a")) == 2
        assert [e.name for e in log.events(min_severity="warning")] \
            == ["b", "a"]

    def test_unknown_severity_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.emit("x", severity="fatal")
        with pytest.raises(ValueError):
            EventLog(min_severity="loud")

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog(clock=lambda: 7.0)
        log.emit("one", value=1)
        log.emit("two", value=2)
        lines = log.to_jsonl().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["one", "two"]
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(path) == 2
        assert path.read_text().count("\n") == 2


class TestSlowQueryLog:
    def test_fast_queries_not_recorded(self):
        log = SlowQueryLog(threshold_ms=100.0)
        assert log.record("q", None, 5.0, rows=1, cache_hit=False) is None
        assert log.seen == 1
        assert log.slow == 0

    def test_slow_query_recorded_with_event(self):
        events = EventLog()
        log = SlowQueryLog(threshold_ms=100.0, events=events)
        record = log.record("q", None, 250.0, rows=3, cache_hit=True)
        assert record.duration_ms == 250.0
        assert record.cache_hit is True
        (event,) = events.events(name="query.slow")
        assert event.severity == "warning"
        assert event.fields["rows"] == 3

    def test_lazy_statements_not_built_when_fast(self):
        log = SlowQueryLog(threshold_ms=100.0)
        calls = []

        def statements():
            calls.append(1)
            return [("SELECT 1", ())]

        log.record("q", None, 5.0, rows=0, cache_hit=False,
                   statements=statements)
        assert calls == []
        log.record("q", None, 500.0, rows=0, cache_hit=False,
                   statements=statements)
        assert calls == [1]

    def test_explain_failure_never_raises(self):
        class BrokenBackend:
            name = "broken"

            def explain(self, sql, params=()):
                raise RuntimeError("no plan for you")

        log = SlowQueryLog(threshold_ms=0.0)
        record = log.record("q", BrokenBackend(), 1.0, rows=0,
                            cache_hit=False,
                            statements=[("SELECT 1", ())])
        assert "explain failed" in record.plans["SELECT 1"][0]


class TestWarehouseSlowQueries:
    def test_slow_query_captures_sql_and_plans(self, backend):
        """The acceptance path: with the threshold at zero every query
        is 'slow' and must land with its compiled SQL and the engine's
        EXPLAIN output attached."""
        warehouse = small_warehouse(backend, metrics=MetricsRegistry(),
                                    slow_query_ms=0.0)
        warehouse.query(QUERY)
        (record,) = warehouse.slow_queries.records()
        assert record.query == QUERY
        assert record.backend == warehouse.backend.name
        assert record.rows == 1
        assert record.cache_hit is False
        assert record.sql and all(
            sql.lstrip().upper().startswith("SELECT")
            for sql in record.sql)
        assert record.plans                  # every backend can EXPLAIN
        assert all(lines for lines in record.plans.values())
        # and the companion warning event fired
        assert warehouse.events.events(name="query.slow")

    def test_cache_hit_flag_on_repeat(self, backend):
        warehouse = small_warehouse(backend, metrics=MetricsRegistry(),
                                    slow_query_ms=0.0)
        warehouse.query(QUERY)
        warehouse.query(QUERY)
        first, second = warehouse.slow_queries.records()
        assert first.cache_hit is False
        assert second.cache_hit is True

    def test_to_dicts_is_json_ready(self, backend):
        warehouse = small_warehouse(backend, metrics=MetricsRegistry(),
                                    slow_query_ms=0.0)
        warehouse.query(QUERY)
        payload = json.dumps(warehouse.slow_queries.to_dicts())
        assert "duration_ms" in payload

    def test_default_threshold_keeps_log_empty(self, backend):
        warehouse = small_warehouse(backend, metrics=MetricsRegistry())
        warehouse.query(QUERY)
        assert warehouse.slow_queries.records() == []
        assert warehouse.slow_queries.seen == 1
