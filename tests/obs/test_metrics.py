"""The always-on metrics plane: counters/gauges/histograms, the fused
statement timer, snapshots, Prometheus exposition, thread safety, and
the end-to-end wiring through a live warehouse."""

import threading

import pytest

from repro.engine import Warehouse
from repro.obs import (
    MetricsRegistry,
    NullMetrics,
    default_registry,
    resolve_metrics,
)
from repro.obs.metrics import DEFAULT_BUCKETS, SIZE_BUCKETS
from repro.xmlkit import parse_document

QUERY = ('FOR $a IN document("db.c")/r/item '
         'WHERE $a/name = "alpha" RETURN $a//name')


def small_warehouse(backend, **kwargs):
    warehouse = Warehouse(backend=backend, **kwargs)
    warehouse.loader.store_document(
        "db", "c", "k1",
        parse_document("<r><item><name>alpha</name></item>"
                       "<item><name>beta</name></item></r>"))
    return warehouse


class TestPrimitives:
    def test_counter_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests", source="embl")
        counter.inc()
        counter.inc(5)
        assert registry.get_counter("requests", source="embl") == 6
        # different label set = different counter
        assert registry.get_counter("requests", source="sprot") == 0

    def test_gauge_set_and_read(self):
        registry = MetricsRegistry()
        registry.set_gauge("queue.depth", 17)
        assert registry.get_gauge_value("queue.depth") == 17
        registry.set_gauge("queue.depth", 3)
        assert registry.get_gauge_value("queue.depth") == 3

    def test_gauge_read_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.get_gauge_value("never.set") is None
        assert registry.snapshot()["gauges"] == []

    def test_handles_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert (registry.counter("a", x="1")
                is not registry.counter("a", x="2"))
        # label order must not matter
        assert (registry.counter("b", x="1", y="2")
                is registry.counter("b", y="2", x="1"))

    def test_counter_total_sums_label_sets(self):
        registry = MetricsRegistry()
        registry.inc("loads", 2, source="embl")
        registry.inc("loads", 3, source="sprot")
        assert registry.counter_total("loads") == 5

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for __ in range(99):
            histogram.observe(0.002)
        histogram.observe(40.0)
        p = histogram.percentiles()
        assert 0.001 <= p["p50"] <= 0.0025
        assert 0.001 <= p["p95"] <= 0.0025
        assert p["p99"] >= 0.0025
        assert histogram.count == 100

    def test_histogram_overflow_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        histogram.observe(10_000.0)     # beyond the last bound
        assert histogram.bucket_counts[-1] == 1
        # the histogram cannot see beyond its last edge
        assert histogram.quantile(0.99) == DEFAULT_BUCKETS[-1]

    def test_histogram_empty_quantile_is_zero(self):
        assert MetricsRegistry().histogram("h").quantile(0.5) == 0.0

    def test_histogram_custom_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", buckets=SIZE_BUCKETS)
        histogram.observe(100)
        assert histogram.bounds == SIZE_BUCKETS

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2, 1))


class TestStatementTimer:
    def test_fused_update_feeds_all_three_metrics(self):
        registry = MetricsRegistry()
        timer = registry.statement_timer("SELECT")
        timer.record(12, 0.004)
        timer.record(0, 0.5, executions=10)
        assert registry.get_counter("backend.statements",
                                    kind="SELECT") == 11
        assert registry.get_counter("backend.rows", kind="SELECT") == 12
        seconds = registry.histogram("backend.statement_seconds",
                                     kind="SELECT")
        assert seconds.count == 2
        assert seconds.sum == pytest.approx(0.504)

    def test_timer_is_get_or_create(self):
        registry = MetricsRegistry()
        assert (registry.statement_timer("INSERT")
                is registry.statement_timer("INSERT"))


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        timer = registry.statement_timer("SELECT")

        def work():
            counter = registry.counter("hits")
            for __ in range(2_000):
                counter.inc()
                registry.observe("lat", 0.001)
                timer.record(1, 0.001)

        threads = [threading.Thread(target=work) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.get_counter("hits") == 16_000
        assert registry.histogram("lat").count == 16_000
        assert registry.get_counter("backend.statements",
                                    kind="SELECT") == 16_000
        assert registry.get_counter("backend.rows", kind="SELECT") == 16_000


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("loads", 3, source="embl")
        registry.set_gauge("size", 9)
        registry.observe("lat", 0.01)
        snapshot = registry.snapshot()
        (counter,) = snapshot["counters"]
        assert counter == {"name": "loads", "labels": {"source": "embl"},
                           "value": 3}
        (gauge,) = snapshot["gauges"]
        assert gauge["value"] == 9
        (histogram,) = snapshot["histograms"]
        assert histogram["count"] == 1
        assert set(histogram) >= {"name", "labels", "count", "sum",
                                  "p50", "p95", "p99", "buckets"}
        assert "+Inf" in histogram["buckets"]

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.inc("x")
        registry.statement_timer("SELECT")
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"counters": [], "gauges": [], "histograms": []}


def parse_prometheus(text):
    """Minimal exposition-format validator: returns {name: type} and
    {sample_name: [(labels, value)]}; raises on malformed lines."""
    import re
    types = {}
    samples = {}
    sample_re = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
        r'(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
        r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*)?\})?'
        r' (-?[0-9.eE+\-]+|\+Inf|-Inf|NaN)$')
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            assert parts[0] == "#" and parts[1] == "TYPE", line
            assert parts[3] in ("counter", "gauge", "histogram"), line
            types[parts[2]] = parts[3]
            continue
        match = sample_re.match(line)
        assert match, f"malformed sample line: {line!r}"
        name, labels, value = match.group(1), match.group(3), match.group(5)
        float(value)    # must parse as a number
        samples.setdefault(name, []).append((labels or "", value))
    return types, samples


class TestPrometheusRendering:
    def test_exposition_is_valid_and_complete(self):
        registry = MetricsRegistry()
        registry.inc("query.total", 4, backend="sqlite")
        registry.set_gauge("cache.size", 2)
        registry.observe("query.seconds", 0.02)
        text = registry.render_prometheus()
        types, samples = parse_prometheus(text)
        assert types["xomatiq_query_total"] == "counter"
        assert types["xomatiq_cache_size"] == "gauge"
        assert types["xomatiq_query_seconds"] == "histogram"
        assert ('backend="sqlite"', "4") in samples["xomatiq_query_total"]
        # histogram series: one _bucket per edge + +Inf, plus _sum/_count
        buckets = samples["xomatiq_query_seconds_bucket"]
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1
        assert samples["xomatiq_query_seconds_count"] == [("", "1")]

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(99.0)
        __, samples = parse_prometheus(registry.render_prometheus())
        counts = [int(v) for __, v in samples["xomatiq_lat_bucket"]]
        assert counts == sorted(counts)          # cumulative
        assert counts[-1] == 3                   # +Inf sees everything

    def test_counter_names_get_total_suffix(self):
        registry = MetricsRegistry()
        registry.inc("loads")
        text = registry.render_prometheus()
        assert "xomatiq_loads_total 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.inc("odd", path='a"b\\c')
        types, samples = parse_prometheus(registry.render_prometheus())
        assert "xomatiq_odd_total" in types

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestResolveMetrics:
    def test_none_and_true_resolve_to_default(self):
        assert resolve_metrics(None) is default_registry()
        assert resolve_metrics(True) is default_registry()

    def test_false_resolves_to_null(self):
        assert isinstance(resolve_metrics(False), NullMetrics)

    def test_instance_passes_through(self):
        registry = MetricsRegistry()
        assert resolve_metrics(registry) is registry

    def test_null_metrics_is_inert(self):
        null = NullMetrics()
        null.inc("x")
        null.observe("y", 1.0)
        null.set_gauge("z", 2.0)
        null.counter("c").inc()
        null.statement_timer("SELECT").record(1, 0.1)
        assert null.snapshot() == {"counters": [], "gauges": [],
                                   "histograms": []}
        assert null.render_prometheus() == ""


class TestWarehouseWiring:
    def test_query_feeds_metrics(self, backend):
        registry = MetricsRegistry()
        warehouse = small_warehouse(backend, metrics=registry)
        warehouse.query(QUERY)
        warehouse.query(QUERY)
        name = warehouse.backend.name
        assert registry.get_counter("query.total", backend=name) == 2
        assert registry.get_counter("query.cache_misses") == 1
        assert registry.get_counter("query.cache_hits") == 1
        assert registry.histogram("query.seconds").count == 2
        assert registry.get_counter("backend.statements",
                                    kind="SELECT") > 0

    def test_query_cache_metrics(self, backend):
        registry = MetricsRegistry()
        warehouse = small_warehouse(backend, metrics=registry)
        warehouse.query(QUERY)
        warehouse.query(QUERY)
        assert registry.get_counter("query_cache.hits") == 1
        assert registry.get_counter("query_cache.misses") == 1
        assert registry.get_gauge_value("query_cache.size") == 1

    def test_load_feeds_metrics(self, backend):
        registry = MetricsRegistry()
        warehouse = small_warehouse(backend, metrics=registry)
        assert registry.get_counter("load.documents", source="db") == 1
        assert registry.get_counter("load.rows", table="elements") > 0

    def test_metrics_false_records_nothing(self, backend):
        warehouse = small_warehouse(backend, metrics=False)
        warehouse.query(QUERY)
        assert warehouse._metrics_sink is None
        assert isinstance(warehouse.metrics, NullMetrics)

    def test_remove_source_counter(self, backend):
        registry = MetricsRegistry()
        warehouse = small_warehouse(backend, metrics=registry)
        warehouse.remove_source("db")
        assert registry.get_counter("warehouse.documents_removed",
                                    source="db") == 1

    def test_metrics_survive_close_and_reopen(self, tmp_path):
        """The registry outlives any one warehouse: close a warehouse,
        reopen the same database, and the counters keep accumulating
        (the always-on plane is process-scoped, not connection-scoped)."""
        from repro.relational import SqliteBackend
        registry = MetricsRegistry()
        path = str(tmp_path / "wh.sqlite")
        warehouse = small_warehouse(SqliteBackend(path), metrics=registry)
        warehouse.query(QUERY)
        warehouse.close()
        assert registry.get_counter("query.total", backend="sqlite") == 1

        reopened = Warehouse(backend=SqliteBackend(path), create=False,
                             metrics=registry)
        reopened.query(QUERY)
        reopened.close()
        assert registry.get_counter("query.total", backend="sqlite") == 2
        assert registry.get_counter("load.documents", source="db") == 1

    def test_traced_spans_feed_histograms(self, backend):
        registry = MetricsRegistry()
        warehouse = small_warehouse(backend, metrics=registry, trace=True)
        warehouse.query(QUERY)
        spans = registry.histogram("trace.span_seconds", span="query")
        assert spans.count == 1
