"""Warehouse health reporting: structural checks, harvest freshness,
and the human rendering."""

from repro.datahounds.transport import InMemoryRepository
from repro.engine import Warehouse
from repro.obs import MetricsRegistry, format_health, health_report
from repro.xmlkit import parse_document

ENZYME_RELEASE = """\
ID   1.1.1.1
DE   alcohol dehydrogenase
//
ID   1.1.1.2
DE   aldehyde reductase
//
"""


def small_warehouse(backend, **kwargs):
    warehouse = Warehouse(backend=backend, **kwargs)
    warehouse.loader.store_document(
        "db", "c", "k1",
        parse_document("<r><item><name>alpha</name></item></r>"))
    return warehouse


class TestStructuralChecks:
    def test_loaded_warehouse_is_ok(self, backend):
        warehouse = small_warehouse(backend, metrics=MetricsRegistry())
        report = warehouse.health()
        assert report["status"] == "ok"
        names = [check["name"] for check in report["checks"]]
        assert "documents_present" in names
        assert "keyword_index_populated" in names
        assert report["stats"]["documents"] == 1

    def test_empty_warehouse_warns(self, backend):
        warehouse = Warehouse(backend=backend, metrics=MetricsRegistry())
        report = warehouse.health()
        assert report["status"] == "warn"
        by_name = {check["name"]: check for check in report["checks"]}
        assert by_name["documents_present"]["status"] == "warn"

    def test_gutted_keyword_index_fails(self, backend):
        """A wiped keyword index over indexed text silently answers
        keyword queries with nothing — a wrong-answer condition, so it
        is FAIL (structural), not WARN (operational)."""
        warehouse = small_warehouse(backend, metrics=MetricsRegistry())
        warehouse.backend.execute("DELETE FROM keywords")
        warehouse.backend.commit()
        report = warehouse.health()
        by_name = {check["name"]: check for check in report["checks"]}
        assert by_name["keyword_index_populated"]["status"] == "fail"
        assert report["status"] == "fail"


class TestFreshness:
    def test_hound_load_sets_freshness(self, backend):
        registry = MetricsRegistry()
        warehouse = Warehouse(backend=backend, metrics=registry)
        repository = InMemoryRepository(metrics=registry)
        repository.publish("hlx_enzyme", "r1", ENZYME_RELEASE)
        warehouse.connect(repository).load("hlx_enzyme")

        report = warehouse.health()
        info = report["freshness"]["hlx_enzyme"]
        assert info["age_s"] is not None
        assert info["age_s"] < 60
        assert info["stale"] is False
        by_name = {check["name"]: check for check in report["checks"]}
        assert by_name["freshness:hlx_enzyme"]["status"] == "ok"

    def test_stale_harvest_warns(self, backend):
        registry = MetricsRegistry()
        warehouse = Warehouse(backend=backend, metrics=registry)
        repository = InMemoryRepository(metrics=registry)
        repository.publish("hlx_enzyme", "r1", ENZYME_RELEASE)
        warehouse.connect(repository).load("hlx_enzyme")

        report = health_report(warehouse, stale_after_s=0.0,
                               clock=lambda: 9e12)   # far future
        info = report["freshness"]["hlx_enzyme"]
        assert info["stale"] is True
        assert report["status"] == "warn"

    def test_no_harvest_recorded_is_not_a_fault(self, backend):
        """A warehouse attached to an existing database has documents
        but no harvest gauge in this process — that must not warn."""
        warehouse = small_warehouse(backend, metrics=MetricsRegistry())
        report = warehouse.health()
        assert report["freshness"]["db"]["age_s"] is None
        by_name = {check["name"]: check for check in report["checks"]}
        assert by_name["freshness:db"]["status"] == "ok"


class TestRendering:
    def test_format_health_lists_every_check(self, backend):
        warehouse = small_warehouse(backend, metrics=MetricsRegistry())
        report = warehouse.health()
        text = format_health(report)
        assert text.startswith("health: OK")
        for check in report["checks"]:
            assert check["name"] in text

    def test_warn_marker(self, backend):
        warehouse = Warehouse(backend=backend, metrics=MetricsRegistry())
        text = format_health(warehouse.health())
        assert text.startswith("health: WARN")
        assert "[!]" in text


class TestResilienceSection:
    def resilient_setup(self, backend, fail=0):
        from repro.datahounds import (FaultInjectingRepository, FaultPlan,
                                      ResilientRepository, RetryPolicy)
        registry = MetricsRegistry()
        warehouse = Warehouse(backend=backend, metrics=registry)
        repository = InMemoryRepository(metrics=registry)
        repository.publish("hlx_enzyme", "r1", ENZYME_RELEASE)
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", fail)
        wrapper = ResilientRepository(
            FaultInjectingRepository(repository, plan, metrics=registry),
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            breaker_threshold=3, sleep=lambda s: None,
            metrics=registry, events=warehouse.events)
        return warehouse, wrapper

    def test_closed_breaker_reported_ok(self, backend):
        warehouse, wrapper = self.resilient_setup(backend)
        warehouse.connect(wrapper).load("hlx_enzyme")
        report = warehouse.health()
        assert report["resilience"]["breakers"] == {"hlx_enzyme": "closed"}
        by_name = {check["name"]: check for check in report["checks"]}
        assert by_name["breaker:hlx_enzyme"]["status"] == "ok"
        assert by_name["quarantine_empty"]["status"] == "ok"

    def test_open_breaker_warns(self, backend):
        import pytest
        from repro.errors import TransportError
        warehouse, wrapper = self.resilient_setup(backend, fail=99)
        with pytest.raises(TransportError):
            warehouse.connect(wrapper).load("hlx_enzyme")
        report = warehouse.health()
        assert report["resilience"]["breakers"] == {"hlx_enzyme": "open"}
        assert report["resilience"]["fetch_errors"]["hlx_enzyme"] > 0
        assert report["resilience"]["retries"]["hlx_enzyme"] > 0
        by_name = {check["name"]: check for check in report["checks"]}
        assert by_name["breaker:hlx_enzyme"]["status"] == "warn"
        assert report["status"] == "warn"
        assert "[!] breaker:hlx_enzyme" in format_health(report)

    def test_quarantined_entries_warn(self, backend):
        registry = MetricsRegistry()
        warehouse = Warehouse(backend=backend, metrics=registry)
        repository = InMemoryRepository(metrics=registry)
        repository.publish(
            "hlx_enzyme", "r1",
            "ID   1.1.1.1\nDE   fine.\n//\n"
            "ID   1.1.1.2\nDE   broken.\nPR   BAD LINE\n//\n")
        warehouse.connect(repository, quarantine=True).load("hlx_enzyme")
        report = warehouse.health()
        assert report["resilience"]["quarantined"] == {"hlx_enzyme": 1}
        by_name = {check["name"]: check for check in report["checks"]}
        assert by_name["quarantine_empty"]["status"] == "warn"
        assert "hlx_enzyme: 1" in by_name["quarantine_empty"]["detail"]

    def test_no_metrics_means_empty_section(self, backend):
        warehouse = Warehouse(backend=backend, metrics=False)
        report = warehouse.health()
        assert report["resilience"] == {"breakers": {}, "quarantined": {},
                                        "fetch_errors": {}, "retries": {}}
