"""TraceContext minting, cross-thread span parenting, the bounded
TraceStore (head sampling + tail keep), and the served trace formats
(xomatiq-trace/1 JSON, Chrome trace_event, text waterfall)."""

import json
import threading

import pytest

from repro.obs import (
    TraceContext,
    TraceStore,
    Tracer,
    chrome_trace,
    format_trace,
    trace_summary,
    trace_to_dict,
)
from repro.obs.trace import new_span_id, new_trace_id
from repro.obs.tracestore import TRACE_FORMAT


def finished_root(name="request", tracer=None, duration_s=None, **meta):
    """A small finished span tree (root + one child)."""
    tracer = tracer or Tracer()
    with tracer.span(name, **meta) as root:
        with tracer.span("child"):
            pass
    if duration_s is not None:
        root.end = root.start + duration_s
    return root


class TestTraceContext:
    def test_mint_honors_safe_request_id(self):
        context = TraceContext.mint("req-abc_1.2:x")
        assert context.trace_id == "req-abc_1.2:x"

    @pytest.mark.parametrize("bad", [
        "", None, "has space", "bad\nid", 'quo"te', "x" * 65,
        "héllo", "semi;colon",
    ])
    def test_unsafe_request_ids_get_fresh_trace_ids(self, bad):
        context = TraceContext.mint(bad)
        assert context.trace_id != bad
        assert context.trace_id  # minted, never empty

    def test_minted_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()
        assert new_span_id() != new_span_id()
        ids = {TraceContext.mint().trace_id for __ in range(100)}
        assert len(ids) == 100

    def test_context_seeds_a_root_span(self):
        tracer = Tracer()
        context = TraceContext.mint("req-1")
        with tracer.span("request", context=context) as root:
            with tracer.span("inner") as inner:
                assert inner.trace_id == "req-1"
        assert root.trace_id == "req-1"
        assert root.parent_id == context.span_id == ""

    def test_context_ignored_when_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner",
                             context=TraceContext.mint("req-2")) as inner:
                pass
        assert inner.trace_id == outer.trace_id != "req-2"

    def test_current_context_reflects_open_span(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        with tracer.span("outer") as outer:
            context = tracer.current_context()
            assert context.trace_id == outer.trace_id
            assert context.span_id == outer.span_id
        assert tracer.current_context() is None

    def test_roots_always_mint_a_trace_id(self):
        tracer = Tracer()
        with tracer.span("lonely") as span:
            pass
        assert span.trace_id
        assert span.span_id


class TestCrossThreadParenting:
    """Regression: spans opened on worker threads started orphaned
    trees — the coordinator's stack is thread-local, so scatter-gather
    and bulk-load spans never attached to the request. The explicit
    ``parent=`` handoff is the fix."""

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        seen = {}

        def worker(parent):
            with tracer.span("shard_subquery", parent=parent) as span:
                with tracer.span("sql") as inner:
                    seen["inner"] = inner
                seen["outer"] = span

        with tracer.span("federated_query") as root:
            thread = threading.Thread(target=worker, args=(root,))
            thread.start()
            thread.join()

        # one tree, not two: the worker's span is a child of the root
        assert len(tracer.spans) == 1
        assert seen["outer"] in root.children
        assert seen["outer"].parent_id == root.span_id
        assert seen["outer"].trace_id == root.trace_id
        # nesting *within* the worker thread still stacks normally
        assert seen["inner"] in seen["outer"].children
        assert seen["inner"].trace_id == root.trace_id
        # thread lanes recorded for the Chrome export
        assert seen["outer"].tid != root.tid

    def test_many_workers_attach_without_losing_spans(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            def work(index):
                with tracer.span("worker", parent=root) as span:
                    span.count("index", index)
            threads = [threading.Thread(target=work, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(root.children) == 8
        assert {child.trace_id for child in root.children} \
            == {root.trace_id}


class TestTraceStore:
    def test_keeps_and_serves_by_trace_id(self):
        store = TraceStore()
        root = finished_root()
        record = store.offer(root, request_id="r1", endpoint="query",
                             status=200)
        assert record is not None and record.kept == "sampled"
        assert store.get(root.trace_id) is record
        assert store.get("missing") is None
        assert len(store) == 1
        assert (store.offered, store.kept) == (1, 1)

    def test_records_newest_first_with_limit(self):
        store = TraceStore()
        roots = [finished_root() for __ in range(3)]
        for root in roots:
            store.offer(root)
        listed = store.records()
        assert [r.trace_id for r in listed] == \
            [r.trace_id for r in reversed(roots)]
        assert len(store.records(limit=2)) == 2

    def test_capacity_evicts_oldest(self):
        store = TraceStore(capacity=2)
        roots = [finished_root() for __ in range(3)]
        for root in roots:
            store.offer(root)
        assert len(store) == 2
        assert store.get(roots[0].trace_id) is None
        assert store.get(roots[2].trace_id) is not None

    def test_duplicate_trace_id_newer_wins(self):
        store = TraceStore()
        tracer = Tracer()
        context = TraceContext.mint("req-dup")
        with tracer.span("request", context=context) as first:
            pass
        with tracer.span("request", context=context) as second:
            pass
        store.offer(first, status=200)
        store.offer(second, status=500)
        assert len(store) == 1
        assert store.get("req-dup").status == 500

    def test_sampling_is_deterministic(self):
        store = TraceStore(sample_rate=0.5)
        verdicts = {tid: store.sampled(tid)
                    for tid in (f"trace-{i}" for i in range(64))}
        assert any(verdicts.values()) and not all(verdicts.values())
        again = TraceStore(sample_rate=0.5)
        assert all(again.sampled(tid) == kept
                   for tid, kept in verdicts.items())

    def test_tail_keep_overrides_head_sampling(self):
        store = TraceStore(sample_rate=0.0, slow_ms=100.0)
        assert store.offer(finished_root()) is None          # sampled out
        slow = store.offer(finished_root(duration_s=0.2))
        assert slow is not None and slow.kept == "slow"
        error = store.offer(finished_root(), status=500)
        assert error is not None and error.kept == "error"
        crashed = store.offer(finished_root(), error=True)
        assert crashed is not None and crashed.kept == "error"
        assert (store.offered, store.kept) == (4, 3)

    def test_error_outranks_slow(self):
        store = TraceStore(slow_ms=100.0)
        record = store.offer(finished_root(duration_s=0.2), status=503)
        assert record.kept == "error"


class TestTraceFormats:
    def setup_method(self):
        tracer = Tracer()
        context = TraceContext.mint("req-fmt")
        with tracer.span("request", context=context,
                         endpoint="query") as root:
            with tracer.span("plan"):
                pass
            with tracer.span("shard_subquery", shard="s0") as shard:
                shard.count("rows_shipped", 40)
        self.root = root
        self.record = TraceStore().offer(root, request_id="req-fmt",
                                         endpoint="query", status=200)

    def test_trace_to_dict_schema(self):
        data = trace_to_dict(self.record)
        assert data["format"] == TRACE_FORMAT
        assert data["trace_id"] == "req-fmt"
        assert data["status"] == 200
        assert data["root"]["name"] == "request"
        assert [c["name"] for c in data["root"]["children"]] == \
            ["plan", "shard_subquery"]
        for child in data["root"]["children"]:
            assert child["parent_id"] == data["root"]["span_id"]
            assert child["trace_id"] == "req-fmt"
        json.dumps(data)

    def test_trace_summary_is_flat(self):
        summary = trace_summary(self.record)
        assert summary["trace_id"] == "req-fmt"
        assert summary["spans"] == 3
        assert summary["root"] == "request"
        assert summary["kept"] == "sampled"
        json.dumps(summary)

    def test_chrome_trace_events(self):
        data = chrome_trace(self.record)
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in complete} == \
            {"request", "plan", "shard_subquery"}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        shard = next(e for e in complete
                     if e["name"] == "shard_subquery")
        assert shard["args"]["shard"] == "s0"
        assert shard["args"]["counter.rows_shipped"] == 40
        # one thread here: one lane, named for the request thread
        assert metadata and metadata[0]["args"]["name"] == "request"
        assert data["otherData"]["trace_id"] == "req-fmt"
        json.dumps(data)

    def test_chrome_trace_stringifies_exotic_args(self):
        self.root.meta["error"] = ValueError("boom")
        data = chrome_trace(self.record)
        root_event = next(e for e in data["traceEvents"]
                          if e.get("name") == "request")
        assert root_event["args"]["error"] == "boom"
        json.dumps(data)

    def test_waterfall_renders_from_served_json(self):
        # the CLI renders the payload it fetched, not live Span objects
        served = json.loads(json.dumps(trace_to_dict(self.record)))
        text = format_trace(served)
        assert "trace req-fmt" in text
        for name in ("request", "plan", "shard_subquery"):
            assert name in text
        assert "shard=s0" in text
        assert "rows_shipped=40" in text
