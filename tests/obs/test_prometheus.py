"""Prometheus text exposition correctness.

The exposition format (version 0.0.4) is a real wire protocol with a
picky parser on the other end; these tests pin the rules a scraper
relies on: metric-name validity, label escaping, cumulative bucket
monotonicity, counter ``_total`` suffixing, and the OpenMetrics-style
exemplar syntax this repo appends to ``_bucket`` lines.
"""

import re

from repro.obs import MetricsRegistry

#: a legal exposition metric name
NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: one sample line: name{labels} value [# {labels} value timestamp]
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)"
    r"(?P<exemplar> # \{[^{}]*\} [^ ]+ [0-9.]+)?$")

LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def render(registry):
    return registry.render_prometheus().splitlines()


def sample_lines(registry):
    return [line for line in render(registry)
            if line and not line.startswith("#")]


class TestNamesAndTypes:
    def test_dotted_names_are_mangled_to_valid_names(self):
        registry = MetricsRegistry()
        registry.inc("service.requests", endpoint="query")
        registry.set_gauge("service.in-flight", 3)
        registry.observe("federation.shard_seconds", 0.01, shard="s0")
        for line in sample_lines(registry):
            match = SAMPLE_RE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            assert NAME_RE.match(match.group("name")), line

    def test_counters_get_total_suffix_once(self):
        registry = MetricsRegistry()
        registry.inc("queries")
        registry.inc("loads_total")
        names = {SAMPLE_RE.match(line).group("name")
                 for line in sample_lines(registry)}
        assert "xomatiq_queries_total" in names
        assert "xomatiq_loads_total" in names
        assert "xomatiq_loads_total_total" not in names

    def test_type_header_precedes_samples_exactly_once(self):
        registry = MetricsRegistry()
        registry.inc("requests", endpoint="a")
        registry.inc("requests", endpoint="b")
        registry.observe("seconds", 0.1, endpoint="a")
        registry.observe("seconds", 0.2, endpoint="b")
        lines = render(registry)
        type_lines = [line for line in lines
                      if line.startswith("# TYPE ")]
        declared = [line.split()[2] for line in type_lines]
        assert declared == sorted(set(declared), key=declared.index)
        assert len(declared) == len(set(declared))
        # every TYPE header names the family its following samples use
        for header in type_lines:
            name = header.split()[2]
            index = lines.index(header)
            follower = lines[index + 1]
            assert follower.startswith(name), (header, follower)

    def test_kinds_declared_correctly(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 0.1)
        text = registry.render_prometheus()
        assert "# TYPE xomatiq_c_total counter" in text
        assert "# TYPE xomatiq_g gauge" in text
        assert "# TYPE xomatiq_h histogram" in text


class TestLabelEscaping:
    def test_backslash_quote_and_newline_escaped(self):
        registry = MetricsRegistry()
        registry.inc("events", path='C:\\data\n"prod"')
        (line,) = sample_lines(registry)
        # the raw control characters never reach the wire
        assert "\n" not in line.replace("\\n", "")
        assert '\\\\' in line and '\\"' in line and "\\n" in line
        # and the escaped form round-trips through the label grammar
        labels = dict(LABEL_RE.findall(
            SAMPLE_RE.match(line).group("labels")))
        assert labels["path"] == 'C:\\\\data\\n\\"prod\\"'

    def test_label_values_quoted(self):
        registry = MetricsRegistry()
        registry.inc("requests", endpoint="query", status=200)
        (line,) = sample_lines(registry)
        assert 'endpoint="query"' in line
        assert 'status="200"' in line


class TestHistogramRules:
    def build(self):
        registry = MetricsRegistry()
        for value in (0.0004, 0.003, 0.02, 0.02, 7.0, 120.0):
            registry.observe("request_seconds", value, endpoint="q")
        return registry

    def test_buckets_are_cumulative_and_monotonic(self):
        registry = self.build()
        buckets = [line for line in sample_lines(registry)
                   if "_bucket" in line]
        counts = [float(SAMPLE_RE.match(line).group("value"))
                  for line in buckets]
        assert counts == sorted(counts)
        assert any('le="+Inf"' in line for line in buckets)

    def test_inf_bucket_equals_count(self):
        registry = self.build()
        lines = sample_lines(registry)
        inf = next(float(SAMPLE_RE.match(line).group("value"))
                   for line in lines if 'le="+Inf"' in line)
        count = next(float(SAMPLE_RE.match(line).group("value"))
                     for line in lines
                     if SAMPLE_RE.match(line).group("name")
                     .endswith("_count"))
        assert inf == count == 6

    def test_sum_line_present(self):
        registry = self.build()
        total = next(float(SAMPLE_RE.match(line).group("value"))
                     for line in sample_lines(registry)
                     if SAMPLE_RE.match(line).group("name")
                     .endswith("_sum"))
        assert total == (0.0004 + 0.003 + 0.02 + 0.02 + 7.0 + 120.0)


class TestExemplars:
    def test_exemplar_appended_to_bucket_line(self):
        registry = MetricsRegistry()
        registry.observe("request_seconds", 0.02, endpoint="query",
                         exemplar="req-42")
        buckets = [line for line in sample_lines(registry)
                   if "_bucket" in line]
        with_exemplar = [line for line in buckets if " # " in line]
        assert len(with_exemplar) == 1
        match = SAMPLE_RE.match(with_exemplar[0])
        assert match and match.group("exemplar")
        assert 'trace_id="req-42"' in match.group("exemplar")
        # the exemplar's value is the observation that landed there
        assert " 0.02 " in match.group("exemplar")
        # it sits on the bucket the observation fell into
        assert 'le="0.025"' in with_exemplar[0]

    def test_exemplar_only_on_bucket_lines(self):
        registry = MetricsRegistry()
        registry.observe("request_seconds", 0.02, exemplar="req-42")
        for line in sample_lines(registry):
            if "_bucket" not in line:
                assert " # " not in line, line

    def test_newer_exemplar_replaces_older_in_same_bucket(self):
        registry = MetricsRegistry()
        registry.observe("request_seconds", 0.02, exemplar="old")
        registry.observe("request_seconds", 0.02, exemplar="new")
        text = registry.render_prometheus()
        assert 'trace_id="new"' in text
        assert 'trace_id="old"' not in text

    def test_no_exemplars_no_hash_marks(self):
        registry = MetricsRegistry()
        registry.observe("request_seconds", 0.02)
        for line in sample_lines(registry):
            assert " # " not in line

    def test_every_line_still_parses_with_exemplars(self):
        registry = MetricsRegistry()
        registry.inc("requests", endpoint="query")
        registry.observe("request_seconds", 0.004, endpoint="query",
                         exemplar="trace-a")
        registry.observe("request_seconds", 3.0, endpoint="query",
                         exemplar="trace-b")
        for line in sample_lines(registry):
            assert SAMPLE_RE.match(line), f"bad line: {line!r}"
