"""Regression tests for value semantics the query fuzzer pinned down.

Three rules, identical across the relational and native paths:

1. RETURN of an element path yields the XQuery *string value* — the
   subtree text concatenation, ``""`` for an empty element, one value
   per matched element.
2. Comparisons operate on *leaf* values: an element with no direct
   text contributes no comparison value.
3. Structurally identical siblings are distinct nodes (positional
   predicates rank by identity).
"""

import pytest

from repro.baselines import NativeXmlStore
from repro.xmlkit import parse_document


def pair(empty_warehouse, text):
    doc = parse_document(text)
    empty_warehouse.loader.store_document("db", "c", "k0", doc)
    empty_warehouse.optimize()
    store = NativeXmlStore()
    store.add_document("db", "c", "k0", parse_document(text))
    return empty_warehouse, store


def agree(warehouse, store, query):
    rel = sorted(tuple(sorted((c, tuple(v)) for c, v in row.values.items()))
                 for row in warehouse.query(query).rows)
    nat = sorted(tuple(sorted((c, tuple(v)) for c, v in row.values.items()))
                 for row in store.query(query).rows)
    assert rel == nat, (query, rel, nat)
    return [dict((c, list(v)) for c, v in row) for row in rel]


class TestStringValueOfReturnItems:
    def test_empty_element_yields_empty_string(self, empty_warehouse):
        wh, st = pair(empty_warehouse, "<entry><alpha/></entry>")
        rows = agree(wh, st, 'FOR $e IN document("db.c")/entry '
                             'RETURN $e/alpha')
        assert rows[0]["alpha"] == [""]

    def test_missing_element_yields_no_value(self, empty_warehouse):
        wh, st = pair(empty_warehouse, "<entry><beta>x</beta></entry>")
        rows = agree(wh, st, 'FOR $e IN document("db.c")/entry '
                             'RETURN $e/alpha')
        assert rows[0]["alpha"] == []

    def test_container_returns_subtree_concatenation(self, empty_warehouse):
        wh, st = pair(empty_warehouse,
                      "<entry><group><a>one</a><b>two</b></group></entry>")
        rows = agree(wh, st, 'FOR $e IN document("db.c")/entry '
                             'RETURN $e/group')
        assert rows[0]["group"] == ["onetwo"]

    def test_one_value_per_matched_element(self, empty_warehouse):
        wh, st = pair(empty_warehouse,
                      "<entry><a>1</a><a>2</a><a/></entry>")
        rows = agree(wh, st, 'FOR $e IN document("db.c")/entry '
                             'RETURN $e//a')
        assert rows[0]["a"] == ["1", "2", ""]

    def test_sequence_residues_included_in_string_value(self,
                                                        empty_warehouse):
        wh, st = pair(empty_warehouse,
                      '<entry><sequence length="4">acgt</sequence></entry>')
        rows = agree(wh, st, 'FOR $e IN document("db.c")/entry '
                             'RETURN $e/sequence')
        assert rows[0]["sequence"] == ["acgt"]


class TestLeafComparisonSemantics:
    def test_container_contributes_no_comparison_value(self,
                                                       empty_warehouse):
        wh, st = pair(empty_warehouse,
                      "<entry><group><a>3</a><a>3</a></group></entry>")
        rows = agree(wh, st, 'FOR $e IN document("db.c")/entry '
                             'WHERE $e/group != 3 RETURN $e')
        assert rows == []   # group has no direct text: no value to compare

    def test_leaf_values_compare(self, empty_warehouse):
        wh, st = pair(empty_warehouse,
                      "<entry><a>5</a><a>50</a></entry>")
        rows = agree(wh, st, 'FOR $e IN document("db.c")/entry '
                             'WHERE $e/a > 10 RETURN $e/a[1]')
        assert len(rows) == 1   # existential: some a exceeds 10

    def test_empty_element_never_equal_to_empty_string(self,
                                                       empty_warehouse):
        wh, st = pair(empty_warehouse, "<entry><a/></entry>")
        rows = agree(wh, st, 'FOR $e IN document("db.c")/entry '
                             'WHERE $e/a = "" RETURN $e')
        assert rows == []


class TestIdentityOfEqualSiblings:
    def test_positional_predicate_on_identical_siblings(self,
                                                        empty_warehouse):
        wh, st = pair(empty_warehouse,
                      "<entry><a>same</a><a>same</a></entry>")
        rows = agree(wh, st, 'FOR $e IN document("db.c")/entry '
                             'RETURN $e//a[1]')
        assert rows[0]["a"] == ["same"]   # exactly one, not both

    def test_remove_removes_the_given_node_only(self):
        from repro.xmlkit import Element
        parent = Element("p")
        first = parent.subelement("a", text="same")
        second = parent.subelement("a", text="same")
        parent.remove(second)
        assert parent.children == [first]
        assert first.parent is parent

    def test_sibling_index_is_identity_based(self):
        from repro.xmlkit import Element
        parent = Element("p")
        first = parent.subelement("a", text="same")
        second = parent.subelement("a", text="same")
        assert first.sibling_index() == 0
        assert second.sibling_index() == 1
