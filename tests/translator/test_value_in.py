"""ValueIn — the planner-injected IN-list semi-join fragment.

ValueIn has no surface syntax; the federation optimizer splices it into
shard subquery ASTs. These tests pin the three things the optimizer
relies on: parameterized SQL (never literal-spliced values), equality-
join-identical semantics (existential over text values), and the
empty-list edge matching nothing.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine import Warehouse
from repro.synth import build_corpus
from repro.translator.sqlgen import SqlBuilder
from repro.xquery.ast import ValueIn, VarPath
from repro.xquery.parser import parse_query

ENZYME_IDS = '''
FOR $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
RETURN $b/enzyme_id
'''


@pytest.fixture(scope="module")
def warehouse():
    instance = Warehouse(metrics=False)
    instance.load_corpus(build_corpus(
        seed=7, enzyme_count=12, embl_count=5, sprot_count=3,
        omim_count=2))
    yield instance
    instance.close()


def with_in_list(values):
    query = parse_query(ENZYME_IDS)
    atom = ValueIn(target=query.returns[0].value, values=tuple(values))
    return dataclasses.replace(query, where=atom)


class TestWhereIn:
    def test_parameterized_placeholders(self):
        builder = SqlBuilder()
        builder.add_table("t", "x")
        builder.select = ["x0.v"]
        builder.where_in("x0.v", ("a", "b", "c"))
        assert "x0.v IN (?, ?, ?)" in builder.sql()
        assert builder.params == ["a", "b", "c"]

    def test_empty_list_is_constant_false(self):
        builder = SqlBuilder()
        builder.add_table("t", "x")
        builder.select = ["x0.v"]
        builder.where_in("x0.v", ())
        assert "1 = 0" in builder.sql()
        assert builder.params == []


class TestValueInQueries:
    def test_filters_to_listed_values(self, warehouse):
        all_ids = sorted(row.first("enzyme_id") for row in
                         warehouse.xomatiq.query(ENZYME_IDS).rows)
        pick = all_ids[:3]
        query = with_in_list(pick)
        result = warehouse.xomatiq.query(str(query), ast=query)
        assert sorted(row.first("enzyme_id")
                      for row in result.rows) == pick

    def test_unmatched_values_drop_out(self, warehouse):
        query = with_in_list(("no.such.id", "also.missing"))
        result = warehouse.xomatiq.query(str(query), ast=query)
        assert result.rows == []

    def test_empty_list_matches_nothing(self, warehouse):
        query = with_in_list(())
        result = warehouse.xomatiq.query(str(query), ast=query)
        assert result.rows == []

    def test_matches_equality_join_semantics(self, warehouse):
        # IN ("v") must select exactly the rows `= "v"` selects
        all_ids = sorted(row.first("enzyme_id") for row in
                         warehouse.xomatiq.query(ENZYME_IDS).rows)
        target = all_ids[0]
        by_equality = warehouse.xomatiq.query(f'''
            FOR $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
            WHERE $b/enzyme_id = "{target}"
            RETURN $b/enzyme_id
        ''')
        query = with_in_list((target,))
        by_in = warehouse.xomatiq.query(str(query), ast=query)
        assert ([row.values for row in by_in.rows]
                == [row.values for row in by_equality.rows])

    def test_str_round_trips_through_parser_check(self, warehouse):
        # the executor keys the compiled-query cache on str(query);
        # the rendered text must at least be stable and distinct
        assert str(with_in_list(("a", "b"))) != str(with_in_list(("a",)))


def with_entry_keys(keys):
    query = parse_query(ENZYME_IDS)
    atom = ValueIn(target=VarPath(var="b"), values=tuple(keys),
                   on_entry_key=True)
    return dataclasses.replace(query, where=atom)


class TestEntryKeyValueIn:
    """``on_entry_key`` — the subscription engine's delta restriction
    (entries by durable key instead of values by text)."""

    def test_restricts_binding_to_listed_entries(self, warehouse):
        rows = warehouse.backend.execute(
            "SELECT entry_key FROM documents WHERE source = 'hlx_enzyme' "
            "ORDER BY entry_key")
        keys = [row[0] for row in rows][:2]
        query = with_entry_keys(keys)
        from repro.translator.compile import compile_query
        result = warehouse.xomatiq.execute(
            compile_query(query, sequence_tags=warehouse.sequence_tags))
        assert len(result.rows) == 2

    def test_empty_key_list_matches_nothing(self, warehouse):
        query = with_entry_keys(())
        from repro.translator.compile import compile_query
        result = warehouse.xomatiq.execute(
            compile_query(query, sequence_tags=warehouse.sequence_tags))
        assert result.rows == []

    def test_unknown_keys_match_nothing(self, warehouse):
        query = with_entry_keys(("NO/SUCH/ENTRY",))
        from repro.translator.compile import compile_query
        result = warehouse.xomatiq.execute(
            compile_query(query, sequence_tags=warehouse.sequence_tags))
        assert result.rows == []

    def test_path_target_rejected(self):
        from repro.errors import TranslationError
        from repro.translator.compile import compile_query
        query = parse_query(ENZYME_IDS)
        atom = ValueIn(target=VarPath(var="b", path="enzyme_id"),
                       values=("k",), on_entry_key=True)
        bad = dataclasses.replace(query, where=atom)
        with pytest.raises(TranslationError):
            compile_query(bad)

    def test_str_renders_entry_key_form(self):
        atom = ValueIn(target=VarPath(var="b"), values=("k1", "k2"),
                       on_entry_key=True)
        assert "entry-key($b)" in str(atom)
