"""Unit tests for the SQL generation helpers (ChainBuilder)."""

import pytest

from repro.errors import TranslationError
from repro.translator.sqlgen import ChainBuilder, SqlBuilder
from repro.xmlkit import parse_path


def build():
    builder = SqlBuilder()
    return builder, ChainBuilder(builder)


class TestSqlBuilder:
    def test_alias_counters_per_prefix(self):
        builder = SqlBuilder()
        assert builder.add_table("elements", "e") == "e0"
        assert builder.add_table("elements", "e") == "e1"
        assert builder.add_table("keywords", "k") == "k0"

    def test_where_accumulates_params_in_order(self):
        builder = SqlBuilder()
        builder.add_table("t", "x")
        builder.select = ["x0.a"]
        builder.where("x0.a = ?", 1)
        builder.where("x0.b = ?", "two")
        assert builder.params == [1, "two"]
        assert "WHERE x0.a = ?\n  AND x0.b = ?" in builder.sql()

    def test_no_tables_rejected(self):
        with pytest.raises(TranslationError):
            SqlBuilder().sql()

    def test_distinct_header(self):
        builder = SqlBuilder(distinct=True)
        builder.add_table("t", "x")
        builder.select = ["x0.a"]
        assert builder.sql().startswith("SELECT DISTINCT")


class TestDocumentPath:
    def test_leading_child_step_constrains_root_tag(self):
        builder, chains = build()
        ref = chains.document_path("src", "col", parse_path("/root_tag"))
        builder.select = [ref.doc_id]
        sql = builder.sql()
        assert "parent_id IS NULL" in sql
        assert "src" in builder.params and "root_tag" in builder.params

    def test_leading_descendant_step_skips_root_constraint(self):
        builder, chains = build()
        chains.document_path("src", None, parse_path("//anywhere"))
        sql_conjuncts = " ".join(builder.conjuncts)
        assert "parent_id IS NULL" not in sql_conjuncts
        assert "collection" not in sql_conjuncts

    def test_attribute_binding_path_rejected(self):
        __, chains = build()
        with pytest.raises(TranslationError):
            chains.document_path("src", None, parse_path("//x/@attr"))


class TestSteps:
    def test_child_step_joins_parent_id(self):
        builder, chains = build()
        root = chains.document_root("s", None)
        chains.element_step(root, parse_path("/child").steps[0])
        assert any("parent_id = e0.node_id" in c for c in builder.conjuncts)

    def test_descendant_step_uses_interval(self):
        builder, chains = build()
        root = chains.document_root("s", None)
        chains.element_step(root, parse_path("//deep").steps[0])
        joined = " ".join(builder.conjuncts)
        assert "doc_order >= e0.doc_order" in joined
        assert "doc_order <= e0.subtree_end" in joined

    def test_wildcard_step_has_no_tag_constraint(self):
        builder, chains = build()
        root = chains.document_root("s", None)
        before = list(builder.params)
        chains.element_step(root, parse_path("/*").steps[0])
        assert builder.params == before   # no tag parameter added

    def test_attribute_value_ref(self):
        builder, chains = build()
        root = chains.document_root("s", None)
        value = chains.value_of(root, parse_path("/x/@id"))
        assert value.text.endswith(".value")
        assert value.numeric.endswith(".num_value")
        assert "id" in builder.params

    def test_descendant_attribute_spans_subtree(self):
        builder, chains = build()
        root = chains.document_root("s", None)
        chains.value_of(root, parse_path("//@mim_id"))
        joined = " ".join(builder.conjuncts)
        assert "doc_order >=" in joined   # any-element holder

    def test_keyword_probe_with_interval(self):
        builder, chains = build()
        root = chains.document_root("s", None)
        chains.keyword(root.doc_id, "cdc6", interval=root)
        joined = " ".join(builder.conjuncts)
        assert "token = ?" in joined
        assert "node_id >= e0.doc_order" in joined

    def test_keyword_probe_document_scope(self):
        builder, chains = build()
        root = chains.document_root("s", None)
        chains.keyword(root.doc_id, "cdc6", interval=None)
        joined = " ".join(builder.conjuncts)
        assert "node_id >=" not in joined
