"""Thread-safety regression tests for :class:`CompiledQueryCache`.

Before the cache took a lock, concurrent ``get``/``put`` mutated the
``OrderedDict`` mid-operation — ``move_to_end`` racing an eviction
``popitem`` corrupts the LRU links, two stale-entry deletions race
into ``KeyError``, and iteration during mutation raises
``RuntimeError: OrderedDict mutated during iteration``. These tests
hammer those interleavings from many threads; on the unlocked code
they blow up (on a good day) or silently corrupt the LRU (on a bad
one), with the invariant checks catching the latter.
"""

import threading

import pytest

from repro.engine import Warehouse
from repro.obs import MetricsRegistry
from repro.synth import build_corpus
from repro.translator.cache import CompiledQueryCache

THREADS = 8
OPS_PER_THREAD = 2_000


class TestCacheUnderThreads:
    def test_hammer_get_put_evictions(self):
        """Overlapping keys + a tiny LRU: every op contends on the
        same OrderedDict and evictions run constantly."""
        cache = CompiledQueryCache(maxsize=4)
        tags = frozenset({"sequence"})
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(seed: int):
            try:
                barrier.wait()
                for index in range(OPS_PER_THREAD):
                    key = f"q{(seed + index) % 12}"
                    if cache.get(key, "sqlite", tags, 0) is None:
                        cache.put(key, "sqlite", tags, 0, object())
            except Exception as exc:   # noqa: BLE001 - the regression
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats()
        assert stats["size"] <= 4
        assert stats["hits"] + stats["misses"] \
            == THREADS * OPS_PER_THREAD

    def test_hammer_stale_invalidation(self):
        """Generation bumps force the stale-entry ``del`` path, the
        one where two racing readers double-delete."""
        cache = CompiledQueryCache(maxsize=8)
        tags = frozenset()
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(seed: int):
            try:
                barrier.wait()
                for index in range(OPS_PER_THREAD):
                    generation = (seed + index) % 3
                    key = f"q{index % 4}"
                    if cache.get(key, "sqlite", tags,
                                 generation) is None:
                        cache.put(key, "sqlite", tags, generation,
                                  object())
            except Exception as exc:   # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.stats()["size"] <= 8


class TestWarehouseCacheUnderThreads:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(seed=7, enzyme_count=10, embl_count=10,
                            sprot_count=10)

    def test_queries_race_generation_bumps(self, corpus):
        """One shared warehouse: reader threads serve cache hits while
        a writer keeps bumping the catalog generation (what a harvest
        does mid-traffic) — every read must stay correct and no
        OrderedDict corruption may surface."""
        warehouse = Warehouse(metrics=MetricsRegistry(),
                              query_cache=4)
        warehouse.load_corpus(corpus)
        queries = [
            'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
            'WHERE contains($a//catalytic_activity, "ketone") '
            'RETURN $a//enzyme_id',
            'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
            'RETURN $a//enzyme_id',
            'FOR $a IN document("hlx_sprot.all")/hlx_n_sequence '
            'RETURN $a//sprot_accession_number',
            'FOR $a IN document("hlx_embl.inv")/hlx_n_sequence '
            'RETURN $a//embl_accession_number',
            'FOR $a IN document("hlx_embl.inv")/hlx_n_sequence '
            'RETURN $a//description',
        ]
        expected = [warehouse.query(text).to_xml() for text in queries]
        errors = []
        stop = threading.Event()

        def reader(offset: int):
            try:
                for index in range(120):
                    pick = (offset + index) % len(queries)
                    xml = warehouse.query(queries[pick]).to_xml()
                    assert xml == expected[pick]
            except Exception as exc:   # noqa: BLE001
                errors.append(exc)

        def bumper():
            try:
                while not stop.is_set():
                    warehouse.loader.bump_generation()
            except Exception as exc:   # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(offset,))
                   for offset in range(6)]
        bump_thread = threading.Thread(target=bumper)
        bump_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        bump_thread.join()
        assert errors == []
        stats = warehouse.xomatiq.cache.stats()
        assert stats["size"] <= 4
