"""Unit tests for condition normalization (DNF with signed atoms)."""

import pytest

from repro.errors import TranslationError
from repro.translator import to_dnf
from repro.xquery import parse_query


def dnf_of(where: str):
    query = parse_query(
        f'FOR $a IN document("d")/r WHERE {where} RETURN $a//x')
    return to_dnf(query.where)


def shape(disjuncts):
    """[(n_positive, n_negative), ...] per disjunct."""
    return sorted(
        (sum(1 for __, neg in d if not neg), sum(1 for __, neg in d if neg))
        for d in disjuncts)


class TestNormalization:
    def test_single_atom(self):
        assert shape(dnf_of('contains($a, "k")')) == [(1, 0)]

    def test_conjunction_stays_one_disjunct(self):
        assert shape(dnf_of('contains($a, "k1") AND contains($a, "k2")')) \
            == [(2, 0)]

    def test_disjunction_splits(self):
        assert shape(dnf_of('contains($a, "k1") OR contains($a, "k2")')) \
            == [(1, 0), (1, 0)]

    def test_and_distributes_over_or(self):
        disjuncts = dnf_of('contains($a, "k1") AND '
                           '(contains($a, "k2") OR contains($a, "k3"))')
        assert shape(disjuncts) == [(2, 0), (2, 0)]

    def test_not_atom_marks_negative(self):
        assert shape(dnf_of('NOT contains($a, "k")')) == [(0, 1)]

    def test_de_morgan_not_and(self):
        # NOT (p AND q) == NOT p OR NOT q
        assert shape(dnf_of('NOT (contains($a, "k1") AND '
                            'contains($a, "k2"))')) == [(0, 1), (0, 1)]

    def test_de_morgan_not_or(self):
        # NOT (p OR q) == NOT p AND NOT q
        assert shape(dnf_of('NOT (contains($a, "k1") OR '
                            'contains($a, "k2"))')) == [(0, 2)]

    def test_double_negation_cancels(self):
        assert shape(dnf_of('NOT NOT contains($a, "k")')) == [(1, 0)]

    def test_mixed_polarity_disjunct(self):
        assert shape(dnf_of('contains($a, "k1") AND '
                            'NOT contains($a, "k2")')) == [(1, 1)]

    def test_explosion_guard(self):
        # (a1 OR b1) AND (a2 OR b2) AND ... 7 times = 128 disjuncts > 64
        clause = " AND ".join(
            f'(contains($a, "x{i}") OR contains($a, "y{i}"))'
            for i in range(7))
        with pytest.raises(TranslationError):
            dnf_of(clause)
