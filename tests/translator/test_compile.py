"""Unit tests for the XQ2SQL compiler (SQL shape, not execution)."""

from repro.translator import compile_query
from repro.xquery import parse_query

FIG9 = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description'''

FIG11 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number'''


def compiled(text):
    return compile_query(parse_query(text))


class TestBindingSql:
    def test_one_disjunct_for_conjunctive_query(self):
        assert len(compiled(FIG9).disjuncts) == 1
        assert compiled(FIG9).disjuncts[0].negations == []

    def test_binding_sql_selects_four_columns_per_var(self):
        sql = compiled(FIG11).disjuncts[0].positive.sql
        select_line = sql.splitlines()[0]
        # two variables -> 8 selected columns
        assert select_line.count(",") == 7

    def test_binding_sql_is_distinct(self):
        assert compiled(FIG9).disjuncts[0].positive.sql.startswith(
            "SELECT DISTINCT")

    def test_keyword_condition_probes_keyword_table(self):
        sql = compiled(FIG9).disjuncts[0].positive.sql
        assert "keywords" in sql
        assert "token = ?" in sql
        assert "ketone" in compiled(FIG9).disjuncts[0].positive.params

    def test_descendant_step_uses_interval_encoding(self):
        sql = compiled(FIG9).disjuncts[0].positive.sql
        assert "subtree_end" in sql

    def test_join_query_compares_text_values(self):
        sql = compiled(FIG11).disjuncts[0].positive.sql
        assert sql.count("text_values") >= 2
        assert "qualifier_type" in str(
            compiled(FIG11).disjuncts[0].positive.params)

    def test_collection_constraint_present(self):
        params = compiled(FIG11).disjuncts[0].positive.params
        assert "inv" in params and "DEFAULT" in params

    def test_or_query_yields_two_disjuncts(self):
        text = FIG9.replace(
            'contains($a//catalytic_activity, "ketone")',
            'contains($a//catalytic_activity, "ketone") OR '
            'contains($a//comment, "copper")')
        assert len(compiled(text).disjuncts) == 2

    def test_not_query_yields_negation_sql(self):
        text = FIG9.replace(
            'contains($a//catalytic_activity, "ketone")',
            'contains($a//enzyme_description, "synthase") AND '
            'NOT contains($a//catalytic_activity, "ketone")')
        disjunct = compiled(text).disjuncts[0]
        assert len(disjunct.negations) == 1
        # the negation SQL contains both the positive atoms and the
        # negated atom
        assert disjunct.negations[0].sql.count("keywords") == 2

    def test_proximity_adds_position_window(self):
        text = ('FOR $a IN document("d.c")/r '
                'WHERE contains($a, "alpha beta", 10) RETURN $a//x')
        sql = compiled(text).disjuncts[0].positive.sql
        assert "abs(" in sql
        assert ".position" in sql

    def test_numeric_literal_uses_num_value(self):
        text = ('FOR $a IN document("d.c")/r '
                'WHERE $a//score > 100 RETURN $a//x')
        sql = compiled(text).disjuncts[0].positive.sql
        assert "num_value > ?" in sql

    def test_string_literal_uses_text_value(self):
        text = ('FOR $a IN document("d.c")/r '
                'WHERE $a//name = "abc" RETURN $a//x')
        sql = compiled(text).disjuncts[0].positive.sql
        assert ".value = ?" in sql


class TestItemSql:
    def test_one_item_query_per_return_item(self):
        assert len(compiled(FIG9).items) == 2

    def test_item_sql_selects_piece_columns(self):
        sql = compiled(FIG9).items[0].sql
        head = sql.splitlines()[0]
        # doc, node, holder order, piece node, piece value
        assert head.count(",") == 4

    def test_item_holders_sql_is_distinct(self):
        value = compiled(FIG9).items[0].values[0]
        assert value.holders_sql.startswith("SELECT DISTINCT")

    def test_attribute_item_reads_attributes_table(self):
        text = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'RETURN $a//reference/@swissprot_accession_number')
        item = compiled(text).items[0]
        assert "attributes" in item.sql
        assert item.values[0].holders_sql is None

    def test_element_item_gets_sequences_twin(self):
        text = ('FOR $a IN document("hlx_embl.inv")/hlx_n_sequence '
                'RETURN $a//sequence')
        item = compiled(text).items[0]
        assert item.sequence_sql is not None
        assert "sequences" in item.sequence_sql

    def test_statements_listing(self):
        statements = compiled(FIG11).statements()
        # one binding query + per item: holders? no — statements() lists
        # value sql + sequence twin; holders are internal
        assert all(s.lstrip().startswith("SELECT") for s in statements)
        assert len(statements) >= 2
