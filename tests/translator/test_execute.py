"""Execution-level tests of the translator (against loaded warehouses;
runs on both backends via the fixture)."""

from repro.xmlkit import parse_document


def load(warehouse_loader, source, collection, docs):
    for key, text in docs:
        warehouse_loader.store_document(source, collection, key,
                                        parse_document(text))


class TestBindingsAndValues:
    def make(self, empty_warehouse):
        load(empty_warehouse.loader, "db", "c", [
            ("k1", "<r><item><name>alpha</name><score>10</score></item>"
                   "<item><name>beta</name><score>20</score></item></r>"),
            ("k2", "<r><item><name>gamma ray</name><score>30</score>"
                   "</item></r>"),
        ])
        return empty_warehouse

    def test_multiple_bindings_per_document(self, empty_warehouse):
        wh = self.make(empty_warehouse)
        result = wh.query('FOR $a IN document("db.c")/r/item '
                          'RETURN $a//name')
        assert len(result) == 3
        assert sorted(result.scalars("name")) == [
            "alpha", "beta", "gamma ray"]

    def test_condition_filters_bindings(self, empty_warehouse):
        wh = self.make(empty_warehouse)
        result = wh.query('FOR $a IN document("db.c")/r/item '
                          'WHERE $a/score > 15 RETURN $a//name')
        assert sorted(result.scalars("name")) == ["beta", "gamma ray"]

    def test_multi_valued_item_collected_in_one_row(self, empty_warehouse):
        wh = self.make(empty_warehouse)
        result = wh.query('FOR $a IN document("db.c")/r '
                          'RETURN $a//name')
        names = result.column("name")
        assert sorted(len(v) for v in names) == [1, 2]

    def test_missing_item_yields_empty_list(self, empty_warehouse):
        load(empty_warehouse.loader, "db", "c", [
            ("k1", "<r><a>x</a></r>"), ("k2", "<r><b>y</b></r>")])
        result = empty_warehouse.query(
            'FOR $r IN document("db.c")/r RETURN $r//a')
        values = sorted(tuple(v) for v in result.column("a"))
        assert values == [(), ("x",)]

    def test_values_in_document_order(self, empty_warehouse):
        load(empty_warehouse.loader, "db", "c", [
            ("k1", "<r><n>3</n><n>1</n><n>2</n></r>")])
        result = empty_warehouse.query(
            'FOR $r IN document("db.c")/r RETURN $r//n')
        assert result.rows[0].values["n"] == ["3", "1", "2"]

    def test_or_unions_bindings(self, empty_warehouse):
        wh = self.make(empty_warehouse)
        result = wh.query(
            'FOR $a IN document("db.c")/r/item '
            'WHERE contains($a//name, "alpha") OR contains($a//name, "beta") '
            'RETURN $a//name')
        assert sorted(result.scalars("name")) == ["alpha", "beta"]

    def test_or_does_not_duplicate_overlapping_bindings(self,
                                                        empty_warehouse):
        wh = self.make(empty_warehouse)
        result = wh.query(
            'FOR $a IN document("db.c")/r/item '
            'WHERE $a/score > 5 OR contains($a//name, "beta") '
            'RETURN $a//name')
        assert len(result) == 3

    def test_not_subtracts_bindings(self, empty_warehouse):
        wh = self.make(empty_warehouse)
        result = wh.query(
            'FOR $a IN document("db.c")/r/item '
            'WHERE $a/score > 5 AND NOT contains($a//name, "beta") '
            'RETURN $a//name')
        assert sorted(result.scalars("name")) == ["alpha", "gamma ray"]

    def test_bindings_carry_doc_and_node_ids(self, empty_warehouse):
        wh = self.make(empty_warehouse)
        result = wh.query('FOR $a IN document("db.c")/r/item '
                          'RETURN $a//name')
        node = result.rows[0].bindings["a"]
        rebuilt = wh.fetch_document(node)
        assert rebuilt.root.tag == "r"


class TestCrossDocumentJoin:
    def test_join_matches_across_sources(self, empty_warehouse):
        load(empty_warehouse.loader, "left", "c", [
            ("l1", "<r><ref>A</ref><tag>one</tag></r>"),
            ("l2", "<r><ref>B</ref><tag>two</tag></r>")])
        load(empty_warehouse.loader, "right", "c", [
            ("r1", "<r><id>A</id><val>match-a</val></r>"),
            ("r2", "<r><id>C</id><val>no-match</val></r>")])
        result = empty_warehouse.query(
            'FOR $l IN document("left.c")/r, $r IN document("right.c")/r '
            'WHERE $l/ref = $r/id '
            'RETURN $l//tag, $r//val')
        assert len(result) == 1
        assert result.rows[0].values["tag"] == ["one"]
        assert result.rows[0].values["val"] == ["match-a"]

    def test_unconstrained_vars_cross_product(self, empty_warehouse):
        load(empty_warehouse.loader, "left", "c",
             [("l1", "<r><x>1</x></r>"), ("l2", "<r><x>2</x></r>")])
        load(empty_warehouse.loader, "right", "c",
             [("r1", "<r><y>9</y></r>")])
        result = empty_warehouse.query(
            'FOR $l IN document("left.c")/r, $r IN document("right.c")/r '
            'RETURN $l//x, $r//y')
        assert len(result) == 2


class TestContextVariables:
    def test_nested_binding(self, empty_warehouse):
        load(empty_warehouse.loader, "db", "c", [
            ("k1", "<r><grp><m>a</m><m>b</m></grp><grp><m>c</m></grp></r>")])
        result = empty_warehouse.query(
            'FOR $r IN document("db.c")/r, $g IN $r//grp, $m IN $g/m '
            'RETURN $m')
        assert len(result) == 3
        assert sorted(result.scalars("m")) == ["a", "b", "c"]


class TestNumericSemantics:
    def test_numeric_comparison_not_lexicographic(self, empty_warehouse):
        load(empty_warehouse.loader, "db", "c", [
            ("k1", "<r><score>9</score></r>"),
            ("k2", "<r><score>100</score></r>")])
        result = empty_warehouse.query(
            'FOR $a IN document("db.c")/r WHERE $a/score > 50 '
            'RETURN $a//score')
        # lexicographically "9" > "50" would also match; numerically only 100
        assert result.scalars("score") == ["100"]

    def test_string_comparison_on_string_literal(self, empty_warehouse):
        load(empty_warehouse.loader, "db", "c", [
            ("k1", "<r><name>beta</name></r>"),
            ("k2", "<r><name>alpha</name></r>")])
        result = empty_warehouse.query(
            'FOR $a IN document("db.c")/r WHERE $a/name = "alpha" '
            'RETURN $a//name')
        assert result.scalars("name") == ["alpha"]


class TestOutputColumnUniqueness:
    """Duplicate output names must never collide after renaming (items
    named ``a``, ``a_2``, ``a`` once produced ``a_2`` twice)."""

    def test_alias_collides_with_positional_suffix(self, empty_warehouse):
        load(empty_warehouse.loader, "db", "c", [
            ("k1", "<r><v>x</v></r>")])
        result = empty_warehouse.query(
            'FOR $r IN document("db.c")/r '
            'RETURN $a = $r/v, $a_2 = $r/v, $a = $r/v')
        assert result.columns == ["a", "a_2", "a_3"]
        assert len(set(result.columns)) == 3
        for column in result.columns:
            assert result.scalars(column) == ["x"]

    def test_triple_duplicate_names(self, empty_warehouse):
        load(empty_warehouse.loader, "db", "c", [
            ("k1", "<r><v>x</v></r>")])
        result = empty_warehouse.query(
            'FOR $r IN document("db.c")/r '
            'RETURN $a = $r/v, $a = $r/v, $a = $r/v')
        assert result.columns == ["a", "a_2", "a_3"]
