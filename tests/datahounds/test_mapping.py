"""Unit tests for the mapping helper combinators."""

import pytest

from repro.datahounds.mapping import (
    add_list,
    add_scalar,
    collect_sequence,
    merge_comment_lines,
    parse_disease,
    parse_prosite,
    split_semicolon_pairs,
    strip_trailing_period,
)
from repro.errors import TransformError
from repro.flatfile import entry_from_pairs
from repro.xmlkit import Element


class TestScalarHelpers:
    def test_strip_trailing_period(self):
        assert strip_trailing_period("Copper.") == "Copper"
        assert strip_trailing_period("Copper") == "Copper"
        assert strip_trailing_period("1.14.17.3.") == "1.14.17.3"

    def test_add_scalar_skips_empty(self):
        parent = Element("p")
        assert add_scalar(parent, "x", "") is None
        assert add_scalar(parent, "x", None) is None
        assert parent.children == []

    def test_add_scalar_appends(self):
        parent = Element("p")
        child = add_scalar(parent, "x", "v")
        assert child.text() == "v"

    def test_add_list_always_emits_container(self):
        parent = Element("p")
        container = add_list(parent, "items", "item", [])
        assert container.tag == "items"
        assert container.children == []

    def test_add_list_with_values(self):
        parent = Element("p")
        add_list(parent, "items", "item", ["a", "b"])
        items = parent.first("items").child_elements("item")
        assert [i.text() for i in items] == ["a", "b"]


class TestLineParsers:
    def test_split_semicolon_pairs(self):
        pairs = split_semicolon_pairs(
            "P10731, AMD_BOVIN ; P19021, AMD_HUMAN ;", "e", "DR")
        assert pairs == [("P10731", "AMD_BOVIN"), ("P19021", "AMD_HUMAN")]

    def test_split_semicolon_pairs_bad_chunk(self):
        with pytest.raises(TransformError):
            split_semicolon_pairs("NOCOMMA ;", "e", "DR")

    def test_merge_comment_lines(self):
        comments = merge_comment_lines([
            "-!- First comment starts here",
            "    and continues here.",
            "-!- Second comment."])
        assert comments == [
            "First comment starts here and continues here.",
            "Second comment."]

    def test_merge_comment_lines_orphan_continuation(self):
        with pytest.raises(TransformError):
            merge_comment_lines(["    dangling continuation"])

    def test_parse_disease(self):
        assert parse_disease("Phenylketonuria; MIM:261600.", "e") == (
            "Phenylketonuria", "261600")

    def test_parse_disease_without_trailing_period(self):
        assert parse_disease("Gaucher disease; MIM: 230800", "e")[1] == \
            "230800"

    def test_parse_disease_malformed(self):
        with pytest.raises(TransformError):
            parse_disease("no mim here", "e")

    def test_parse_prosite(self):
        assert parse_prosite("PROSITE; PDOC00080;", "e") == "PDOC00080"

    def test_parse_prosite_malformed(self):
        with pytest.raises(TransformError):
            parse_prosite("PFAM; PF00001;", "e")


class TestCollectSequence:
    def test_strips_position_counters_and_spaces(self):
        entry = entry_from_pairs([
            ("ID", "X"),
            ("  ", "aacgtt ggcatt 60"),
            ("  ", "ttgcaa 120"),
        ])
        assert collect_sequence(entry) == "aacgttggcattttgcaa"

    def test_empty_when_no_sequence_lines(self):
        entry = entry_from_pairs([("ID", "X")])
        assert collect_sequence(entry) == ""
