"""Unit tests for release diffing (incremental updates)."""

from repro.datahounds import ReleaseSnapshot, diff_releases, entry_fingerprint
from repro.flatfile import entry_from_pairs


def snapshot(release, **entries):
    keyed = [(key, entry_from_pairs([("ID", key), ("DE", body)]))
             for key, body in entries.items()]
    return ReleaseSnapshot.build(release, keyed)


class TestFingerprints:
    def test_identical_entries_same_fingerprint(self):
        a = entry_from_pairs([("ID", "x"), ("DE", "d")])
        b = entry_from_pairs([("ID", "x"), ("DE", "d")])
        assert entry_fingerprint(a) == entry_fingerprint(b)

    def test_content_change_changes_fingerprint(self):
        a = entry_from_pairs([("ID", "x"), ("DE", "d")])
        b = entry_from_pairs([("ID", "x"), ("DE", "different")])
        assert entry_fingerprint(a) != entry_fingerprint(b)

    def test_line_order_matters(self):
        a = entry_from_pairs([("AN", "1"), ("AN", "2")])
        b = entry_from_pairs([("AN", "2"), ("AN", "1")])
        assert entry_fingerprint(a) != entry_fingerprint(b)


class TestDiff:
    def test_initial_load_is_all_added(self):
        plan = diff_releases(None, snapshot("r1", a="x", b="y"))
        assert plan.added == ("a", "b")
        assert plan.is_noop is False

    def test_identical_releases_are_noop(self):
        old = snapshot("r1", a="x", b="y")
        new = snapshot("r2", a="x", b="y")
        plan = diff_releases(old, new)
        assert plan.is_noop
        assert plan.unchanged == ("a", "b")

    def test_update_detected(self):
        plan = diff_releases(snapshot("r1", a="x"), snapshot("r2", a="x2"))
        assert plan.updated == ("a",)
        assert plan.added == ()

    def test_removal_detected(self):
        plan = diff_releases(snapshot("r1", a="x", b="y"),
                             snapshot("r2", a="x"))
        assert plan.removed == ("b",)

    def test_mixed_changes(self):
        plan = diff_releases(snapshot("r1", a="1", b="2", c="3"),
                             snapshot("r2", a="1", b="changed", d="new"))
        assert plan.unchanged == ("a",)
        assert plan.updated == ("b",)
        assert plan.removed == ("c",)
        assert plan.added == ("d",)
        assert plan.touched == ("d", "b")

    def test_nothing_added_twice(self):
        # the same key in both releases is never in `added`
        plan = diff_releases(snapshot("r1", a="1"), snapshot("r2", a="2"))
        assert "a" not in plan.added


class TestFingerprintResolution:
    """The fingerprint is the full SHA-256 digest; a truncated prefix
    colliding between an entry's old and new content would silently
    drop the change from the update plan."""

    def test_fingerprint_is_full_sha256(self):
        entry = entry_from_pairs([("ID", "x"), ("DE", "d")])
        digest = entry_fingerprint(entry)
        assert len(digest) == 64
        assert all(c in "0123456789abcdef" for c in digest)

    def test_changed_entry_classified_even_when_prefixes_collide(self):
        # two fingerprints sharing a 16-hex-char prefix but differing
        # beyond it: with the old truncation these compared equal and
        # the changed entry vanished from the plan
        prefix = "deadbeefcafef00d"
        old = ReleaseSnapshot("r1", {"a": prefix + "0" * 48})
        new = ReleaseSnapshot("r2", {"a": prefix + "f" * 48})
        plan = diff_releases(old, new)
        assert plan.updated == ("a",)
        assert plan.unchanged == ()
        assert not plan.is_noop
