"""Unit tests for the OMIM-style disease transformer."""

import pytest

from repro.datahounds.sources.omim import (
    OMIM_DTD_TEXT,
    OmimTransformer,
    SAMPLE_ENTRY,
)
from repro.errors import TransformError
from repro.flatfile import parse_entries
from repro.xmlkit import evaluate_strings, parse_dtd, parse_path


@pytest.fixture(scope="module")
def sample():
    return OmimTransformer().transform_text(SAMPLE_ENTRY)[0]


class TestSampleEntry:
    def test_root_tag(self, sample):
        assert sample.root.tag == "hlx_disease"

    def test_mim_id(self, sample):
        assert evaluate_strings(parse_path("//mim_id"),
                                sample.root) == ["261600"]

    def test_title(self, sample):
        assert evaluate_strings(parse_path("//title"),
                                sample.root) == ["Phenylketonuria"]

    def test_synonyms(self, sample):
        assert evaluate_strings(parse_path("//synonym"), sample.root) == [
            "PKU", "Folling disease"]

    def test_description_joined(self, sample):
        description = evaluate_strings(parse_path("//description"),
                                       sample.root)[0]
        assert description.startswith("An inborn error")
        assert description.endswith("phenylalanine hydroxylase.")

    def test_gene_symbols(self, sample):
        assert evaluate_strings(parse_path("//gene_symbol"),
                                sample.root) == ["PAH"]

    def test_inheritance(self, sample):
        assert evaluate_strings(parse_path("//inheritance"),
                                sample.root) == ["Autosomal recessive"]

    def test_validates_against_dtd(self, sample):
        parse_dtd(OMIM_DTD_TEXT).validate(sample)


class TestErrorsAndIdentity:
    def test_non_numeric_mim_rejected(self):
        with pytest.raises(TransformError):
            OmimTransformer().transform_text(
                "ID   NOTANUMBER\nTI   x\n//\n")

    def test_entry_key_is_mim_number(self):
        entry = parse_entries(SAMPLE_ENTRY)[0]
        assert OmimTransformer().entry_key(entry) == "261600"

    def test_registered_as_builtin(self):
        from repro.datahounds.registry import SourceRegistry
        assert "hlx_omim" in SourceRegistry()


class TestDiseaseJoin:
    """The join the source exists for: ENZYME DI → OMIM."""

    QUERY = '''FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
        $d IN document("hlx_omim.DEFAULT")/hlx_disease/db_entry
    WHERE $e//disease/@mim_id = $d/mim_id
    RETURN $e//enzyme_id, $d//title'''

    @pytest.fixture
    def loaded(self, empty_warehouse):
        from repro.synth import build_corpus
        corpus = build_corpus(seed=11, enzyme_count=60, embl_count=5,
                              sprot_count=5, omim_count=25)
        empty_warehouse.load_corpus(corpus)
        return empty_warehouse, corpus

    def test_join_returns_matches(self, loaded):
        warehouse, corpus = loaded
        result = warehouse.query(self.QUERY)
        assert len(result) > 0
        mim_pool = set(corpus.mim_ids)
        for row in result:
            doc = warehouse.fetch_document(row.bindings["e"])
            mims = {e.get("mim_id") for e in doc.root.iter("disease")}
            assert mims & mim_pool

    def test_join_agrees_with_native(self, loaded):
        warehouse, corpus = loaded
        from repro.baselines import NativeXmlStore
        store = NativeXmlStore()
        store.load_corpus(corpus)
        relational = sorted(warehouse.query(self.QUERY).scalars("title"))
        native = sorted(store.query(self.QUERY).scalars("title"))
        assert relational == native
