"""Unit tests for the SourceTransformer base class contract."""

import pytest

from repro.datahounds.transformer import SourceTransformer
from repro.errors import TransformError
from repro.flatfile import Entry, LineSpec, entry_from_pairs
from repro.xmlkit import Document, Element, parse_dtd


class GoodTransformer(SourceTransformer):
    name = "hlx_test"
    dtd = parse_dtd("<!ELEMENT r (v)><!ELEMENT v (#PCDATA)>")
    line_specs = [LineSpec("ID", "id", min_count=1, max_count=1),
                  LineSpec("VA", "value", min_count=1, max_count=1)]

    def entry_to_document(self, entry: Entry) -> Document:
        root = Element("r")
        root.subelement("v", text=entry.value("VA"))
        return Document(root)


class BadOutputTransformer(GoodTransformer):
    def entry_to_document(self, entry: Entry) -> Document:
        return Document(Element("wrong_root"))


class TestContract:
    def test_transform_entry_happy_path(self):
        doc = GoodTransformer().transform_entry(
            entry_from_pairs([("ID", "k1"), ("VA", "hello")]))
        assert doc.name == "hlx_test"
        assert doc.root.first("v").text() == "hello"

    def test_nameless_transformer_rejected(self):
        class Nameless(GoodTransformer):
            name = ""
        with pytest.raises(TransformError):
            Nameless()

    def test_invalid_output_caught_by_dtd(self):
        with pytest.raises(TransformError):
            BadOutputTransformer().transform_entry(
                entry_from_pairs([("ID", "k1"), ("VA", "x")]))

    def test_validation_disabled_lets_bad_output_through(self):
        doc = BadOutputTransformer(validate=False).transform_entry(
            entry_from_pairs([("ID", "k1"), ("VA", "x")]))
        assert doc.root.tag == "wrong_root"

    def test_cardinality_enforced_before_mapping(self):
        from repro.errors import FlatFileError
        with pytest.raises(FlatFileError):
            GoodTransformer().transform_entry(
                entry_from_pairs([("ID", "k1")]))   # missing VA

    def test_default_entry_key_is_first_id_token(self):
        entry = entry_from_pairs([("ID", "k1 extra tokens"), ("VA", "x")])
        assert GoodTransformer().entry_key(entry) == "k1"

    def test_entry_key_without_id_rejected(self):
        with pytest.raises(TransformError):
            GoodTransformer().entry_key(entry_from_pairs([("VA", "x")]))

    def test_default_collection(self):
        transformer = GoodTransformer()
        entry = entry_from_pairs([("ID", "k1"), ("VA", "x")])
        assert transformer.collection_of(entry) == "DEFAULT"
        assert transformer.document_name() == "hlx_test.DEFAULT"
        assert transformer.document_name("other") == "hlx_test.other"

    def test_transform_streams_lazily(self):
        lines = iter("ID   a\nVA   1\n//\nID   b\nVA   2\n//\n".splitlines())
        docs = GoodTransformer().transform(lines)
        first = next(docs)
        assert first.root.first("v").text() == "1"
        assert next(docs).root.first("v").text() == "2"

    def test_dtd_tree_exposed(self):
        tree = GoodTransformer().dtd_tree()
        assert tree.tag == "r"
        assert tree.children[0].tag == "v"
