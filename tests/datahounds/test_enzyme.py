"""The ENZYME transformer against the paper's Figures 2-6.

The golden test: transforming the verbatim Figure 2 entry must produce
exactly the Figure 6 document under the Figure 5 DTD.
"""

import pytest

from repro.datahounds.sources.enzyme import (
    ENZYME_DTD_TEXT,
    EnzymeTransformer,
    LINE_SPECS,
    SAMPLE_ENTRY,
)
from repro.errors import FlatFileError, TransformError
from repro.flatfile import parse_entries
from repro.xmlkit import evaluate_strings, parse_dtd, parse_path


@pytest.fixture(scope="module")
def figure6():
    """The transformed Figure 2 sample entry."""
    return EnzymeTransformer().transform_text(SAMPLE_ENTRY)[0]


class TestFigure6Golden:
    def test_root_and_entry_shape(self, figure6):
        assert figure6.root.tag == "hlx_enzyme"
        assert [c.tag for c in figure6.root.children] == ["db_entry"]

    def test_enzyme_id(self, figure6):
        assert evaluate_strings(parse_path("//enzyme_id"),
                                figure6.root) == ["1.14.17.3"]

    def test_description_keeps_trailing_period(self, figure6):
        assert evaluate_strings(parse_path("//enzyme_description"),
                                figure6.root) == [
            "Peptidylglycine monooxygenase."]

    def test_alternate_names_drop_trailing_period(self, figure6):
        assert evaluate_strings(parse_path("//alternate_name"),
                                figure6.root) == [
            "Peptidyl alpha-amidating enzyme",
            "Peptidylglycine 2-hydroxylase"]

    def test_one_catalytic_activity_per_ca_line(self, figure6):
        values = evaluate_strings(parse_path("//catalytic_activity"),
                                  figure6.root)
        assert len(values) == 2
        assert values[0].startswith("Peptidylglycine + ascorbate")
        assert values[1] == "dehydroascorbate + H(2)O"

    def test_cofactor(self, figure6):
        assert evaluate_strings(parse_path("//cofactor"),
                                figure6.root) == ["Copper"]

    def test_comments_merged_at_markers(self, figure6):
        comments = evaluate_strings(parse_path("//comment"), figure6.root)
        assert len(comments) == 2
        assert comments[0].startswith("Peptidylglycines with a neutral")
        assert comments[0].endswith("best substrates for the enzyme.")

    def test_prosite_reference_attribute(self, figure6):
        values = evaluate_strings(
            parse_path("//prosite_reference/@prosite_accession_number"),
            figure6.root)
        assert values == ["PDOC00080"]

    def test_swissprot_references(self, figure6):
        accessions = evaluate_strings(
            parse_path("//reference/@swissprot_accession_number"),
            figure6.root)
        assert accessions == ["P10731", "P19021", "P14925", "P08478",
                              "P12890"]
        names = evaluate_strings(parse_path("//reference/@name"),
                                 figure6.root)
        assert names[0] == "AMD_BOVIN"

    def test_empty_disease_list_present(self, figure6):
        entry = figure6.root.first("db_entry")
        disease_list = entry.first("disease_list")
        assert disease_list is not None
        assert disease_list.children == []

    def test_output_validates_against_figure5_dtd(self, figure6):
        parse_dtd(ENZYME_DTD_TEXT).validate(figure6)


class TestLineSpecs:
    """Figure 4's cardinality table."""

    def spec(self, code):
        return next(s for s in LINE_SPECS if s.code == code)

    def test_id_exactly_once(self):
        assert self.spec("ID").min_count == 1
        assert self.spec("ID").max_count == 1

    def test_de_at_least_once(self):
        assert self.spec("DE").min_count == 1
        assert self.spec("DE").max_count is None

    @pytest.mark.parametrize("code", ["AN", "CA", "CF", "CC", "DI", "PR",
                                      "DR"])
    def test_optional_repeatable_codes(self, code):
        assert self.spec(code).min_count == 0


class TestErrorHandling:
    def test_entry_without_id_rejected(self):
        with pytest.raises(FlatFileError):
            EnzymeTransformer().transform_text("DE   No id here.\n//\n")

    def test_two_id_lines_rejected(self):
        with pytest.raises(FlatFileError):
            EnzymeTransformer().transform_text(
                "ID   1.1.1.1\nID   1.1.1.2\nDE   Two ids.\n//\n")

    def test_malformed_pr_line_rejected(self):
        with pytest.raises(TransformError):
            EnzymeTransformer().transform_text(
                "ID   1.1.1.1\nDE   x.\nPR   NOT A PROSITE LINE\n//\n")

    def test_malformed_dr_pair_rejected(self):
        with pytest.raises(TransformError):
            EnzymeTransformer().transform_text(
                "ID   1.1.1.1\nDE   x.\nDR   P10731 AMD_BOVIN ;\n//\n")

    def test_comment_continuation_without_marker_rejected(self):
        with pytest.raises(TransformError):
            EnzymeTransformer().transform_text(
                "ID   1.1.1.1\nDE   x.\nCC       continuation first\n//\n")

    def test_validation_can_be_disabled(self):
        transformer = EnzymeTransformer(validate=False)
        docs = transformer.transform_text(SAMPLE_ENTRY)
        assert len(docs) == 1


class TestDiseaseMapping:
    def test_disease_with_mim_id(self):
        text = ("ID   1.1.1.1\nDE   x.\n"
                "DI   Phenylketonuria; MIM:261600.\n//\n")
        doc = EnzymeTransformer().transform_text(text)[0]
        assert evaluate_strings(parse_path("//disease"),
                                doc.root) == ["Phenylketonuria"]
        assert evaluate_strings(parse_path("//disease/@mim_id"),
                                doc.root) == ["261600"]

    def test_malformed_disease_rejected(self):
        with pytest.raises(TransformError):
            EnzymeTransformer().transform_text(
                "ID   1.1.1.1\nDE   x.\nDI   No mim number here\n//\n")


class TestEntryIdentity:
    def test_entry_key_is_ec_number(self, figure6):
        transformer = EnzymeTransformer()
        entry = parse_entries(SAMPLE_ENTRY)[0]
        assert transformer.entry_key(entry) == "1.14.17.3"

    def test_document_name(self):
        assert EnzymeTransformer().document_name() == "hlx_enzyme.DEFAULT"
