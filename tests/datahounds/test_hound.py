"""Integration tests for the Data Hound orchestrator (in-memory store)."""

import pytest

from repro.datahounds import DataHound, InMemoryRepository
from repro.errors import DataHoundsError, UnknownSourceError
from repro.synth import build_corpus, mutate_release
from repro.xmlkit import Document


class RecordingStore:
    """A DocumentStore that records operations (no relational engine)."""

    def __init__(self):
        self.documents = {}
        self.operations = []

    def store_document(self, source, collection, entry_key, document):
        assert isinstance(document, Document)
        self.documents[(source, entry_key)] = (collection, document)
        self.operations.append(("store", source, entry_key))

    def remove_document(self, source, collection, entry_key):
        self.documents.pop((source, entry_key), None)
        self.operations.append(("remove", source, entry_key))


@pytest.fixture
def setup():
    corpus = build_corpus(seed=11, enzyme_count=12, embl_count=10,
                          sprot_count=10)
    repo = InMemoryRepository()
    corpus.publish_to(repo, "r1")
    store = RecordingStore()
    return corpus, repo, store


class TestInitialLoad:
    def test_loads_every_entry(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        report = hound.load("hlx_enzyme")
        assert report.documents_loaded == 12
        assert len(report.plan.added) == 12
        assert hound.loaded_release("hlx_enzyme") == "r1"

    def test_unknown_source_rejected(self, setup):
        __, repo, store = setup
        with pytest.raises(UnknownSourceError):
            DataHound(repo, store).load("not_a_source")

    def test_embl_collections_routed_by_division(self, setup):
        corpus, repo, store = setup
        DataHound(repo, store).load("hlx_embl")
        collections = {c for (c, __) in store.documents.values()}
        assert collections == {"inv"}


class TestIncrementalUpdate:
    def test_unchanged_entries_not_reloaded(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        hound.load("hlx_enzyme")
        store.operations.clear()
        repo.publish("hlx_enzyme", "r2",
                     mutate_release(corpus.enzyme_text, seed=3,
                                    update_fraction=0.25,
                                    remove_fraction=0.1))
        report = hound.load("hlx_enzyme")
        stores = [op for op in store.operations if op[0] == "store"]
        removes = [op for op in store.operations if op[0] == "remove"]
        assert len(stores) == len(report.plan.updated)
        assert len(removes) == len(report.plan.removed)
        assert len(report.plan.unchanged) > 0

    def test_refresh_to_same_release_is_noop(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        hound.load("hlx_enzyme")
        store.operations.clear()
        report = hound.load("hlx_enzyme")
        assert report.plan.is_noop
        assert store.operations == []

    def test_triggers_fired_with_change_details(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        events = []
        hound.subscribe(events.append, "hlx_enzyme")
        hound.load("hlx_enzyme")
        assert len(events) == 1
        repo.publish("hlx_enzyme", "r2",
                     mutate_release(corpus.enzyme_text, seed=3))
        hound.load("hlx_enzyme")
        assert len(events) == 2
        assert events[1].release == "r2"

    def test_no_trigger_on_noop_refresh(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        events = []
        hound.subscribe(events.append)
        hound.load("hlx_enzyme")
        hound.load("hlx_enzyme")
        assert len(events) == 1

    def test_loads_feed_delta_metrics(self, setup):
        from repro.obs import MetricsRegistry
        corpus, repo, store = setup
        registry = MetricsRegistry()
        hound = DataHound(repo, store, metrics=registry)
        hound.load("hlx_enzyme")
        repo.publish("hlx_enzyme", "r2",
                     mutate_release(corpus.enzyme_text, seed=3,
                                    update_fraction=0.25,
                                    remove_fraction=0.1))
        report = hound.load("hlx_enzyme")
        get = lambda name: registry.get_counter(name, source="hlx_enzyme")
        assert get("hound.loads") == 2
        assert get("hound.entries_added") == 12
        assert get("hound.entries_updated") == len(report.plan.updated)
        assert get("hound.entries_removed") == len(report.plan.removed)
        assert get("hound.entries_unchanged") == len(report.plan.unchanged)
        assert registry.histogram("hound.load_seconds").count == 2
        assert registry.get_gauge_value("hound.last_harvest_timestamp",
                                        source="hlx_enzyme") > 0


class TestSafety:
    def test_duplicate_entry_keys_rejected(self, setup):
        __, repo, store = setup
        repo.publish("hlx_enzyme", "r9",
                     "ID   1.1.1.1\nDE   a.\n//\nID   1.1.1.1\nDE   b.\n//\n")
        hound = DataHound(repo, store)
        with pytest.raises(DataHoundsError):
            hound.load("hlx_enzyme", "r9")

    def test_corrupt_entry_aborts_whole_load(self, setup):
        """Two-phase apply: a malformed entry anywhere in the release
        must leave the warehouse completely untouched."""
        from repro.errors import TransformError
        __, repo, store = setup
        repo.publish(
            "hlx_enzyme", "r9",
            "ID   1.1.1.1\nDE   fine.\n//\n"
            "ID   1.1.1.2\nDE   broken.\nPR   NOT A PROSITE LINE\n//\n")
        hound = DataHound(repo, store)
        with pytest.raises(TransformError):
            hound.load("hlx_enzyme", "r9")
        assert store.documents == {}
        assert store.operations == []
        assert hound.loaded_release("hlx_enzyme") is None

    def test_corrupt_refresh_keeps_previous_release(self, setup):
        from repro.errors import TransformError
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        hound.load("hlx_enzyme")
        before = dict(store.documents)
        repo.publish("hlx_enzyme", "r9",
                     "ID   9.9.9.9\nDE   broken.\nDI   no mim here\n//\n")
        with pytest.raises(TransformError):
            hound.load("hlx_enzyme", "r9")
        assert store.documents == before
        assert hound.loaded_release("hlx_enzyme") == "r1"


class TestQuarantine:
    BROKEN_RELEASE = (
        "ID   1.1.1.1\nDE   fine.\n//\n"
        "ID   1.1.1.2\nDE   broken.\nPR   NOT A PROSITE LINE\n//\n"
        "ID   1.1.1.3\nDE   also fine.\n//\n")

    def test_quarantine_skips_malformed_entries(self, setup):
        __, repo, store = setup
        repo.publish("hlx_enzyme", "r9", self.BROKEN_RELEASE)
        hound = DataHound(repo, store, quarantine=True)
        report = hound.load("hlx_enzyme", "r9")
        assert report.quarantined == ("1.1.1.2",)
        assert report.documents_loaded == 2
        assert ("hlx_enzyme", "1.1.1.2") not in store.documents

    def test_quarantined_entry_retried_on_next_refresh(self, setup):
        """A quarantined entry stays out of the committed snapshot, so
        a fixed re-release loads it as new work."""
        __, repo, store = setup
        repo.publish("hlx_enzyme", "r9", self.BROKEN_RELEASE)
        hound = DataHound(repo, store, quarantine=True)
        hound.load("hlx_enzyme", "r9")
        repo.publish("hlx_enzyme", "r10",
                     self.BROKEN_RELEASE.replace(
                         "PR   NOT A PROSITE LINE\n", ""))
        report = hound.load("hlx_enzyme", "r10")
        assert report.quarantined == ()
        assert "1.1.1.2" in report.plan.added
        assert ("hlx_enzyme", "1.1.1.2") in store.documents

    def test_strict_mode_still_aborts(self, setup):
        from repro.errors import TransformError
        __, repo, store = setup
        repo.publish("hlx_enzyme", "r9", self.BROKEN_RELEASE)
        hound = DataHound(repo, store)     # quarantine off by default
        with pytest.raises(TransformError):
            hound.load("hlx_enzyme", "r9")
        assert store.documents == {}

    def test_quarantine_feeds_metrics_and_events(self, setup):
        from repro.obs import EventLog, MetricsRegistry
        __, repo, store = setup
        repo.publish("hlx_enzyme", "r9", self.BROKEN_RELEASE)
        metrics, events = MetricsRegistry(), EventLog()
        hound = DataHound(repo, store, quarantine=True,
                          metrics=metrics, events=events)
        hound.load("hlx_enzyme", "r9")
        assert metrics.get_counter("hound.entries_quarantined",
                                   source="hlx_enzyme") == 1
        warned = [e for e in events.events()
                  if e.name == "hound.quarantine"]
        assert len(warned) == 1
        assert warned[0].severity == "warning"
        assert warned[0].fields["entry_key"] == "1.1.1.2"

    def test_triggers_exclude_quarantined_keys(self, setup):
        __, repo, store = setup
        repo.publish("hlx_enzyme", "r9", self.BROKEN_RELEASE)
        hound = DataHound(repo, store, quarantine=True)
        fired = []
        hound.subscribe(fired.append, "hlx_enzyme")
        hound.load("hlx_enzyme", "r9")
        assert len(fired) == 1
        assert "1.1.1.2" not in fired[0].added


class TestHarvestAll:
    def test_harvests_every_published_known_source(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        report = hound.harvest_all()
        assert report.ok
        assert sorted(report.reports) == ["hlx_embl", "hlx_enzyme",
                                          "hlx_sprot"]
        assert report.documents_loaded == 32

    def test_one_bad_source_is_isolated(self, setup):
        from repro.errors import TransportError
        corpus, repo, store = setup

        class Flaky:
            def __init__(self, inner):
                self.inner = inner

            def sources(self):
                return self.inner.sources()

            def latest_release(self, source):
                return self.inner.latest_release(source)

            def fetch(self, source, release=None):
                if source == "hlx_embl":
                    raise TransportError("mirror down")
                return self.inner.fetch(source, release)

        hound = DataHound(Flaky(repo), store)
        report = hound.harvest_all()
        assert not report.ok
        assert sorted(report.reports) == ["hlx_enzyme", "hlx_sprot"]
        assert report.failures["hlx_embl"].error_type == "TransportError"
        assert "mirror down" in str(report)

    def test_fail_fast_restores_abort_behaviour(self, setup):
        from repro.errors import TransportError
        corpus, repo, store = setup

        class Down:
            def sources(self):
                return ["hlx_enzyme"]

            def latest_release(self, source):
                return "r1"

            def fetch(self, source, release=None):
                raise TransportError("down")

        with pytest.raises(TransportError):
            DataHound(Down(), store).harvest_all(fail_fast=True)

    def test_explicit_source_list_respected(self, setup):
        corpus, repo, store = setup
        report = DataHound(repo, store).harvest_all(["hlx_enzyme"])
        assert sorted(report.reports) == ["hlx_enzyme"]

    def test_failures_feed_metrics_and_events(self, setup):
        from repro.errors import TransportError
        from repro.obs import EventLog, MetricsRegistry

        class Down:
            def sources(self):
                return ["hlx_enzyme"]

            def latest_release(self, source):
                return "r1"

            def fetch(self, source, release=None):
                raise TransportError("down")

        __, __, store = setup
        metrics, events = MetricsRegistry(), EventLog()
        hound = DataHound(Down(), store, metrics=metrics, events=events)
        report = hound.harvest_all()
        assert not report.ok
        assert metrics.get_counter("hound.harvest_failures",
                                   source="hlx_enzyme") == 1
        names = [e.name for e in events.events()]
        assert "hound.harvest_error" in names
        assert "hound.harvest" in names


class SnapshotStore(RecordingStore):
    """A RecordingStore that also persists release snapshots (the
    warehouse loader's crash-recovery surface)."""

    def __init__(self):
        super().__init__()
        self.snapshots = {}

    def save_snapshot(self, source, release, fingerprints):
        self.snapshots[source] = (release, dict(fingerprints))

    def load_snapshots(self):
        return dict(self.snapshots)


class TestSnapshotPersistence:
    def test_snapshot_saved_after_each_load(self, setup):
        corpus, repo, store = setup
        store = SnapshotStore()
        hound = DataHound(repo, store)
        hound.load("hlx_enzyme")
        release, fingerprints = store.snapshots["hlx_enzyme"]
        assert release == "r1"
        assert len(fingerprints) == 12

    def test_restored_hound_resumes_incremental_diffs(self, setup):
        """A fresh hound over the same store must see the persisted
        snapshot: an unchanged re-harvest is a no-op, not a re-load."""
        corpus, repo, __ = setup
        store = SnapshotStore()
        DataHound(repo, store).load("hlx_enzyme")
        store.operations.clear()
        revived = DataHound(repo, store)
        assert revived.loaded_release("hlx_enzyme") == "r1"
        report = revived.load("hlx_enzyme")
        assert report.plan.is_noop
        assert store.operations == []

    def test_restored_hound_applies_only_the_delta(self, setup):
        corpus, repo, __ = setup
        store = SnapshotStore()
        DataHound(repo, store).load("hlx_enzyme")
        repo.publish("hlx_enzyme", "r2",
                     mutate_release(corpus.enzyme_text, seed=3,
                                    update_fraction=0.25,
                                    remove_fraction=0.1))
        store.operations.clear()
        report = DataHound(repo, store).load("hlx_enzyme")
        stores = [op for op in store.operations if op[0] == "store"]
        assert len(report.plan.unchanged) > 0
        assert len(stores) == (len(report.plan.added)
                               + len(report.plan.updated))

    def test_quarantined_keys_stay_out_of_persisted_snapshot(self, setup):
        __, repo, __ = setup
        store = SnapshotStore()
        repo.publish("hlx_enzyme", "r9", TestQuarantine.BROKEN_RELEASE)
        DataHound(repo, store, quarantine=True).load("hlx_enzyme", "r9")
        __, fingerprints = store.snapshots["hlx_enzyme"]
        assert "1.1.1.2" not in fingerprints
        assert set(fingerprints) == {"1.1.1.1", "1.1.1.3"}
