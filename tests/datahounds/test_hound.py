"""Integration tests for the Data Hound orchestrator (in-memory store)."""

import pytest

from repro.datahounds import DataHound, InMemoryRepository
from repro.errors import DataHoundsError, UnknownSourceError
from repro.synth import build_corpus, mutate_release
from repro.xmlkit import Document


class RecordingStore:
    """A DocumentStore that records operations (no relational engine)."""

    def __init__(self):
        self.documents = {}
        self.operations = []

    def store_document(self, source, collection, entry_key, document):
        assert isinstance(document, Document)
        self.documents[(source, entry_key)] = (collection, document)
        self.operations.append(("store", source, entry_key))

    def remove_document(self, source, collection, entry_key):
        self.documents.pop((source, entry_key), None)
        self.operations.append(("remove", source, entry_key))


@pytest.fixture
def setup():
    corpus = build_corpus(seed=11, enzyme_count=12, embl_count=10,
                          sprot_count=10)
    repo = InMemoryRepository()
    corpus.publish_to(repo, "r1")
    store = RecordingStore()
    return corpus, repo, store


class TestInitialLoad:
    def test_loads_every_entry(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        report = hound.load("hlx_enzyme")
        assert report.documents_loaded == 12
        assert len(report.plan.added) == 12
        assert hound.loaded_release("hlx_enzyme") == "r1"

    def test_unknown_source_rejected(self, setup):
        __, repo, store = setup
        with pytest.raises(UnknownSourceError):
            DataHound(repo, store).load("not_a_source")

    def test_embl_collections_routed_by_division(self, setup):
        corpus, repo, store = setup
        DataHound(repo, store).load("hlx_embl")
        collections = {c for (c, __) in store.documents.values()}
        assert collections == {"inv"}


class TestIncrementalUpdate:
    def test_unchanged_entries_not_reloaded(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        hound.load("hlx_enzyme")
        store.operations.clear()
        repo.publish("hlx_enzyme", "r2",
                     mutate_release(corpus.enzyme_text, seed=3,
                                    update_fraction=0.25,
                                    remove_fraction=0.1))
        report = hound.load("hlx_enzyme")
        stores = [op for op in store.operations if op[0] == "store"]
        removes = [op for op in store.operations if op[0] == "remove"]
        assert len(stores) == len(report.plan.updated)
        assert len(removes) == len(report.plan.removed)
        assert len(report.plan.unchanged) > 0

    def test_refresh_to_same_release_is_noop(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        hound.load("hlx_enzyme")
        store.operations.clear()
        report = hound.load("hlx_enzyme")
        assert report.plan.is_noop
        assert store.operations == []

    def test_triggers_fired_with_change_details(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        events = []
        hound.subscribe(events.append, "hlx_enzyme")
        hound.load("hlx_enzyme")
        assert len(events) == 1
        repo.publish("hlx_enzyme", "r2",
                     mutate_release(corpus.enzyme_text, seed=3))
        hound.load("hlx_enzyme")
        assert len(events) == 2
        assert events[1].release == "r2"

    def test_no_trigger_on_noop_refresh(self, setup):
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        events = []
        hound.subscribe(events.append)
        hound.load("hlx_enzyme")
        hound.load("hlx_enzyme")
        assert len(events) == 1

    def test_loads_feed_delta_metrics(self, setup):
        from repro.obs import MetricsRegistry
        corpus, repo, store = setup
        registry = MetricsRegistry()
        hound = DataHound(repo, store, metrics=registry)
        hound.load("hlx_enzyme")
        repo.publish("hlx_enzyme", "r2",
                     mutate_release(corpus.enzyme_text, seed=3,
                                    update_fraction=0.25,
                                    remove_fraction=0.1))
        report = hound.load("hlx_enzyme")
        get = lambda name: registry.get_counter(name, source="hlx_enzyme")
        assert get("hound.loads") == 2
        assert get("hound.entries_added") == 12
        assert get("hound.entries_updated") == len(report.plan.updated)
        assert get("hound.entries_removed") == len(report.plan.removed)
        assert get("hound.entries_unchanged") == len(report.plan.unchanged)
        assert registry.histogram("hound.load_seconds").count == 2
        assert registry.get_gauge_value("hound.last_harvest_timestamp",
                                        source="hlx_enzyme") > 0


class TestSafety:
    def test_duplicate_entry_keys_rejected(self, setup):
        __, repo, store = setup
        repo.publish("hlx_enzyme", "r9",
                     "ID   1.1.1.1\nDE   a.\n//\nID   1.1.1.1\nDE   b.\n//\n")
        hound = DataHound(repo, store)
        with pytest.raises(DataHoundsError):
            hound.load("hlx_enzyme", "r9")

    def test_corrupt_entry_aborts_whole_load(self, setup):
        """Two-phase apply: a malformed entry anywhere in the release
        must leave the warehouse completely untouched."""
        from repro.errors import TransformError
        __, repo, store = setup
        repo.publish(
            "hlx_enzyme", "r9",
            "ID   1.1.1.1\nDE   fine.\n//\n"
            "ID   1.1.1.2\nDE   broken.\nPR   NOT A PROSITE LINE\n//\n")
        hound = DataHound(repo, store)
        with pytest.raises(TransformError):
            hound.load("hlx_enzyme", "r9")
        assert store.documents == {}
        assert store.operations == []
        assert hound.loaded_release("hlx_enzyme") is None

    def test_corrupt_refresh_keeps_previous_release(self, setup):
        from repro.errors import TransformError
        corpus, repo, store = setup
        hound = DataHound(repo, store)
        hound.load("hlx_enzyme")
        before = dict(store.documents)
        repo.publish("hlx_enzyme", "r9",
                     "ID   9.9.9.9\nDE   broken.\nDI   no mim here\n//\n")
        with pytest.raises(TransformError):
            hound.load("hlx_enzyme", "r9")
        assert store.documents == before
        assert hound.loaded_release("hlx_enzyme") == "r1"
