"""Unit tests for change triggers."""

from repro.datahounds import ChangeEvent, TriggerHub


def event(source="hlx_enzyme", added=("a",), updated=(), removed=()):
    return ChangeEvent(source=source, release="r1", added=added,
                       updated=updated, removed=removed)


class TestTriggerHub:
    def test_subscriber_receives_event(self):
        hub = TriggerHub()
        seen = []
        hub.subscribe(seen.append, "hlx_enzyme")
        fired = hub.fire(event())
        assert fired == 1
        assert seen[0].added == ("a",)

    def test_wildcard_subscription(self):
        hub = TriggerHub()
        seen = []
        hub.subscribe(seen.append)  # all sources
        hub.fire(event(source="hlx_embl"))
        hub.fire(event(source="hlx_sprot"))
        assert len(seen) == 2

    def test_other_source_not_notified(self):
        hub = TriggerHub()
        seen = []
        hub.subscribe(seen.append, "hlx_embl")
        hub.fire(event(source="hlx_enzyme"))
        assert seen == []

    def test_noop_event_not_dispatched(self):
        hub = TriggerHub()
        seen = []
        hub.subscribe(seen.append)
        fired = hub.fire(event(added=()))
        assert fired == 0
        assert seen == []

    def test_unsubscribe(self):
        hub = TriggerHub()
        seen = []
        hub.subscribe(seen.append, "hlx_enzyme")
        hub.unsubscribe(seen.append, "hlx_enzyme")
        hub.fire(event())
        assert seen == []

    def test_multiple_subscribers_all_notified(self):
        hub = TriggerHub()
        first, second = [], []
        hub.subscribe(first.append, "hlx_enzyme")
        hub.subscribe(second.append)
        assert hub.fire(event()) == 2

    def test_fire_counts_events_and_deliveries(self):
        hub = TriggerHub()
        hub.subscribe(lambda e: None, "hlx_enzyme")
        hub.subscribe(lambda e: None)
        hub.fire(event())                    # 2 deliveries
        hub.fire(event(source="hlx_embl"))   # wildcard only
        hub.fire(event(added=()))            # noop: not counted
        assert hub.events_fired == 2
        assert hub.deliveries == 3

    def test_fire_feeds_metrics(self):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        hub = TriggerHub(metrics=registry)
        hub.subscribe(lambda e: None, "hlx_enzyme")
        hub.fire(event())
        assert registry.get_counter("triggers.events",
                                    source="hlx_enzyme") == 1
        assert registry.get_counter("triggers.deliveries") == 1
        assert registry.histogram("triggers.delivery_seconds").count == 1


class TestChangeEvent:
    def test_total_changes(self):
        assert event(added=("a",), updated=("b", "c"),
                     removed=("d",)).total_changes == 4

    def test_str_summary(self):
        text = str(event(added=("a",), updated=("b",)))
        assert "+1" in text and "~1" in text and "-0" in text


class TestDeliveryIsolation:
    def test_raising_callback_does_not_starve_neighbours(self):
        hub = TriggerHub()
        seen = []

        def broken(event):
            raise RuntimeError("subscriber bug")

        hub.subscribe(broken, "hlx_enzyme")
        hub.subscribe(seen.append, "hlx_enzyme")
        fired = hub.fire(event())
        assert fired == 2
        assert len(seen) == 1            # the healthy neighbour ran

    def test_deliveries_counts_only_successes(self):
        hub = TriggerHub()
        hub.subscribe(lambda e: (_ for _ in ()).throw(ValueError("x")),
                      "hlx_enzyme")
        hub.subscribe(lambda e: None, "hlx_enzyme")
        hub.fire(event())
        assert hub.deliveries == 1
        assert hub.failed_deliveries == 1

    def test_failure_feeds_metrics_and_events(self):
        from repro.obs import EventLog, MetricsRegistry
        registry = MetricsRegistry()
        log = EventLog()
        hub = TriggerHub(metrics=registry, events=log)
        hub.subscribe(lambda e: (_ for _ in ()).throw(ValueError("boom")),
                      "hlx_enzyme")
        hub.fire(event())
        assert registry.get_counter("triggers.delivery_failed",
                                    source="hlx_enzyme") == 1
        failures = log.events("triggers.delivery_failed")
        assert len(failures) == 1
        assert failures[0].severity == "error"
        assert failures[0].fields["error_type"] == "ValueError"

    def test_latency_not_recorded_for_failures(self):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        hub = TriggerHub(metrics=registry)
        hub.subscribe(lambda e: (_ for _ in ()).throw(ValueError("x")),
                      "hlx_enzyme")
        hub.fire(event())
        assert registry.histogram("triggers.delivery_seconds").count == 0
