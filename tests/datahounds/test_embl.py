"""Unit tests for the EMBL transformer."""

import pytest

from repro.datahounds.sources.embl import (
    EMBL_DTD_TEXT,
    EmblTransformer,
    SAMPLE_ENTRY,
)
from repro.errors import TransformError
from repro.flatfile import parse_entries
from repro.xmlkit import evaluate_strings, parse_dtd, parse_path


@pytest.fixture(scope="module")
def sample():
    return EmblTransformer().transform_text(SAMPLE_ENTRY)[0]


class TestSampleEntry:
    def test_root_is_normalized_sequence(self, sample):
        assert sample.root.tag == "hlx_n_sequence"

    def test_accession(self, sample):
        assert evaluate_strings(parse_path("//embl_accession_number"),
                                sample.root) == ["AB012345"]

    def test_description_joined_across_lines(self, sample):
        description = evaluate_strings(parse_path("//description"),
                                       sample.root)[0]
        assert description.startswith("Caenorhabditis elegans cdc6 gene")
        assert description.endswith("complete cds.")
        assert "\n" not in description

    def test_division_lowercased(self, sample):
        assert evaluate_strings(parse_path("//division"),
                                sample.root) == ["inv"]

    def test_keywords_split(self, sample):
        keywords = evaluate_strings(parse_path("//keyword"), sample.root)
        assert keywords == ["cdc6", "cell cycle", "DNA replication"]

    def test_feature_key_and_location(self, sample):
        values = evaluate_strings(parse_path("//feature/@feature_key"),
                                  sample.root)
        assert values == ["CDS"]
        locations = evaluate_strings(parse_path("//feature/@location"),
                                     sample.root)
        assert locations == ["join(100..450,520..900)"]

    def test_qualifiers_typed(self, sample):
        path = parse_path('//qualifier[@qualifier_type = "EC_number"]')
        assert evaluate_strings(path, sample.root) == ["3.6.4.12"]
        path = parse_path('//qualifier[@qualifier_type = "gene"]')
        assert evaluate_strings(path, sample.root) == ["cdc6"]

    def test_sequence_residues_concatenated(self, sample):
        sequence = sample.root.first("db_entry").first("sequence")
        residues = sequence.text()
        assert residues.startswith("aacgttgcaa")
        assert " " not in residues
        assert not any(ch.isdigit() for ch in residues)

    def test_sequence_length_attribute_from_id_line(self, sample):
        sequence = sample.root.first("db_entry").first("sequence")
        assert sequence.get("length") == "1859"
        assert sequence.get("molecule_type") == "DNA"

    def test_validates_against_dtd(self, sample):
        parse_dtd(EMBL_DTD_TEXT).validate(sample)


class TestIdentity:
    def test_entry_key_is_primary_accession(self):
        transformer = EmblTransformer()
        entry = parse_entries(SAMPLE_ENTRY)[0]
        assert transformer.entry_key(entry) == "AB012345"

    def test_collection_follows_division(self):
        transformer = EmblTransformer()
        entry = parse_entries(SAMPLE_ENTRY)[0]
        assert transformer.collection_of(entry) == "inv"

    def test_document_name_default(self):
        assert EmblTransformer().document_name() == "hlx_embl.inv"


class TestErrors:
    def test_malformed_id_line_rejected(self):
        with pytest.raises(TransformError):
            EmblTransformer().transform_text(
                "ID   garbage with no structure\nAC   A1;\nDE   x\n//\n")

    def test_qualifier_before_feature_rejected(self):
        text = ("ID   NAME1; SV 1; INV; 100 BP.\nAC   AB000001;\n"
                "DE   x\nFT                   /gene=\"g\"\n//\n")
        with pytest.raises(TransformError):
            EmblTransformer().transform_text(text)

    def test_missing_accession_rejected(self):
        from repro.errors import FlatFileError
        with pytest.raises(FlatFileError):
            EmblTransformer().transform_text(
                "ID   NAME1; SV 1; INV; 100 BP.\nDE   x\n//\n")

    def test_cc_comment_lines_mapped(self):
        text = ("ID   NAME1; SV 1; INV; 100 BP.\nAC   AB000001;\n"
                "DE   x\nCC   -!- Assembled from three reads.\n//\n")
        doc = EmblTransformer().transform_text(text)[0]
        comments = evaluate_strings(parse_path("//comment"), doc.root)
        assert comments == ["Assembled from three reads."]

    def test_multiple_accessions_split(self):
        text = ("ID   NAME1; SV 1; INV; 100 BP.\nAC   AB000001; AB000002;\n"
                "DE   x\n//\n")
        doc = EmblTransformer().transform_text(text)[0]
        values = evaluate_strings(parse_path("//embl_accession_number"),
                                  doc.root)
        assert values == ["AB000001", "AB000002"]
