"""Unit tests for deterministic transport fault injection."""

import pytest

from repro.datahounds import (
    FaultInjectingRepository,
    FaultPlan,
    FaultSpec,
    InMemoryRepository,
)
from repro.errors import TransportError
from repro.obs import MetricsRegistry

TEXT = "ID   1.1.1.1\nDE   alcohol dehydrogenase.\n//\n"


def repo():
    inner = InMemoryRepository()
    inner.publish("hlx_enzyme", "r1", TEXT)
    return inner


class TestFaultSpec:
    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultSpec(transient_rate=0.7, corrupt_rate=0.5)

    def test_unknown_scripted_fault_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(script=("explode",))

    def test_ok_is_a_legal_script_entry(self):
        FaultSpec(script=("ok", "transient", "ok"))


class TestFaultPlan:
    def test_no_spec_means_no_faults(self):
        plan = FaultPlan(seed=1)
        assert [plan.next_outcome("s") for __ in range(10)] == ["ok"] * 10

    def test_script_consumed_then_clean(self):
        plan = FaultPlan().fail_then_succeed("s", 3)
        outcomes = [plan.next_outcome("s") for __ in range(5)]
        assert outcomes == ["transient"] * 3 + ["ok", "ok"]

    def test_same_seed_replays_same_sequence(self):
        one = FaultPlan(seed=42).add_source("s", transient_rate=0.5)
        two = FaultPlan(seed=42).add_source("s", transient_rate=0.5)
        seq_one = [one.next_outcome("s") for __ in range(40)]
        seq_two = [two.next_outcome("s") for __ in range(40)]
        assert seq_one == seq_two
        assert "transient" in seq_one and "ok" in seq_one

    def test_different_seeds_differ(self):
        one = FaultPlan(seed=1).add_source("s", transient_rate=0.5)
        two = FaultPlan(seed=2).add_source("s", transient_rate=0.5)
        assert ([one.next_outcome("s") for __ in range(40)]
                != [two.next_outcome("s") for __ in range(40)])

    def test_per_source_sequences_independent_of_interleaving(self):
        """Fetching sources in a different order must replay identical
        per-source fault sequences (one RNG per source)."""
        def sequences(order):
            plan = FaultPlan(seed=9).add_source("*", transient_rate=0.4)
            out = {"a": [], "b": []}
            for source in order:
                out[source].append(plan.next_outcome(source))
            return out
        fair = sequences(["a", "b"] * 10)
        skewed = sequences(["a"] * 10 + ["b"] * 10)
        assert fair == skewed

    def test_reset_rearms_scripts_and_rngs(self):
        plan = FaultPlan(seed=5).add_source(
            "s", transient_rate=0.3, script=("corrupt",))
        first = [plan.next_outcome("s") for __ in range(20)]
        assert plan.injected_total() > 0
        plan.reset()
        assert plan.injected_total() == 0
        assert [plan.next_outcome("s") for __ in range(20)] == first

    def test_wildcard_spec_applies_to_unlisted_sources(self):
        plan = FaultPlan().add_source("*", script=("transient",))
        assert plan.next_outcome("anything") == "transient"

    def test_explicit_spec_beats_wildcard(self):
        plan = (FaultPlan().add_source("*", script=("transient",))
                .add_source("clean"))
        assert plan.next_outcome("clean") == "ok"

    def test_injected_counts_recorded(self):
        plan = FaultPlan().fail_then_succeed("s", 2, kind="corrupt")
        for __ in range(4):
            plan.next_outcome("s")
        assert plan.injected == {("s", "corrupt"): 2}


class TestFaultInjectingRepository:
    def test_transient_raises_then_recovers(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 1)
        flaky = FaultInjectingRepository(repo(), plan)
        with pytest.raises(TransportError):
            flaky.fetch("hlx_enzyme")
        assert flaky.fetch("hlx_enzyme").text == TEXT

    def test_truncate_shortens_payload_but_fetch_succeeds(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 1,
                                             kind="truncate")
        result = FaultInjectingRepository(repo(), plan).fetch("hlx_enzyme")
        assert 0 < len(result.text) < len(TEXT)

    def test_corrupt_alters_payload_but_fetch_succeeds(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 1,
                                             kind="corrupt")
        result = FaultInjectingRepository(repo(), plan).fetch("hlx_enzyme")
        assert result.text != TEXT
        assert len(result.text) == len(TEXT)

    def test_stall_sleeps_injected_duration(self):
        naps = []
        plan = FaultPlan().add_source("hlx_enzyme", script=("stall",),
                                      stall_s=0.25)
        flaky = FaultInjectingRepository(repo(), plan, sleep=naps.append)
        assert flaky.fetch("hlx_enzyme").text == TEXT
        assert naps == [0.25]

    def test_checksum_stays_pristine_under_corruption(self):
        """The advertised checksum comes from the inner repository, so
        corrupted payloads are detectable by verification."""
        from repro.datahounds import content_checksum
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 1,
                                             kind="corrupt")
        flaky = FaultInjectingRepository(repo(), plan)
        result = flaky.fetch("hlx_enzyme")
        advertised = flaky.checksum("hlx_enzyme", "r1")
        assert advertised == content_checksum(TEXT)
        assert result.checksum != advertised

    def test_transient_fault_counts_as_fetch_error(self):
        metrics = MetricsRegistry()
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 1)
        flaky = FaultInjectingRepository(repo(), plan, metrics=metrics)
        with pytest.raises(TransportError):
            flaky.fetch("hlx_enzyme")
        assert metrics.get_counter("transport.fetch_errors",
                                   source="hlx_enzyme") == 1
        assert metrics.get_counter("transport.faults_injected",
                                   source="hlx_enzyme",
                                   kind="transient") == 1

    def test_delegation_is_transparent(self):
        flaky = FaultInjectingRepository(repo(), FaultPlan())
        assert flaky.sources() == ["hlx_enzyme"]
        assert flaky.releases("hlx_enzyme") == ["r1"]
        assert flaky.latest_release("hlx_enzyme") == "r1"
        flaky.publish("hlx_enzyme", "r2", "ID   x\n//\n")
        assert flaky.latest_release("hlx_enzyme") == "r2"
