"""Unit tests for the simulated transport layer."""

import pytest

from repro.datahounds import (
    DirectoryRepository,
    InMemoryRepository,
    content_checksum,
)
from repro.errors import TransportError


class TestInMemoryRepository:
    def repo(self):
        repo = InMemoryRepository()
        repo.publish("hlx_enzyme", "r1", "ID   a\n//\n")
        repo.publish("hlx_enzyme", "r2", "ID   b\n//\n")
        return repo

    def test_sources_listed(self):
        assert self.repo().sources() == ["hlx_enzyme"]

    def test_releases_sorted(self):
        assert self.repo().releases("hlx_enzyme") == ["r1", "r2"]

    def test_latest_release(self):
        assert self.repo().latest_release("hlx_enzyme") == "r2"

    def test_fetch_specific_release(self):
        fetched = self.repo().fetch("hlx_enzyme", "r1")
        assert fetched.release == "r1"
        assert "ID   a" in fetched.text

    def test_fetch_defaults_to_latest(self):
        assert self.repo().fetch("hlx_enzyme").release == "r2"

    def test_unknown_source_rejected(self):
        with pytest.raises(TransportError):
            self.repo().fetch("nope")

    def test_unknown_release_rejected(self):
        with pytest.raises(TransportError):
            self.repo().fetch("hlx_enzyme", "r99")

    def test_checksum_stable_and_distinct(self):
        repo = self.repo()
        first = repo.fetch("hlx_enzyme", "r1")
        again = repo.fetch("hlx_enzyme", "r1")
        other = repo.fetch("hlx_enzyme", "r2")
        assert first.checksum == again.checksum
        assert first.checksum != other.checksum


class TestDirectoryRepository:
    def test_publish_and_fetch(self, tmp_path):
        repo = DirectoryRepository(tmp_path)
        repo.publish("hlx_enzyme", "r1", "ID   a\n//\n")
        fetched = repo.fetch("hlx_enzyme")
        assert fetched.release == "r1"
        assert fetched.text == "ID   a\n//\n"

    def test_releases_sorted_on_disk(self, tmp_path):
        repo = DirectoryRepository(tmp_path)
        repo.publish("s", "r2", "b")
        repo.publish("s", "r1", "a")
        assert repo.releases("s") == ["r1", "r2"]

    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(TransportError):
            DirectoryRepository(tmp_path).releases("missing")

    def test_sources_empty_when_base_missing(self, tmp_path):
        repo = DirectoryRepository(tmp_path / "nothing")
        assert repo.sources() == []


class TestChecksum:
    def test_checksum_is_short_hex(self):
        value = content_checksum("abc")
        assert len(value) == 16
        int(value, 16)  # parses as hex


class TestAdvertisedChecksums:
    def test_in_memory_checksum_matches_content(self):
        repo = InMemoryRepository()
        repo.publish("s", "r1", "ID   a\n//\n")
        assert repo.checksum("s", "r1") == content_checksum("ID   a\n//\n")

    def test_in_memory_checksum_unknown_release_rejected(self):
        repo = InMemoryRepository()
        repo.publish("s", "r1", "x")
        with pytest.raises(TransportError):
            repo.checksum("s", "r99")

    def test_publish_writes_sha_sidecar(self, tmp_path):
        repo = DirectoryRepository(tmp_path)
        repo.publish("s", "r1", "ID   a\n//\n")
        sidecar = tmp_path / "s" / "r1.sha"
        assert sidecar.read_text() == content_checksum("ID   a\n//\n")
        assert repo.checksum("s", "r1") == content_checksum("ID   a\n//\n")

    def test_checksum_none_without_sidecar(self, tmp_path):
        repo = DirectoryRepository(tmp_path)
        repo.publish("s", "r1", "x")
        (tmp_path / "s" / "r1.sha").unlink()
        assert repo.checksum("s", "r1") is None


class TestSidecarVerification:
    def test_corrupted_file_rejected(self, tmp_path):
        """A bit-rotted release file no longer matches its sidecar —
        the fetch must fail instead of loading garbage."""
        repo = DirectoryRepository(tmp_path)
        repo.publish("s", "r1", "ID   a\n//\n")
        (tmp_path / "s" / "r1.dat").write_text("ID   GARBAGE\n//\n",
                                               encoding="utf-8")
        with pytest.raises(TransportError, match="corrupted mirror"):
            repo.fetch("s", "r1")

    def test_truncated_file_rejected(self, tmp_path):
        repo = DirectoryRepository(tmp_path)
        repo.publish("s", "r1", "ID   a\nDE   b.\n//\n")
        path = tmp_path / "s" / "r1.dat"
        path.write_text(path.read_text(encoding="utf-8")[:5],
                        encoding="utf-8")
        with pytest.raises(TransportError, match="corrupted mirror"):
            repo.fetch("s", "r1")

    def test_sidecarless_release_still_fetches(self, tmp_path):
        """Pre-sidecar mirrors stay fetchable, just unverified."""
        repo = DirectoryRepository(tmp_path)
        repo.publish("s", "r1", "ID   a\n//\n")
        (tmp_path / "s" / "r1.sha").unlink()
        assert repo.fetch("s", "r1").text == "ID   a\n//\n"


class TestFetchErrorCounter:
    def test_in_memory_missing_release_counted(self):
        from repro.obs import MetricsRegistry
        metrics = MetricsRegistry()
        repo = InMemoryRepository(metrics=metrics)
        repo.publish("s", "r1", "x")
        with pytest.raises(TransportError):
            repo.fetch("s", "r99")
        assert metrics.get_counter("transport.fetch_errors",
                                   source="s") == 1

    def test_directory_failures_counted(self, tmp_path):
        from repro.obs import MetricsRegistry
        metrics = MetricsRegistry()
        repo = DirectoryRepository(tmp_path, metrics=metrics)
        repo.publish("s", "r1", "ID   a\n//\n")
        with pytest.raises(TransportError):
            repo.fetch("s", "r99")                       # missing file
        (tmp_path / "s" / "r1.dat").write_text("junk", encoding="utf-8")
        with pytest.raises(TransportError):
            repo.fetch("s", "r1")                        # corrupted file
        assert metrics.get_counter("transport.fetch_errors",
                                   source="s") == 2
