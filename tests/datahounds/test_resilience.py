"""Unit tests for the resilient transport wrapper: retry policy,
circuit breaker state machine, integrity verification."""

import pytest

from repro.datahounds import (
    CircuitBreaker,
    FaultInjectingRepository,
    FaultPlan,
    InMemoryRepository,
    ResilientRepository,
    RetryPolicy,
)
from repro.datahounds.resilience import BREAKER_STATE_CODES
from repro.errors import (
    CircuitOpenError,
    PayloadIntegrityError,
    TransportError,
)
from repro.obs import EventLog, MetricsRegistry

TEXT = "ID   1.1.1.1\nDE   alcohol dehydrogenase.\n//\n"


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_repo():
    inner = InMemoryRepository()
    inner.publish("hlx_enzyme", "r1", TEXT)
    return inner


def resilient(inner, naps=None, clock=None, **kwargs):
    kwargs.setdefault("policy", RetryPolicy(max_attempts=4,
                                            base_delay_s=0.01))
    return ResilientRepository(
        inner,
        sleep=(naps.append if naps is not None else (lambda s: None)),
        clock=clock if clock is not None else FakeClock(),
        **kwargs)


class TestRetryPolicy:
    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_multiplier_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=3.0, jitter=0.0)
        assert policy.delay_for(1) == 1.0
        assert policy.delay_for(2) == 2.0
        assert policy.delay_for(3) == 3.0   # capped
        assert policy.delay_for(9) == 3.0

    def test_jitter_is_deterministic_per_source_and_attempt(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.2)
        assert policy.delay_for(1, "a") == policy.delay_for(1, "a")
        assert policy.delay_for(1, "a") != policy.delay_for(1, "b")
        assert abs(policy.delay_for(1, "a") - 1.0) <= 0.2 + 1e-9


class TestCircuitBreaker:
    def breaker(self, clock, metrics=None, events=None):
        return CircuitBreaker("s", failure_threshold=3, cooldown_s=10.0,
                              clock=clock, metrics=metrics, events=events)

    def test_opens_after_threshold_failures(self):
        breaker = self.breaker(FakeClock())
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = self.breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_opens_after_cooldown_and_closes_on_good_probe(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for __ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()            # half-open probe admitted
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.0)
        assert not breaker.allow()        # cooldown restarted
        clock.advance(1.0)
        assert breaker.allow()

    def test_transitions_land_on_gauge_and_events(self):
        metrics = MetricsRegistry()
        events = EventLog()
        clock = FakeClock()
        breaker = self.breaker(clock, metrics=metrics, events=events)
        gauge = lambda: metrics.get_gauge_value("transport.breaker_state",
                                                source="s")
        assert gauge() == BREAKER_STATE_CODES["closed"]
        for __ in range(3):
            breaker.record_failure()
        assert gauge() == BREAKER_STATE_CODES["open"]
        clock.advance(10.0)
        breaker.allow()
        assert gauge() == BREAKER_STATE_CODES["half_open"]
        breaker.record_success()
        assert gauge() == BREAKER_STATE_CODES["closed"]
        names = [e.name for e in events.events()]
        assert "transport.breaker_open" in names
        assert "transport.breaker_half_open" in names
        assert "transport.breaker_closed" in names
        opened = [e for e in events.events()
                  if e.name == "transport.breaker_open"]
        assert opened[0].severity == "warning"


class TestResilientFetch:
    def test_retries_until_success(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 2)
        naps = []
        wrapper = resilient(FaultInjectingRepository(make_repo(), plan),
                            naps=naps)
        result = wrapper.fetch("hlx_enzyme")
        assert result.text == TEXT
        assert len(naps) == 2

    def test_backoff_delays_follow_the_policy(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 2)
        naps = []
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.01,
                             multiplier=2.0, jitter=0.0)
        wrapper = resilient(FaultInjectingRepository(make_repo(), plan),
                            naps=naps, policy=policy)
        wrapper.fetch("hlx_enzyme")
        assert naps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_gives_up_after_max_attempts(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 99)
        metrics = MetricsRegistry()
        wrapper = resilient(FaultInjectingRepository(make_repo(), plan),
                            metrics=metrics, breaker_threshold=50)
        with pytest.raises(TransportError, match="after 4 attempt"):
            wrapper.fetch("hlx_enzyme")
        assert metrics.get_counter("transport.retries",
                                   source="hlx_enzyme") == 3
        assert metrics.get_counter("transport.fetch_errors",
                                   source="hlx_enzyme") >= 1

    def test_deadline_cuts_the_retry_ladder_short(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 99)
        clock = FakeClock()
        flaky = FaultInjectingRepository(make_repo(), plan)
        wrapper = ResilientRepository(
            flaky, policy=RetryPolicy(max_attempts=50, base_delay_s=1.0,
                                      jitter=0.0, deadline_s=2.5),
            sleep=lambda s: clock.advance(s), clock=clock,
            breaker_threshold=100)
        with pytest.raises(TransportError, match="attempt"):
            wrapper.fetch("hlx_enzyme")
        assert clock.now <= 4.0   # nowhere near 50 attempts' worth

    def test_breaker_opens_and_short_circuits(self):
        plan = FaultPlan().add_source("hlx_enzyme",
                                      script=("transient",) * 20)
        clock = FakeClock()
        wrapper = resilient(FaultInjectingRepository(make_repo(), plan),
                            clock=clock, breaker_threshold=3,
                            breaker_cooldown_s=30.0)
        with pytest.raises(TransportError):
            wrapper.fetch("hlx_enzyme")
        assert wrapper.breaker("hlx_enzyme").state == "open"
        # while open, the source is never touched: the script would
        # inject more faults, but fetch fails fast instead
        before = plan.injected_total()
        with pytest.raises(CircuitOpenError):
            wrapper.fetch("hlx_enzyme")
        assert plan.injected_total() == before

    def test_breaker_recovers_after_cooldown(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 3)
        clock = FakeClock()
        wrapper = resilient(FaultInjectingRepository(make_repo(), plan),
                            clock=clock, breaker_threshold=3,
                            breaker_cooldown_s=30.0)
        with pytest.raises(TransportError):
            wrapper.fetch("hlx_enzyme")
        clock.advance(30.0)
        assert wrapper.fetch("hlx_enzyme").text == TEXT
        assert wrapper.breaker("hlx_enzyme").state == "closed"

    def test_retry_events_emitted(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 1)
        events = EventLog()
        wrapper = resilient(FaultInjectingRepository(make_repo(), plan),
                            events=events)
        wrapper.fetch("hlx_enzyme")
        names = [e.name for e in events.events()]
        assert "transport.retry" in names
        assert "transport.recovered" in names

    def test_breaker_states_view(self):
        wrapper = resilient(make_repo())
        wrapper.fetch("hlx_enzyme")
        states = wrapper.breaker_states()
        assert states == {"hlx_enzyme": {"state": "closed",
                                         "consecutive_failures": 0}}


class TestIntegrityVerification:
    def test_truncated_payload_detected_and_retried(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 1,
                                             kind="truncate")
        metrics = MetricsRegistry()
        wrapper = resilient(FaultInjectingRepository(make_repo(), plan),
                            metrics=metrics)
        assert wrapper.fetch("hlx_enzyme").text == TEXT
        assert metrics.get_counter("transport.integrity_failures",
                                   source="hlx_enzyme") == 1

    def test_corrupt_payload_detected(self):
        plan = FaultPlan().add_source("hlx_enzyme",
                                      script=("corrupt",) * 10)
        wrapper = resilient(FaultInjectingRepository(make_repo(), plan),
                            breaker_threshold=50)
        with pytest.raises(TransportError) as excinfo:
            wrapper.fetch("hlx_enzyme")
        assert isinstance(excinfo.value.__cause__, PayloadIntegrityError)

    def test_verification_can_be_disabled(self):
        plan = FaultPlan().fail_then_succeed("hlx_enzyme", 1,
                                             kind="corrupt")
        wrapper = resilient(FaultInjectingRepository(make_repo(), plan),
                            verify_integrity=False)
        assert wrapper.fetch("hlx_enzyme").text != TEXT   # garbage passes

    def test_inner_without_checksum_is_tolerated(self):
        class Bare:
            def fetch(self, source, release=None):
                return make_repo().fetch("hlx_enzyme", "r1")
        wrapper = resilient(Bare())
        assert wrapper.fetch("hlx_enzyme").text == TEXT
