"""Unit tests for the Swiss-Prot transformer."""

import pytest

from repro.datahounds.sources.sprot import (
    SPROT_DTD_TEXT,
    SprotTransformer,
    SAMPLE_ENTRY,
)
from repro.errors import TransformError
from repro.flatfile import parse_entries
from repro.xmlkit import evaluate_strings, parse_dtd, parse_path


@pytest.fixture(scope="module")
def sample():
    return SprotTransformer().transform_text(SAMPLE_ENTRY)[0]


class TestSampleEntry:
    def test_root_is_normalized_sequence(self, sample):
        assert sample.root.tag == "hlx_n_sequence"

    def test_entry_name(self, sample):
        assert evaluate_strings(parse_path("//entry_name"),
                                sample.root) == ["CDC6_CAEEL"]

    def test_accession(self, sample):
        assert evaluate_strings(parse_path("//sprot_accession_number"),
                                sample.root) == ["Q17798"]

    def test_gene_names(self, sample):
        assert evaluate_strings(parse_path("//gene_name"),
                                sample.root) == ["cdc6"]

    def test_organism_period_stripped(self, sample):
        assert evaluate_strings(parse_path("//organism"),
                                sample.root) == ["Caenorhabditis elegans"]

    def test_db_references(self, sample):
        databases = evaluate_strings(parse_path("//db_reference/@database"),
                                     sample.root)
        assert databases == ["EMBL", "PROSITE"]
        ids = evaluate_strings(parse_path("//db_reference/@primary_id"),
                               sample.root)
        assert ids == ["AB012345", "PDOC00080"]

    def test_protein_sequence(self, sample):
        sequence = sample.root.first("db_entry").first("sequence")
        assert sequence.get("molecule_type") == "protein"
        assert sequence.get("length") == "561"
        assert sequence.text().startswith("MSTRSKRKLV")

    def test_keywords(self, sample):
        keywords = evaluate_strings(parse_path("//keyword"), sample.root)
        assert "Cell cycle" in keywords

    def test_validates_against_dtd(self, sample):
        parse_dtd(SPROT_DTD_TEXT).validate(sample)


class TestIdentityAndErrors:
    def test_entry_key_is_accession(self):
        entry = parse_entries(SAMPLE_ENTRY)[0]
        assert SprotTransformer().entry_key(entry) == "Q17798"

    def test_malformed_id_rejected(self):
        with pytest.raises(TransformError):
            SprotTransformer().transform_text(
                "ID   NO STRUCTURE AT ALL\nAC   Q1;\nDE   x\n//\n")

    def test_malformed_dr_rejected(self):
        text = ("ID   AAAA_HUMAN  STANDARD;  PRT;  10 AA.\nAC   Q00001;\n"
                "DE   x.\nDR   justoneword\n//\n")
        with pytest.raises(TransformError):
            SprotTransformer().transform_text(text)

    def test_gene_list_splitting(self):
        text = ("ID   AAAA_HUMAN  STANDARD;  PRT;  10 AA.\nAC   Q00001;\n"
                "DE   x.\nGN   abc1 OR abc2.\n//\n")
        doc = SprotTransformer().transform_text(text)[0]
        assert evaluate_strings(parse_path("//gene_name"),
                                doc.root) == ["abc1", "abc2"]

    def test_document_name_default(self):
        assert SprotTransformer().document_name() == "hlx_sprot.all"

    def test_cc_comment_lines_mapped(self):
        text = ("ID   AAAA_HUMAN  STANDARD;  PRT;  10 AA.\nAC   Q00001;\n"
                "DE   x.\nCC   -!- FUNCTION: does something\n"
                "CC       across two lines.\n//\n")
        doc = SprotTransformer().transform_text(text)[0]
        comments = evaluate_strings(parse_path("//comment"), doc.root)
        assert comments == ["FUNCTION: does something across two lines."]
