"""Unit tests for the flat-file line kit (paper Figure 3)."""

import pytest

from repro.errors import FlatFileError
from repro.flatfile import (
    CardinalityChecker,
    Line,
    LineSpec,
    parse_line,
    render_wrapped,
)
from repro.flatfile.lines import SEQUENCE_CODE, TERMINATOR


class TestParseLine:
    def test_code_and_data_split(self):
        line = parse_line("ID   1.14.17.3")
        assert line.code == "ID"
        assert line.data == "1.14.17.3"

    def test_terminator(self):
        assert parse_line("//").code == TERMINATOR

    def test_terminator_with_trailing_spaces(self):
        assert parse_line("//   ").code == TERMINATOR

    def test_sequence_continuation_line(self):
        line = parse_line("     aacgtt ggcatt 60")
        assert line.code == SEQUENCE_CODE
        assert line.data == "aacgtt ggcatt 60"

    def test_data_column_is_six(self):
        # columns 3-5 must be blank per Figure 3
        with pytest.raises(FlatFileError):
            parse_line("IDx  data")

    def test_short_line_rejected(self):
        with pytest.raises(FlatFileError):
            parse_line("I")

    def test_blank_in_code_rejected(self):
        with pytest.raises(FlatFileError):
            parse_line("I    data")

    def test_line_number_in_error(self):
        with pytest.raises(FlatFileError) as info:
            parse_line("I", line_number=42)
        assert "42" in str(info.value)

    def test_crlf_stripped(self):
        assert parse_line("DE   name.\r\n").data == "name."

    def test_code_only_line(self):
        line = parse_line("CC   ")
        assert line.code == "CC"
        assert line.data == ""


class TestRender:
    def test_render_fixed_columns(self):
        assert Line("ID", "1.1.1.1").render() == "ID   1.1.1.1"

    def test_render_terminator(self):
        assert Line(TERMINATOR, "").render() == "//"

    def test_render_parse_roundtrip(self):
        line = Line("DE", "Alcohol dehydrogenase.")
        assert parse_line(line.render()) == line

    def test_render_wrapped_respects_width(self):
        lines = render_wrapped("CA", "alpha beta gamma delta", width=11)
        assert all(len(line) - 5 <= 11 for line in lines)
        assert len(lines) == 2

    def test_render_wrapped_single_word_overflow_kept(self):
        lines = render_wrapped("CA", "x" * 100, width=10)
        assert len(lines) == 1

    def test_render_wrapped_empty(self):
        assert render_wrapped("CC", "") == ["CC"]


class TestLineSpec:
    def test_code_length_enforced(self):
        with pytest.raises(ValueError):
            LineSpec("IDX", "bad")

    def test_blank_code_rejected_except_sequence(self):
        with pytest.raises(ValueError):
            LineSpec("I ", "bad")
        LineSpec(SEQUENCE_CODE, "sequence data")  # allowed

    def test_bounds_sanity(self):
        with pytest.raises(ValueError):
            LineSpec("ID", "x", min_count=2, max_count=1)


class TestCardinalityChecker:
    SPECS = [
        LineSpec("ID", "id", min_count=1, max_count=1),
        LineSpec("DE", "description", min_count=1),
        LineSpec("AN", "alternates"),
    ]

    def check(self, lines):
        CardinalityChecker(self.SPECS).check(lines, "test entry")

    def test_valid_entry(self):
        self.check([Line("ID", "x"), Line("DE", "y"), Line("AN", "z")])

    def test_missing_required_line(self):
        with pytest.raises(FlatFileError):
            self.check([Line("DE", "y")])

    def test_too_many_of_bounded_line(self):
        with pytest.raises(FlatFileError):
            self.check([Line("ID", "x"), Line("ID", "x2"), Line("DE", "y")])

    def test_unknown_code_rejected(self):
        with pytest.raises(FlatFileError):
            self.check([Line("ID", "x"), Line("DE", "y"), Line("ZZ", "?")])

    def test_unbounded_line_accepts_many(self):
        self.check([Line("ID", "x"), Line("DE", "y")]
                   + [Line("AN", f"alt{i}") for i in range(50)])
