"""Unit tests for the flat-file writer."""

from repro.flatfile import (
    entry_from_pairs,
    parse_entries,
    render_entries,
    render_entry,
    write_entries,
)


class TestRendering:
    def test_render_entry_appends_terminator(self):
        entry = entry_from_pairs([("ID", "x"), ("DE", "y")])
        assert render_entry(entry) == "ID   x\nDE   y\n//\n"

    def test_render_entries_concatenates(self):
        entries = [entry_from_pairs([("ID", "a")]),
                   entry_from_pairs([("ID", "b")])]
        text = render_entries(entries)
        assert text.count("//\n") == 2

    def test_roundtrip_text(self):
        entries = [entry_from_pairs([("ID", "a"), ("DE", "desc."),
                                     ("AN", "alt one"), ("AN", "alt two")])]
        reparsed = parse_entries(render_entries(entries))
        assert reparsed == entries

    def test_write_entries_to_disk(self, tmp_path):
        path = tmp_path / "out.dat"
        count = write_entries(
            [entry_from_pairs([("ID", "a")])], path)
        assert count == 1
        assert parse_entries(path.read_text())[0].value("ID") == "a"
