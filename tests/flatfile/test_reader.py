"""Unit tests for the flat-file entry reader."""

import pytest

from repro.errors import FlatFileError
from repro.flatfile import parse_entries, read_entries

SAMPLE = """\
ID   1.1.1.1
DE   Alcohol dehydrogenase.
AN   Aldehyde reductase.
//
ID   1.1.1.2
DE   Second enzyme.
CA   First half of the reaction
CA   second half.
//
"""


class TestEntrySplitting:
    def test_entries_split_at_terminator(self):
        entries = parse_entries(SAMPLE)
        assert len(entries) == 2
        assert entries[0].value("ID") == "1.1.1.1"
        assert entries[1].value("ID") == "1.1.1.2"

    def test_terminator_not_included_in_lines(self):
        entries = parse_entries(SAMPLE)
        assert all(line.code != "//" for line in entries[0].lines)

    def test_blank_lines_between_entries_tolerated(self):
        entries = parse_entries("ID   a\n//\n\n\nID   b\n//\n")
        assert len(entries) == 2

    def test_blank_line_inside_entry_rejected(self):
        with pytest.raises(FlatFileError):
            parse_entries("ID   a\n\nDE   x\n//\n")

    def test_unterminated_final_entry_rejected(self):
        with pytest.raises(FlatFileError):
            parse_entries("ID   a\nDE   x\n")

    def test_terminator_without_entry_rejected(self):
        with pytest.raises(FlatFileError):
            parse_entries("//\n")

    def test_empty_input_yields_nothing(self):
        assert parse_entries("") == []


class TestEntryAccess:
    def entry(self):
        return parse_entries(SAMPLE)[1]

    def test_first_and_value(self):
        assert self.entry().value("DE") == "Second enzyme."
        assert self.entry().value("ZZ") is None

    def test_all_preserves_order(self):
        data = [line.data for line in self.entry().all("CA")]
        assert data == ["First half of the reaction", "second half."]

    def test_joined_reassembles_wrapped_value(self):
        assert self.entry().joined("CA") == (
            "First half of the reaction second half.")

    def test_codes_in_first_appearance_order(self):
        assert self.entry().codes() == ["ID", "DE", "CA"]


class TestFileReading:
    def test_read_entries_from_disk(self, tmp_path):
        path = tmp_path / "sample.dat"
        path.write_text(SAMPLE, encoding="utf-8")
        entries = read_entries(path)
        assert len(entries) == 2
