"""Tests for positional predicates ``[n]`` (order-as-data: range
predicates over document order, paper §2.2)."""

import pytest

from repro.errors import PathError
from repro.xmlkit import parse_document, parse_path
from repro.xmlkit.path import PositionPredicate, evaluate_strings
from repro.xquery import parse_query


class TestPathLayer:
    DOC = parse_document(
        "<r><n>one</n><n>two</n><m>mid</m><n>three</n></r>")

    def test_parse_positional(self):
        path = parse_path("/n[2]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, PositionPredicate)
        assert predicate.position == 2

    def test_zero_position_rejected(self):
        with pytest.raises(PathError):
            parse_path("/n[0]")

    def test_str_roundtrip(self):
        assert str(parse_path("//n[3]")) == "//n[3]"

    def test_tree_evaluation_same_tag_rank(self):
        # the m element between them does not shift n's ranks
        assert evaluate_strings(parse_path("/n[3]"), self.DOC.root) == [
            "three"]

    def test_tree_evaluation_miss(self):
        assert evaluate_strings(parse_path("/n[4]"), self.DOC.root) == []

    def test_combined_with_equality_predicate(self):
        doc = parse_document(
            '<r><x k="a">1</x><x k="a">2</x><x k="b">3</x></r>')
        values = evaluate_strings(parse_path('/x[@k = "a"][2]'), doc.root)
        assert values == ["2"]


class TestQueryLayer:
    @pytest.fixture
    def loaded(self, empty_warehouse):
        empty_warehouse.loader.store_document(
            "db", "c", "k", parse_document(
                "<r><item><v>a</v><v>b</v></item>"
                "<item><v>c</v></item></r>"))
        empty_warehouse.optimize()
        return empty_warehouse

    def test_positional_in_return_item(self, loaded):
        result = loaded.query(
            'FOR $a IN document("db.c")/r RETURN $a//item[1]/v')
        assert result.rows[0].values["v"] == ["a", "b"]

    def test_positional_in_where(self, loaded):
        result = loaded.query(
            'FOR $a IN document("db.c")/r/item '
            'WHERE $a/v[2] = "b" RETURN $a/v[1]')
        assert result.scalars("v") == ["a"]

    def test_query_parser_emits_position_predicate(self):
        query = parse_query(
            'FOR $a IN document("d")/r RETURN $a//x[2]')
        predicate = query.returns[0].value.path.steps[0].predicates[0]
        assert isinstance(predicate, PositionPredicate)

    def test_differential_with_native(self, loaded):
        from repro.baselines import NativeXmlStore
        from repro.xmlkit import parse_document as parse
        store = NativeXmlStore()
        store.add_document("db", "c", "k", parse(
            "<r><item><v>a</v><v>b</v></item><item><v>c</v></item></r>"))
        query = ('FOR $a IN document("db.c")/r/item '
                 'RETURN $a/v[2]')
        assert (sorted(loaded.query(query).scalars("v"))
                == sorted(store.query(query).scalars("v")) == ["b"])

    def test_shredded_tag_sib_ord_values(self, empty_warehouse):
        from repro.shredding import shred_document
        doc = parse_document("<r><n>1</n><m>x</m><n>2</n></r>")
        shredded = shred_document(doc, 1, "s", "c", "k")
        by_node = {row[1]: row for row in shredded.elements}
        # columns: ..., depth (7), tag_sib_ord (8)
        assert by_node[1][8] == 0   # first n
        assert by_node[2][8] == 0   # first m
        assert by_node[3][8] == 1   # second n
