"""Tests for the order-based BEFORE/AFTER operators (paper §2.2:
document order is preserved "for evaluation of order-based
functionalities of XQuery (such as BEFORE and AFTER operators)")."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xmlkit import parse_document
from repro.xquery import parse_query
from repro.xquery.ast import OrderCompare


class TestParsing:
    def test_before_parses(self):
        query = parse_query('FOR $a IN document("d")/r '
                            'WHERE $a//x BEFORE $a//y RETURN $a//x')
        condition = query.where
        assert isinstance(condition, OrderCompare)
        assert condition.op == "before"

    def test_after_parses(self):
        query = parse_query('FOR $a IN document("d")/r '
                            'WHERE $a//x AFTER $a//y RETURN $a//x')
        assert query.where.op == "after"

    def test_str_roundtrip(self):
        query = parse_query('FOR $a IN document("d")/r '
                            'WHERE $a//x BEFORE $a//y RETURN $a//x')
        assert parse_query(str(query)) == query

    def test_literal_operand_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('FOR $a IN document("d")/r '
                        'WHERE $a//x BEFORE "literal" RETURN $a//x')

    def test_combines_with_boolean_operators(self):
        query = parse_query(
            'FOR $a IN document("d")/r '
            'WHERE $a//x BEFORE $a//y AND contains($a, "k") RETURN $a//x')
        assert query.where is not None


DOC = ("<r><alpha>1</alpha><mid><beta>2</beta></mid>"
       "<gamma>3</gamma></r>")


@pytest.fixture
def loaded(empty_warehouse):
    empty_warehouse.loader.store_document(
        "db", "c", "k", parse_document(DOC))
    empty_warehouse.optimize()
    return empty_warehouse


class TestExecution:
    def run(self, warehouse, clause):
        return warehouse.query(
            f'FOR $a IN document("db.c")/r WHERE {clause} '
            f'RETURN $a//alpha')

    def test_before_in_document_order(self, loaded):
        assert len(self.run(loaded, "$a//alpha BEFORE $a//gamma")) == 1

    def test_before_violated(self, loaded):
        assert len(self.run(loaded, "$a//gamma BEFORE $a//alpha")) == 0

    def test_after(self, loaded):
        assert len(self.run(loaded, "$a//gamma AFTER $a//beta")) == 1
        assert len(self.run(loaded, "$a//alpha AFTER $a//beta")) == 0

    def test_nested_element_order(self, loaded):
        # beta (inside mid) precedes gamma in pre-order
        assert len(self.run(loaded, "$a//beta BEFORE $a//gamma")) == 1

    def test_parent_precedes_child_in_preorder(self, loaded):
        assert len(self.run(loaded, "$a//mid BEFORE $a//beta")) == 1

    def test_attribute_path_rejected(self, loaded):
        from repro.errors import TranslationError
        with pytest.raises(TranslationError):
            self.run(loaded, "$a//alpha/@id BEFORE $a//gamma")

    def test_negated_order_condition(self, loaded):
        assert len(self.run(
            loaded, "NOT ($a//gamma BEFORE $a//alpha)")) == 1


class TestCrossVariableOrder:
    def test_same_document_required(self, empty_warehouse):
        empty_warehouse.loader.store_document(
            "db", "c", "k1", parse_document("<r><x>1</x></r>"))
        empty_warehouse.loader.store_document(
            "db", "c", "k2", parse_document("<r><y>2</y></r>"))
        empty_warehouse.optimize()
        # x and y live in different documents: no order between them
        result = empty_warehouse.query(
            'FOR $a IN document("db.c")/r, $b IN document("db.c")/r '
            'WHERE $a//x BEFORE $b//y RETURN $a')
        assert len(result) == 0

    def test_rerooted_variables_share_document(self, empty_warehouse):
        empty_warehouse.loader.store_document(
            "db", "c", "k", parse_document(
                "<r><item><x>1</x></item><item><y>2</y></item></r>"))
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            'FOR $r IN document("db.c")/r, $i IN $r/item, $j IN $r/item '
            'WHERE $i/x BEFORE $j/y RETURN $i')
        assert len(result) == 1


def test_differential_with_native(warehouse, native_store):
    """BEFORE/AFTER agree between relational and native evaluation on
    the shared corpus."""
    query = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
             'WHERE $a//enzyme_description BEFORE $a//comment_list '
             'RETURN $a//enzyme_id')
    relational = sorted(warehouse.query(query).scalars("enzyme_id"))
    native = sorted(native_store.query(query).scalars("enzyme_id"))
    assert relational == native
    assert relational   # every entry has description before comment_list
