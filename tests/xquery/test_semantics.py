"""Unit tests for query semantic checks."""

import pytest

from repro.datahounds.sources.enzyme import EnzymeTransformer
from repro.errors import BindingError, UnknownDocumentError
from repro.xquery import check_query, parse_query


def check(text, documents=None, dtds=None):
    query = parse_query(text)
    document_exists = None
    if documents is not None:
        document_exists = lambda s, c: (s, c) in documents
    dtd_for_source = None
    if dtds is not None:
        dtd_for_source = dtds.get
    check_query(query, document_exists=document_exists,
                dtd_for_source=dtd_for_source)


class TestBindingChecks:
    def test_valid_query_passes(self):
        check('FOR $a IN document("d")/r RETURN $a//x')

    def test_duplicate_variable_rejected(self):
        with pytest.raises(BindingError):
            check('FOR $a IN document("d")/r, $a IN document("e")/r '
                  'RETURN $a//x')

    def test_unbound_variable_in_where_rejected(self):
        with pytest.raises(BindingError):
            check('FOR $a IN document("d")/r '
                  'WHERE contains($z, "k") RETURN $a//x')

    def test_unbound_variable_in_return_rejected(self):
        with pytest.raises(BindingError):
            check('FOR $a IN document("d")/r RETURN $z//x')

    def test_context_variable_must_be_bound_before_use(self):
        with pytest.raises(BindingError):
            check('FOR $b IN $a//x, $a IN document("d")/r RETURN $b')

    def test_context_chain_accepted(self):
        check('FOR $a IN document("d")/r, $b IN $a//item RETURN $b//x')


class TestDocumentChecks:
    DOCS = {("hlx_enzyme", "DEFAULT")}

    def test_known_document_passes(self):
        check('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
              'RETURN $a//enzyme_id', documents=self.DOCS)

    def test_unknown_document_rejected(self):
        with pytest.raises(UnknownDocumentError):
            check('FOR $a IN document("nope.DEFAULT")/x RETURN $a//y',
                  documents=self.DOCS)


class TestDtdChecks:
    DTDS = {"hlx_enzyme": EnzymeTransformer.dtd}

    def test_names_in_dtd_pass(self):
        check('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
              'WHERE contains($a//catalytic_activity, "k") '
              'RETURN $a//enzyme_id', dtds=self.DTDS)

    def test_unknown_element_name_rejected(self):
        with pytest.raises(BindingError):
            check('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                  'RETURN $a//not_a_real_element', dtds=self.DTDS)

    def test_unknown_predicate_target_rejected(self):
        with pytest.raises(BindingError):
            check('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                  'WHERE $a//reference[@zzz = "1"] = "x" '
                  'RETURN $a//enzyme_id', dtds=self.DTDS)

    def test_attribute_names_checked(self):
        check('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
              'RETURN $a//reference/@swissprot_accession_number',
              dtds=self.DTDS)

    def test_source_without_dtd_skipped(self):
        check('FOR $a IN document("unknown_source")/whatever '
              'RETURN $a//anything', dtds=self.DTDS)

    def test_wildcard_steps_always_pass(self):
        check('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
              'RETURN $a//*', dtds=self.DTDS)
