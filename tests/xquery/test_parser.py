"""Unit tests for the XomatiQ query parser."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Compare,
    Contains,
    LiteralOperand,
    parse_query,
)


def q(where: str = "", returns: str = "$a//x",
      bindings: str = '$a IN document("db.c")/root') -> str:
    text = f"FOR {bindings}\n"
    if where:
        text += f"WHERE {where}\n"
    return text + f"RETURN {returns}"


class TestBindings:
    def test_document_binding_split(self):
        query = parse_query(q())
        binding = query.bindings[0]
        assert binding.document.source == "db"
        assert binding.document.collection == "c"
        assert str(binding.path) == "/root"

    def test_document_without_collection(self):
        query = parse_query(q(bindings='$a IN document("db")/root'))
        assert query.bindings[0].document.collection is None

    def test_document_with_dotted_collection(self):
        query = parse_query(
            q(bindings='$a IN document("hlx_embl.inv")/hlx_n_sequence'))
        assert query.bindings[0].document.source == "hlx_embl"
        assert query.bindings[0].document.collection == "inv"

    def test_multiple_bindings(self):
        query = parse_query(q(
            bindings='$a IN document("d1")/r, $b IN document("d2")/r'))
        assert query.variables() == ["a", "b"]

    def test_variable_rooted_binding(self):
        query = parse_query(q(
            bindings='$a IN document("d")/r, $b IN $a//item'))
        assert query.bindings[1].context_var == "a"

    def test_binding_without_path(self):
        query = parse_query(q(bindings='$a IN document("d")'))
        assert query.bindings[0].path is None

    def test_let_accepted_as_for(self):
        query = parse_query('LET $a IN document("d")/r RETURN $a//x')
        assert query.variables() == ["a"]


class TestConditions:
    def test_contains_node_scope_default(self):
        query = parse_query(q('contains($a//x, "kw")'))
        condition = query.where
        assert isinstance(condition, Contains)
        assert condition.scope == "node"
        assert condition.phrase == "kw"

    def test_contains_any_scope(self):
        condition = parse_query(q('contains($a, "kw", any)')).where
        assert condition.scope == "any"

    def test_contains_proximity_window(self):
        condition = parse_query(q('contains($a, "kw", 5)')).where
        assert condition.scope == 5

    def test_comparison_path_to_literal(self):
        condition = parse_query(q('$a//x = "v"')).where
        assert isinstance(condition, Compare)
        assert isinstance(condition.right, LiteralOperand)

    def test_comparison_numeric_literal(self):
        condition = parse_query(q("$a//x > 100")).where
        assert condition.right.is_numeric
        assert condition.right.value == 100.0

    def test_comparison_path_to_path(self):
        condition = parse_query(q(
            "$a//x = $a//y")).where
        assert not isinstance(condition.right, LiteralOperand)

    def test_and_or_not_nesting(self):
        condition = parse_query(q(
            'contains($a, "k1") AND (contains($a, "k2") '
            'OR NOT contains($a, "k3"))')).where
        assert isinstance(condition, BoolAnd)
        assert isinstance(condition.items[1], BoolOr)
        assert isinstance(condition.items[1].items[1], BoolNot)

    def test_attribute_path_in_condition(self):
        condition = parse_query(q('$a//x/@id = "7"')).where
        assert condition.left.path.is_attribute_path

    def test_step_predicate_in_condition(self):
        condition = parse_query(q(
            '$a//qualifier[@qualifier_type = "EC_number"] = $a//y')).where
        step = condition.left.path.steps[0]
        assert step.predicates[0].value == "EC_number"


class TestReturns:
    def test_bare_paths(self):
        query = parse_query(q(returns="$a//x, $a//y"))
        assert [item.output_name for item in query.returns] == ["x", "y"]

    def test_aliased_items(self):
        query = parse_query(q(returns="$Label = $a//x"))
        assert query.returns[0].alias == "Label"
        assert query.returns[0].output_name == "Label"

    def test_attribute_item_name(self):
        query = parse_query(q(returns="$a//x/@id"))
        assert query.returns[0].output_name == "@id"

    def test_whole_variable_return(self):
        query = parse_query(q(returns="$a"))
        assert query.returns[0].value.path is None


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "RETURN $a//x",                                     # no FOR
        'FOR $a IN document("d")/r',                        # no RETURN
        'FOR $a document("d")/r RETURN $a',                 # missing IN
        'FOR $a IN notdocument("d") RETURN $a',             # bad origin
        'FOR $a IN document(d)/r RETURN $a',                # unquoted name
        'FOR $a IN document("d")/r WHERE $a//x RETURN $a',  # dangling operand
        'FOR $a IN document("d")/r WHERE contains($a) RETURN $a',
        'FOR $a IN document("d")/r RETURN $a//x extra',     # trailing junk
        'FOR $a IN document("d")/r WHERE contains($a, "k", maybe) RETURN $a',
    ])
    def test_rejected(self, bad):
        with pytest.raises(XQuerySyntaxError):
            parse_query(bad)

    def test_attribute_mid_binding_path_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('FOR $a IN document("d")/r/@x/y RETURN $a')


class TestRoundTrip:
    def test_str_reparses_equal(self):
        text = q('contains($a//x, "kw") AND $a//y/@id = "7"',
                 returns="$Out = $a//x, $a//y")
        query = parse_query(text)
        assert parse_query(str(query)) == query
