"""Tests for element constructors in RETURN clauses.

The paper (§1.1/§3): "the return clause can construct new XML element
as output of the query".
"""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xmlkit import parse_document
from repro.xquery import parse_query
from repro.xquery.ast import Constructor, VarPath


class TestParsing:
    def query(self, returns):
        return parse_query(f'FOR $a IN document("d")/r RETURN {returns}')

    def test_empty_element(self):
        item = self.query("<marker/>").returns[0]
        assert isinstance(item.constructor, Constructor)
        assert item.constructor.tag == "marker"
        assert item.output_name == "marker"

    def test_static_attributes(self):
        constructor = self.query('<hit kind="join"/>').returns[0].constructor
        assert constructor.attributes == (("kind", "join"),)

    def test_embedded_expression_child(self):
        constructor = self.query(
            "<out>{ $a//x }</out>").returns[0].constructor
        child = constructor.children[0]
        assert isinstance(child, VarPath)
        assert str(child.path) == "//x"

    def test_embedded_expression_attribute_brace_form(self):
        constructor = self.query(
            "<out id={ $a//x }/>").returns[0].constructor
        assert isinstance(constructor.attributes[0][1], VarPath)

    def test_embedded_expression_attribute_quoted_form(self):
        constructor = self.query(
            '<out id="{ $a//x }"/>').returns[0].constructor
        assert isinstance(constructor.attributes[0][1], VarPath)

    def test_nested_constructors(self):
        constructor = self.query(
            "<out><inner>{ $a//x }</inner><flag/></out>"
        ).returns[0].constructor
        assert len(constructor.children) == 2
        assert constructor.children[0].tag == "inner"

    def test_varpaths_in_document_order(self):
        constructor = self.query(
            '<out a={ $a//p }><c>{ $a//q }</c>{ $a//r }</out>'
        ).returns[0].constructor
        paths = [str(v.path) for v in constructor.varpaths()]
        assert paths == ["//p", "//q", "//r"]

    def test_mismatched_tags_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            self.query("<out>{ $a//x }</wrong>")

    def test_unclosed_constructor_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            self.query("<out>{ $a//x }")

    def test_bare_text_content_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            self.query("<out>plain words</out>")

    def test_mixes_with_plain_items(self):
        query = self.query("$a//x, <out>{ $a//y }</out>")
        assert query.returns[0].value is not None
        assert query.returns[1].constructor is not None


DOC = ("<r><item><name>alpha</name><score>10</score></item>"
       "<item><name>beta</name><score>20</score></item></r>")


@pytest.fixture
def loaded(empty_warehouse):
    empty_warehouse.loader.store_document("db", "c", "k",
                                          parse_document(DOC))
    empty_warehouse.optimize()
    return empty_warehouse


class TestExecution:
    QUERY = ('FOR $a IN document("db.c")/r/item '
             'RETURN <hit rank="x" score={ $a/score }>'
             '<who>{ $a/name }</who></hit>')

    def test_one_element_per_row(self, loaded):
        result = loaded.query(self.QUERY)
        assert result.columns == ["hit"]
        assert len(result) == 2
        for row in result:
            assert row.elements["hit"].tag == "hit"

    def test_attribute_values_filled(self, loaded):
        result = loaded.query(self.QUERY)
        scores = sorted(row.elements["hit"].get("score") for row in result)
        assert scores == ["10", "20"]
        assert all(row.elements["hit"].get("rank") == "x"
                   for row in result)

    def test_spliced_children_keep_element_names(self, loaded):
        result = loaded.query(self.QUERY)
        who = result.rows[0].elements["hit"].first("who")
        assert who.first("name") is not None

    def test_result_xml_embeds_constructed_elements(self, loaded):
        xml = loaded.query(self.QUERY).to_xml()
        assert "<hit" in xml and "</hit>" in xml
        parse_document(xml)   # well-formed

    def test_table_view_shows_compact_xml(self, loaded):
        table = loaded.query(self.QUERY).to_table()
        assert "<hit" in table

    def test_missing_values_yield_empty_splice(self, loaded):
        result = loaded.query(
            'FOR $a IN document("db.c")/r/item '
            'RETURN <out>{ $a/nonexistent }</out>')
        for row in result:
            assert row.elements["out"].children == []

    def test_differential_with_native(self, loaded):
        from repro.baselines import NativeXmlStore
        store = NativeXmlStore()
        store.add_document("db", "c", "k", parse_document(DOC))
        rel = sorted(loaded.query(self.QUERY).scalars("hit"))
        nat = sorted(store.query(self.QUERY).scalars("hit"))
        assert rel == nat
