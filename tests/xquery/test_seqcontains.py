"""Tests for the seqcontains() motif-search extension.

The paper separates sequence from non-sequence data because "types of
queries posed on DNA or protein sequences are generally different" —
motif search is that query class, and it runs entirely against the
``sequences`` table.
"""

import pytest

from repro.errors import TranslationError, XQuerySyntaxError
from repro.translator.compile import motif_to_like
from repro.xmlkit import parse_document
from repro.xquery import parse_query
from repro.xquery.ast import SeqContains


class TestParsing:
    def test_basic_form(self):
        query = parse_query('FOR $a IN document("d")/r '
                            'WHERE seqcontains($a//sequence, "ACGT") '
                            'RETURN $a//x')
        condition = query.where
        assert isinstance(condition, SeqContains)
        assert condition.motif == "ACGT"

    def test_empty_motif_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('FOR $a IN document("d")/r '
                        'WHERE seqcontains($a//sequence, "") RETURN $a//x')

    def test_unquoted_motif_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('FOR $a IN document("d")/r '
                        'WHERE seqcontains($a//sequence, ACGT) '
                        'RETURN $a//x')

    def test_str_roundtrip(self):
        text = ('FOR $a IN document("d")/r '
                'WHERE seqcontains($a//sequence, "ac.ta") RETURN $a//x')
        assert parse_query(str(parse_query(text))) == parse_query(text)


class TestMotifTranslation:
    def test_literal_motif(self):
        assert motif_to_like("ACGT") == "%ACGT%"

    def test_dot_wildcard(self):
        assert motif_to_like("AC.T") == "%AC_T%"

    def test_like_metacharacters_rejected(self):
        with pytest.raises(TranslationError):
            motif_to_like("AC%T")
        with pytest.raises(TranslationError):
            motif_to_like("AC_T")


DOCS = [
    ("k1", '<r><name>alpha</name>'
           '<sequence length="12">aacgttacgtaa</sequence></r>'),
    ("k2", '<r><name>beta</name>'
           '<sequence length="8">ggggcccc</sequence></r>'),
    ("k3", '<r><name>gamma</name>'
           '<sequence length="10">AACGTTACGT</sequence></r>'),
]


@pytest.fixture
def loaded(empty_warehouse):
    for key, text in DOCS:
        empty_warehouse.loader.store_document(
            "db", "c", key, parse_document(text))
    empty_warehouse.optimize()
    return empty_warehouse


class TestExecution:
    def run(self, warehouse, motif):
        return warehouse.query(
            f'FOR $a IN document("db.c")/r '
            f'WHERE seqcontains($a//sequence, "{motif}") '
            f'RETURN $a//name')

    def test_literal_match(self, loaded):
        assert sorted(self.run(loaded, "acgtt").scalars("name")) == [
            "alpha", "gamma"]

    def test_case_insensitive(self, loaded):
        assert sorted(self.run(loaded, "ACGTT").scalars("name")) == [
            "alpha", "gamma"]

    def test_wildcard_position(self, loaded):
        # a.gt matches acgt (alpha, gamma); gg.c matches ggggcccc? g-g-g-c
        assert sorted(self.run(loaded, "a.gtt").scalars("name")) == [
            "alpha", "gamma"]
        assert self.run(loaded, "gg.cc").scalars("name") == ["beta"]

    def test_no_match(self, loaded):
        assert len(self.run(loaded, "tttttttt")) == 0

    def test_motif_not_found_in_annotations(self, loaded):
        # "alpha" appears in a name element, not in any sequence
        assert len(self.run(loaded, "alpha")) == 0

    def test_combined_with_keyword_condition(self, loaded):
        result = loaded.query(
            'FOR $a IN document("db.c")/r '
            'WHERE seqcontains($a//sequence, "acgtt") '
            '  AND contains($a//name, "alpha") '
            'RETURN $a//name')
        assert result.scalars("name") == ["alpha"]

    def test_attribute_target_rejected(self, loaded):
        with pytest.raises(TranslationError):
            loaded.query('FOR $a IN document("db.c")/r '
                         'WHERE seqcontains($a//sequence/@length, "x") '
                         'RETURN $a//name')


def test_differential_on_corpus(warehouse, native_store):
    query = ('FOR $a IN document("hlx_embl.inv")/hlx_n_sequence '
             'WHERE seqcontains($a//sequence, "acg.ac") '
             'RETURN $a//embl_accession_number')
    relational = sorted(warehouse.query(query).scalars(
        "embl_accession_number"))
    native = sorted(native_store.query(query).scalars(
        "embl_accession_number"))
    assert relational == native
