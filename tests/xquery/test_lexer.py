"""Unit tests for the XomatiQ query lexer."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestTokens:
    def test_variables(self):
        assert kinds("$a $long_name") == [("var", "a"), ("var", "long_name")]

    def test_keywords_case_insensitive(self):
        assert kinds("FOR for For") == [("keyword", "for")] * 3

    def test_strings_both_quotes(self):
        assert kinds('"x" \'y\'') == [("string", "x"), ("string", "y")]

    def test_path_symbols(self):
        values = [v for __, v in kinds("//a/b[@c]")]
        assert values == ["//", "a", "/", "b", "[", "@", "c", "]"]

    def test_comparison_operators(self):
        values = [v for k, v in kinds("= != < <= > >=") if k == "symbol"]
        assert values == ["=", "!=", "<", "<=", ">", ">="]

    def test_numbers(self):
        assert kinds("5 2.5") == [("number", "5"), ("number", "2.5")]

    def test_names_vs_keywords(self):
        assert kinds("enzyme_id") == [("name", "enzyme_id")]

    def test_braces_are_symbols(self):
        assert kinds("{ $a }") == [("symbol", "{"), ("var", "a"),
                                   ("symbol", "}")]

    def test_document_and_contains_are_keywords(self):
        assert kinds("document contains any") == [
            ("keyword", "document"), ("keyword", "contains"),
            ("keyword", "any")]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(XQuerySyntaxError):
            tokenize('"open')

    def test_bare_dollar(self):
        with pytest.raises(XQuerySyntaxError):
            tokenize("$ x")

    def test_unknown_character(self):
        with pytest.raises(XQuerySyntaxError):
            tokenize("FOR $a ; RETURN")

    def test_error_carries_offset(self):
        with pytest.raises(XQuerySyntaxError) as info:
            tokenize("abc ^")
        assert info.value.position == 4
