"""Differential testing: the relational path (both backends) must agree
with the native-XML tree evaluator on a battery of queries."""

import pytest

QUERIES = [
    # keyword, any scope
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE contains($a, "copper", any) RETURN $a//enzyme_id''',
    # keyword, node scope
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE contains($a//catalytic_activity, "ketone")
       RETURN $a//enzyme_id''',
    # sub-tree keyword on a list container
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE contains($a//comment_list, "substrates")
       RETURN $a//enzyme_id''',
    # attribute equality via step predicate + cross-db join
    '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
        $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
       WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
       RETURN $a//embl_accession_number, $b//enzyme_description''',
    # numeric range on an attribute-derived element value
    '''FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
       WHERE $a//sequence/@length > 400 RETURN $a//entry_name''',
    # attribute return item
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE contains($a//enzyme_description, "synthase")
       RETURN $a//reference/@swissprot_accession_number''',
    # disjunction
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE contains($a//catalytic_activity, "ketone")
          OR contains($a//catalytic_activity, "alcohol")
       RETURN $a//enzyme_id''',
    # negation
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE contains($a//enzyme_description, "synthase")
         AND NOT contains($a//cofactor_list, "copper")
       RETURN $a//enzyme_id''',
    # two keyword conditions over two databases (cross product)
    '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
        $b IN document("hlx_sprot.all")/hlx_n_sequence
       WHERE contains($a, "cdc6", any) AND contains($b, "cdc6", any)
       RETURN $a//embl_accession_number, $b//sprot_accession_number''',
    # variable re-rooted on another variable
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme,
        $r IN $a//reference
       RETURN $r/@swissprot_accession_number''',
    # equality against a string literal
    '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
       WHERE $a//division = "inv" RETURN $a//entry_name''',
    # wildcard step
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE contains($a//catalytic_activity, "ketone")
       RETURN $a/db_entry/enzyme_id''',
    # positional predicate
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE contains($a//enzyme_description, "synthase")
       RETURN $a//alternate_name[1]''',
    # order operators
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE $a//enzyme_description BEFORE $a//swissprot_reference_list
         AND contains($a, "copper", any)
       RETURN $a//enzyme_id''',
    # sequence motif search
    '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
       WHERE seqcontains($a//sequence, "acg.ta")
       RETURN $a//embl_accession_number''',
    # disease join (OMIM source)
    '''FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
        $d IN document("hlx_omim.DEFAULT")/hlx_disease/db_entry
       WHERE $e//disease/@mim_id = $d/mim_id
       RETURN $e//enzyme_id, $d//title''',
    # element constructor
    '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
       WHERE contains($a//catalytic_activity, "ketone")
       RETURN <hit ec={ $a//enzyme_id }>
                <what>{ $a//enzyme_description }</what>
              </hit>''',
    # document-wide source query (no collection)
    '''FOR $a IN document("hlx_embl")/hlx_n_sequence
       WHERE $a//sequence/@length > 1500
       RETURN $a//entry_name''',
]


def canonical(result):
    """Order-insensitive canonical form of a query result."""
    return sorted(
        tuple(sorted((column, tuple(values))
                     for column, values in row.values.items()))
        for row in result.rows)


@pytest.mark.parametrize("query_text", QUERIES,
                         ids=[f"q{i}" for i in range(len(QUERIES))])
def test_relational_agrees_with_native(query_text, warehouse, native_store):
    relational = warehouse.query(query_text)
    native = native_store.query(query_text)
    assert canonical(relational) == canonical(native)


def test_battery_is_not_vacuous(warehouse):
    """At least half the battery queries return rows on the test corpus
    (all-empty agreement would prove nothing)."""
    non_empty = sum(
        1 for text in QUERIES if len(warehouse.query(text)) > 0)
    assert non_empty >= len(QUERIES) // 2
