"""End-to-end reproductions of the paper's figures (see DESIGN.md §4.1).

Each test exercises the exact artifact a figure shows, over both
relational backends (via the ``warehouse`` fixture).
"""

import pytest

from repro.datahounds import DataHound, InMemoryRepository
from repro.datahounds.sources.enzyme import (
    ENZYME_DTD_TEXT,
    EnzymeTransformer,
    SAMPLE_ENTRY,
)
from repro.engine import Warehouse
from repro.shredding import reconstruct_by_entry
from repro.xmlkit import parse_dtd

FIG8 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
     $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains ($a, "cdc6", any)
AND   contains ($b, "cdc6", any)
RETURN
     $b//sprot_accession_number,
     $a//embl_accession_number'''

FIG9 = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id,
       $a//enzyme_description'''

FIG11 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description'''


class TestFigure1Pipeline:
    """Figure 1: raw data → XML → relational, through the hound."""

    def test_full_pipeline(self, backend, corpus):
        warehouse = Warehouse(backend=backend)
        repository = InMemoryRepository()
        corpus.publish_to(repository, "r1")
        hound = warehouse.connect(repository)
        for source in ("hlx_enzyme", "hlx_embl", "hlx_sprot"):
            report = hound.load(source)
            assert report.documents_loaded == corpus.sizes()[source]
        for name in ("hlx_embl.inv", "hlx_enzyme.DEFAULT",
                     "hlx_sprot.all"):
            assert name in warehouse.document_names()


class TestFigures2To6EnzymeExample:
    """Figures 2-6: the ENZYME worked example (detailed assertions in
    tests/datahounds/test_enzyme.py; here the warehouse-level view)."""

    def test_sample_entry_loads_and_reconstructs(self, backend):
        warehouse = Warehouse(backend=backend)
        warehouse.load_text("hlx_enzyme", SAMPLE_ENTRY)
        rebuilt = reconstruct_by_entry(warehouse.backend, "hlx_enzyme",
                                       "1.14.17.3")
        expected = EnzymeTransformer().transform_text(SAMPLE_ENTRY)[0]
        assert rebuilt.root == expected.root

    def test_figure5_dtd_shown_by_warehouse(self, backend):
        warehouse = Warehouse(backend=backend)
        tree = warehouse.dtd_tree("hlx_enzyme")
        rendered = tree.render()
        for name in ("db_entry", "enzyme_id", "swissprot_reference_list",
                     "disease_list"):
            assert name in rendered
        parse_dtd(ENZYME_DTD_TEXT)  # Figure 5 text itself is a valid DTD


class TestFigure8KeywordQuery:
    def test_runs_and_returns_both_accessions(self, warehouse):
        result = warehouse.query(FIG8)
        assert result.columns == ["sprot_accession_number",
                                  "embl_accession_number"]
        assert len(result) > 0
        for row in result:
            assert row.values["sprot_accession_number"]
            assert row.values["embl_accession_number"]

    def test_is_cross_product_of_matching_documents(self, warehouse):
        result = warehouse.query(FIG8)
        embl_docs = {row.bindings["a"].doc_id for row in result}
        sprot_docs = {row.bindings["b"].doc_id for row in result}
        assert len(result) == len(embl_docs) * len(sprot_docs)


class TestFigure9SubtreeQuery:
    def test_runs_with_expected_shape(self, warehouse):
        result = warehouse.query(FIG9)
        assert result.columns == ["enzyme_id", "enzyme_description"]
        assert len(result) > 0

    def test_keyword_scoped_to_catalytic_activity(self, warehouse):
        # every hit really has ketone in a catalytic_activity element
        result = warehouse.query(FIG9)
        for row in result:
            doc = warehouse.fetch_document(row.bindings["a"])
            activities = " ".join(
                e.full_text().lower()
                for e in doc.root.iter("catalytic_activity"))
            assert "ketone" in activities

    def test_figure7b_click_through_to_document(self, warehouse):
        result = warehouse.query(FIG9)
        xml = warehouse.fetch_document_xml(result.rows[0], "a")
        assert xml.startswith("<?xml")
        assert "<hlx_enzyme>" in xml


class TestFigures10To12JoinQuery:
    def test_join_runs(self, warehouse):
        result = warehouse.query(FIG11)
        assert result.columns == ["Accession_Number",
                                  "Accession_Description"]
        assert len(result) > 0

    def test_join_correlation_is_real(self, warehouse, corpus):
        # every returned EMBL entry carries an EC_number matching a
        # loaded ENZYME id
        result = warehouse.query(FIG11)
        ec_pool = set(corpus.ec_numbers)
        for row in result:
            doc = warehouse.fetch_document(row.bindings["a"])
            qualifiers = {
                e.full_text() for e in doc.root.iter("qualifier")
                if e.get("qualifier_type") == "EC_number"}
            assert qualifiers & ec_pool

    def test_figure12_result_views(self, warehouse):
        result = warehouse.query(FIG11)
        table = result.to_table()
        assert "Accession_Number" in table
        xml = result.to_xml()
        assert "<xomatiq_results" in xml
        assert "<Accession_Number>" in xml
