"""CLI integration tests (in-process invocation of repro.cli.main)."""

import pytest

from repro.cli import main


@pytest.fixture
def corpus_dir(tmp_path, corpus):
    out = tmp_path / "corpus"
    out.mkdir()
    (out / "enzyme.dat").write_text(corpus.enzyme_text, encoding="utf-8")
    (out / "embl.dat").write_text(corpus.embl_text, encoding="utf-8")
    return out


class TestCliWorkflow:
    def test_init_creates_database(self, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        assert main(["init", "--db", str(db)]) == 0
        assert db.exists()

    def test_load_and_query(self, tmp_path, corpus_dir, capsys):
        db = str(tmp_path / "wh.sqlite")
        assert main(["init", "--db", db]) == 0
        assert main(["load", "--db", db, "--source", "hlx_enzyme",
                     str(corpus_dir / "enzyme.dat")]) == 0
        assert main([
            "query", "--db", db,
            'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
            'WHERE contains($a//catalytic_activity, "ketone") '
            'RETURN $a//enzyme_id']) == 0
        out = capsys.readouterr().out
        assert "enzyme_id" in out
        assert "row(s)" in out

    def test_query_xml_output(self, tmp_path, corpus_dir, capsys):
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        main(["load", "--db", db, "--source", "hlx_enzyme",
              str(corpus_dir / "enzyme.dat")])
        main(["query", "--db", db, "--xml",
              'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
              'RETURN $a//enzyme_id'])
        assert "<xomatiq_results" in capsys.readouterr().out

    def test_translate_shows_sql(self, tmp_path, corpus_dir, capsys):
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        main(["load", "--db", db, "--source", "hlx_enzyme",
              str(corpus_dir / "enzyme.dat")])
        main(["translate", "--db", db,
              'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
              'RETURN $a//enzyme_id'])
        out = capsys.readouterr().out
        assert "SELECT DISTINCT" in out
        assert "FROM documents" in out

    def test_synth_writes_corpus(self, tmp_path, capsys):
        out_dir = tmp_path / "synth"
        assert main(["synth", "--out", str(out_dir), "--seed", "3",
                     "--enzyme", "5", "--embl", "5", "--sprot", "5"]) == 0
        assert (out_dir / "enzyme.dat").exists()
        assert (out_dir / "embl.dat").exists()
        assert (out_dir / "sprot.dat").exists()

    def test_dtd_rendering(self, capsys):
        assert main(["dtd", "--source", "hlx_enzyme"]) == 0
        out = capsys.readouterr().out
        assert "hlx_enzyme" in out
        assert "enzyme_id" in out

    def test_sources_listing(self, capsys):
        assert main(["sources"]) == 0
        out = capsys.readouterr().out
        for name in ("hlx_enzyme", "hlx_embl", "hlx_sprot"):
            assert name in out

    def test_query_error_reported_cleanly(self, tmp_path, capsys):
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        code = main(["query", "--db", db, "NOT A QUERY AT ALL"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_source_reported_cleanly(self, tmp_path, corpus_dir,
                                             capsys):
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        code = main(["load", "--db", db, "--source", "nope",
                     str(corpus_dir / "enzyme.dat")])
        assert code == 1


class TestCliProfile:
    QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
             'WHERE contains($a//catalytic_activity, "ketone") '
             'RETURN $a//enzyme_id')

    def test_profile_against_db(self, tmp_path, corpus_dir, capsys):
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        main(["load", "--db", db, "--source", "hlx_enzyme",
              str(corpus_dir / "enzyme.dat")])
        assert main(["profile", "--db", db, self.QUERY]) == 0
        out = capsys.readouterr().out
        for stage in ("parse", "check", "compile", "execute", "tag"):
            assert stage in out
        assert "plan:" in out

    def test_profile_synth_minidb_with_json(self, tmp_path, capsys):
        import json
        out_json = tmp_path / "profile.json"
        assert main(["profile", "--synth", "--backend", "minidb",
                     "--json", str(out_json), self.QUERY]) == 0
        printed = capsys.readouterr().out
        assert "profile [minidb]" in printed
        data = json.loads(out_json.read_text(encoding="utf-8"))
        assert data["format"] == "xomatiq-profile/1"
        assert data["profiles"][0]["backend"] == "minidb"
        assert data["profiles"][0]["stages"]["execute"] >= 0

    def test_profile_without_target_errors(self, capsys):
        assert main(["profile", self.QUERY]) == 2
        assert "provide --db or --synth" in capsys.readouterr().err


class TestCliMetricsAndHealth:
    QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
             'WHERE contains($a//catalytic_activity, "ketone") '
             'RETURN $a//enzyme_id')

    @pytest.fixture
    def loaded_db(self, tmp_path, corpus_dir):
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        main(["load", "--db", db, "--source", "hlx_enzyme",
              str(corpus_dir / "enzyme.dat")])
        return db

    def test_metrics_json_after_query(self, loaded_db, capsys):
        import json
        assert main(["metrics", "--db", loaded_db, self.QUERY]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        counters = {(c["name"], tuple(sorted(c["labels"].items()))):
                    c["value"] for c in snapshot["counters"]}
        assert counters[("query.total", (("backend", "sqlite"),))] == 1
        histograms = [h["name"] for h in snapshot["histograms"]]
        assert "query.seconds" in histograms

    def test_metrics_prometheus_parses(self, loaded_db, capsys):
        from tests.obs.test_metrics import parse_prometheus
        assert main(["metrics", "--db", loaded_db,
                     "--format", "prometheus", self.QUERY]) == 0
        types, samples = parse_prometheus(capsys.readouterr().out)
        assert types["xomatiq_query_total"] == "counter"
        assert types["xomatiq_query_seconds"] == "histogram"
        assert "xomatiq_query_seconds_bucket" in samples

    def test_metrics_without_query_dumps_load_counters(self, tmp_path,
                                                       corpus_dir,
                                                       capsys):
        import json
        assert main(["metrics", "--synth"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        names = {c["name"] for c in snapshot["counters"]}
        assert "load.documents" in names

    def test_metrics_without_target_errors(self, capsys):
        assert main(["metrics", self.QUERY]) == 2
        assert "provide --db or --synth" in capsys.readouterr().err

    def test_health_ok_on_loaded_db(self, loaded_db, capsys):
        assert main(["health", "--db", loaded_db]) == 0
        out = capsys.readouterr().out
        assert out.startswith("health: OK")
        assert "keyword_index_populated" in out

    def test_health_json(self, loaded_db, capsys):
        import json
        assert main(["health", "--db", loaded_db, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "ok"
        assert report["stats"]["documents"] > 0

    def test_health_warns_on_empty_db(self, tmp_path, capsys):
        """Empty warehouse is degraded-but-truthful: exit 2 (warn),
        not 1 (fail) — monitoring treats the two differently."""
        db = str(tmp_path / "empty.sqlite")
        main(["init", "--db", db])
        assert main(["health", "--db", db]) == 2
        assert "health: WARN" in capsys.readouterr().out

    def test_health_fails_on_structural_breakage(self, loaded_db,
                                                 capsys):
        """A populated warehouse whose keyword index was wiped would
        silently answer keyword queries with nothing — that is a
        wrong-answer condition, so health reports FAIL and exits 1."""
        import sqlite3
        connection = sqlite3.connect(loaded_db)
        connection.execute("DELETE FROM keywords")
        connection.commit()
        connection.close()
        assert main(["health", "--db", loaded_db]) == 1
        out = capsys.readouterr().out
        assert "health: FAIL" in out
        assert "keyword_index_populated" in out

    def test_stats_json(self, loaded_db, capsys):
        import json
        assert main(["stats", "--db", loaded_db, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["documents"] > 0
        assert "documents:hlx_enzyme" in stats


class TestCliHarvest:
    @pytest.fixture
    def mirror(self, tmp_path, corpus):
        from repro.datahounds import DirectoryRepository
        repo = DirectoryRepository(tmp_path / "mirror")
        corpus.publish_to(repo, "r1")
        return tmp_path / "mirror"

    def test_harvest_loads_every_source(self, tmp_path, mirror, capsys):
        db = str(tmp_path / "wh.sqlite")
        assert main(["init", "--db", db]) == 0
        assert main(["harvest", "--db", db, "--repo", str(mirror),
                     "--retries", "3"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out
        assert main(["stats", "--db", db]) == 0
        assert "documents:hlx_enzyme" in capsys.readouterr().out

    def test_harvest_single_source(self, tmp_path, mirror, capsys):
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        assert main(["harvest", "--db", db, "--repo", str(mirror),
                     "--source", "hlx_enzyme"]) == 0
        assert "1 ok" in capsys.readouterr().out

    def test_harvest_isolates_corrupted_source(self, tmp_path, mirror,
                                               capsys):
        """One bit-rotted mirror file: its source fails (sidecar
        mismatch), the others still load, exit code flags the failure."""
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        (mirror / "hlx_enzyme" / "r1.dat").write_text("ID   junk\n//\n",
                                                      encoding="utf-8")
        assert main(["harvest", "--db", db, "--repo", str(mirror)]) == 1
        out = capsys.readouterr().out
        assert " 1 failed" in out
        assert "[!] hlx_enzyme" in out

    def test_harvest_fail_fast_aborts(self, tmp_path, mirror, capsys):
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        for source_dir in mirror.iterdir():
            (source_dir / "r1.dat").write_text("ID   junk\n//\n",
                                               encoding="utf-8")
        assert main(["harvest", "--db", db, "--repo", str(mirror),
                     "--fail-fast"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_harvest_twice_is_incremental(self, tmp_path, mirror, capsys):
        db = str(tmp_path / "wh.sqlite")
        main(["init", "--db", db])
        main(["harvest", "--db", db, "--repo", str(mirror)])
        capsys.readouterr()
        # a second process over the same warehouse: snapshots restored,
        # unchanged releases are no-ops
        assert main(["harvest", "--db", db, "--repo", str(mirror)]) == 0
        assert "0 unchanged" not in capsys.readouterr().out
