"""Tests for standing-query subscriptions over a live warehouse."""

import pytest

from repro.datahounds import InMemoryRepository
from repro.engine import Warehouse
from repro.subscriptions import QuerySubscription
from repro.synth import build_corpus, mutate_release

QUERY = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//comment_list, "updated")
RETURN $a//enzyme_id'''

UNRELATED_QUERY = '''FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
RETURN $a//entry_name'''


@pytest.fixture
def setup(backend):
    corpus = build_corpus(seed=19, enzyme_count=30, embl_count=5,
                          sprot_count=8)
    repository = InMemoryRepository()
    corpus.publish_to(repository, "r1")
    warehouse = Warehouse(backend=backend)
    hound = warehouse.connect(repository)
    return corpus, repository, warehouse, hound


class TestSubscriptionLifecycle:
    def test_initial_load_fires_callback(self, setup):
        corpus, repo, warehouse, hound = setup
        deltas = []
        QuerySubscription(warehouse, hound, QUERY, on_change=deltas.append)
        hound.load("hlx_enzyme")
        # no entry has the "updated" marker yet: result empty, no change
        assert deltas == []

    def test_update_produces_added_rows(self, setup):
        corpus, repo, warehouse, hound = setup
        deltas = []
        sub = QuerySubscription(warehouse, hound, QUERY,
                                on_change=deltas.append)
        hound.load("hlx_enzyme")
        repo.publish("hlx_enzyme", "r2",
                     mutate_release(corpus.enzyme_text, seed=5,
                                    update_fraction=0.3,
                                    remove_fraction=0.0))
        hound.load("hlx_enzyme")
        assert len(deltas) == 1
        assert deltas[0].added
        assert not deltas[0].removed
        assert deltas[0].total_rows == len(deltas[0].added)
        assert sub.last_result is not None
        # refresh/delivery instance counters track the lifecycle
        assert sub.refreshes == 2    # one per load
        assert sub.deliveries == 1   # only the changed delta delivered

    def test_refresh_and_delivery_feed_metrics(self, setup):
        from repro.obs import MetricsRegistry
        corpus, repo, warehouse, hound = setup
        registry = MetricsRegistry()
        warehouse.metrics = warehouse._metrics_sink = registry
        hound.metrics = registry
        deltas = []
        sub = QuerySubscription(warehouse, hound, QUERY,
                                on_change=deltas.append)
        hound.load("hlx_enzyme")
        repo.publish("hlx_enzyme", "r2",
                     mutate_release(corpus.enzyme_text, seed=5,
                                    update_fraction=0.3,
                                    remove_fraction=0.0))
        hound.load("hlx_enzyme")
        assert registry.get_counter("subscriptions.refreshes") == 2
        assert registry.get_counter("subscriptions.deliveries") == 1
        assert registry.get_counter("subscriptions.rows_added") \
            == len(deltas[0].added)
        assert registry.histogram("subscriptions.refresh_seconds").count == 2

    def test_removal_produces_removed_rows(self, setup):
        corpus, repo, warehouse, hound = setup
        deltas = []
        QuerySubscription(warehouse, hound, QUERY, on_change=deltas.append)
        hound.load("hlx_enzyme")
        release_2 = mutate_release(corpus.enzyme_text, seed=5,
                                   update_fraction=0.3, remove_fraction=0.0)
        repo.publish("hlx_enzyme", "r2", release_2)
        hound.load("hlx_enzyme")
        # r3 drops some entries entirely
        repo.publish("hlx_enzyme", "r3",
                     mutate_release(release_2, seed=6, update_fraction=0.0,
                                    remove_fraction=0.5))
        hound.load("hlx_enzyme")
        assert len(deltas) == 2
        assert deltas[1].removed

    def test_unrelated_source_does_not_trigger(self, setup):
        corpus, repo, warehouse, hound = setup
        deltas = []
        sub = QuerySubscription(warehouse, hound, UNRELATED_QUERY,
                                on_change=deltas.append,
                                fire_on_unchanged=True)
        assert sub.sources == ["hlx_sprot"]
        hound.load("hlx_enzyme")    # not a source of the query
        assert deltas == []
        hound.load("hlx_sprot")
        assert len(deltas) == 1

    def test_cancel_stops_callbacks(self, setup):
        corpus, repo, warehouse, hound = setup
        deltas = []
        sub = QuerySubscription(warehouse, hound, UNRELATED_QUERY,
                                on_change=deltas.append,
                                fire_on_unchanged=True)
        sub.cancel()
        hound.load("hlx_sprot")
        assert deltas == []

    def test_manual_refresh_primes_snapshot(self, setup):
        corpus, repo, warehouse, hound = setup
        sub = QuerySubscription(warehouse, hound, UNRELATED_QUERY)
        delta = sub.refresh()      # before any load: empty, not an error
        assert delta.total_rows == 0
        hound.load("hlx_sprot")
        # the trigger already refreshed the snapshot, so a manual
        # refresh sees the full result but no *new* delta
        delta = sub.refresh()
        assert delta.total_rows == corpus.sizes()["hlx_sprot"]
        assert delta.added == [] and delta.removed == []

    def test_trigger_refresh_updates_snapshot(self, setup):
        corpus, repo, warehouse, hound = setup
        deltas = []
        QuerySubscription(warehouse, hound, UNRELATED_QUERY,
                          on_change=deltas.append)
        hound.load("hlx_sprot")
        assert len(deltas) == 1
        assert len(deltas[0].added) == corpus.sizes()["hlx_sprot"]

    def test_reshredded_entries_keep_identity(self, setup):
        """A refresh that changes an entry's *unwatched* content must
        not report its row as removed-and-re-added (doc_ids change on
        re-shred; entry identity does not)."""
        corpus, repo, warehouse, hound = setup
        deltas = []
        QuerySubscription(warehouse, hound, UNRELATED_QUERY,
                          on_change=deltas.append)
        hound.load("hlx_sprot")
        assert len(deltas) == 1
        # r2: every entry gets a comment appended (content changes, the
        # watched entry_name values do not), none removed
        repo.publish("hlx_sprot", "r2",
                     mutate_release(corpus.sprot_text, seed=3,
                                    update_fraction=1.0,
                                    remove_fraction=0.0,
                                    marker="annotation update"))
        hound.load("hlx_sprot")
        # entry_name values unchanged -> no delta at all
        assert len(deltas) == 1

    def test_multi_source_query_subscribes_to_all(self, setup):
        corpus, repo, warehouse, hound = setup
        join_query = (
            'FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry, '
            '$b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry '
            'WHERE $a//qualifier[@qualifier_type = "EC_number"] '
            '= $b/enzyme_id RETURN $a//embl_accession_number')
        sub = QuerySubscription(warehouse, hound, join_query)
        assert sub.sources == ["hlx_embl", "hlx_enzyme"]
