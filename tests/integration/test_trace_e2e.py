"""Acceptance: end-to-end request tracing over a live federation.

A real ``ServiceServer`` fronts a two-shard federation; a client posts
a cross-database join with an ``X-Request-Id``, takes the trace id off
the response headers, and resolves it two ways — ``GET /traces/{id}``
and ``xomatiq trace show`` — asserting one connected span tree from
the HTTP handler through admission, the planner, every shard
subquery's SQL statements, and the coordinator join.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.federation import FederatedXomatiQ, ShardCatalog
from repro.obs import MetricsRegistry
from repro.service import QueryService, ServiceConfig, ServiceServer
from repro.synth import build_corpus

JOIN_QUERY = '''
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number
'''


def _request(url, payload=None, headers=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), \
                response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def walk(span):
    yield span
    for child in span["children"]:
        yield from walk(child)


@pytest.fixture(scope="module")
def live_federation_server():
    catalog = ShardCatalog()
    catalog.add_shard("s0")
    catalog.add_shard("s1")
    catalog.assign("hlx_enzyme", "s0")
    catalog.assign("hlx_embl", "s1")
    catalog.assign("hlx_sprot", "s1")
    federation = FederatedXomatiQ(catalog, metrics=MetricsRegistry())
    federation.load_corpus(build_corpus(seed=11, enzyme_count=12,
                                        embl_count=18, sprot_count=8))
    server = ServiceServer(
        QueryService(federation, config=ServiceConfig(port=0)))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=10)
    federation.close()


@pytest.fixture(scope="module")
def traced_request(live_federation_server):
    """One traced join request; returns (base_url, trace_id, tree)."""
    base = live_federation_server.url
    status, headers, body = _request(
        base + "/query", payload={"query": JOIN_QUERY},
        headers={"X-Request-Id": "req-e2e-join"})
    assert status == 200, body
    assert headers["X-Request-Id"] == "req-e2e-join"
    trace_id = headers["X-Trace-Id"]
    assert trace_id == "req-e2e-join"
    status, __, body = _request(base + f"/traces/{trace_id}")
    assert status == 200, body
    return base, trace_id, json.loads(body)


class TestTraceOverHttp:
    def test_span_tree_is_single_and_connected(self, traced_request):
        __, trace_id, payload = traced_request
        assert payload["format"] == "xomatiq-trace/1"
        assert payload["trace_id"] == trace_id
        root = payload["root"]
        assert root["name"] == "request"
        assert root["parent_id"] == ""
        spans = list(walk(root))
        by_id = {span["span_id"]: span for span in spans}
        assert len(by_id) == len(spans)   # no duplicated ids
        for span in spans:
            assert span["trace_id"] == trace_id, span["name"]
            if span is not root:
                parent = by_id[span["parent_id"]]
                assert span in parent["children"]

    def test_handler_to_shard_sql_chain(self, traced_request):
        """request → admission → plan → federated_query →
        shard_subquery (per shard, with SQL statements) →
        coordinator_join, all in one tree."""
        __, __, payload = traced_request
        root = payload["root"]
        top_names = [child["name"] for child in root["children"]]
        assert top_names[0] == "admission"
        assert "plan" in top_names
        assert "federated_query" in top_names
        scatter = next(child for child in root["children"]
                       if child["name"] == "federated_query")
        shard_spans = [child for child in scatter["children"]
                       if child["name"] == "shard_subquery"]
        # the join fans out to both shards of this layout
        assert {span["meta"]["shard"] for span in shard_spans} \
            == {"s0", "s1"}
        for shard_span in shard_spans:
            statements = [stmt
                          for span in walk(shard_span)
                          for stmt in span["statements"]]
            assert statements, shard_span["meta"]
            assert all("SELECT" in stmt["sql"].upper()
                       for stmt in statements)
        join = next(child for child in scatter["children"]
                    if child["name"] == "coordinator_join")
        assert join["trace_id"] == payload["trace_id"]

    def test_exemplar_links_metrics_to_trace(self, traced_request):
        base, trace_id, __ = traced_request
        status, __, body = _request(base + "/metrics?format=prometheus")
        assert status == 200
        text = body.decode()
        linked = [line for line in text.splitlines()
                  if "_bucket" in line
                  and f'trace_id="{trace_id}"' in line]
        assert any("service_request_seconds_bucket" in line
                   for line in linked)
        assert any("federation_shard_seconds_bucket" in line
                   for line in linked)


class TestTraceCli:
    def test_show_resolves_header_trace_id(self, traced_request,
                                           capsys):
        base, trace_id, __ = traced_request
        assert main(["trace", "show", "--url", base, trace_id]) == 0
        out = capsys.readouterr().out
        assert f"trace {trace_id}" in out
        for name in ("request", "admission", "plan",
                     "federated_query", "shard_subquery",
                     "coordinator_join"):
            assert name in out
        assert "shard=s0" in out and "shard=s1" in out

    def test_list_includes_the_request(self, traced_request, capsys):
        base, trace_id, __ = traced_request
        assert main(["trace", "list", "--url", base]) == 0
        out = capsys.readouterr().out
        assert trace_id in out
        assert "query" in out

    def test_export_writes_chrome_trace(self, traced_request, tmp_path,
                                        capsys):
        base, trace_id, __ = traced_request
        out_file = tmp_path / "trace.json"
        assert main(["trace", "export", "--url", base,
                     "--out", str(out_file), trace_id]) == 0
        data = json.loads(out_file.read_text(encoding="utf-8"))
        assert data["otherData"]["trace_id"] == trace_id
        names = {event["name"] for event in data["traceEvents"]
                 if event["ph"] == "X"}
        assert {"request", "federated_query",
                "shard_subquery", "coordinator_join"} <= names
        # worker threads land in their own lanes
        tids = {event["tid"] for event in data["traceEvents"]
                if event.get("name") == "shard_subquery"}
        assert len(tids) >= 1

    def test_show_unknown_id_fails_cleanly(self, traced_request,
                                           capsys):
        base, __, __ = traced_request
        assert main(["trace", "show", "--url", base, "ghost"]) == 1
        assert "ghost" in capsys.readouterr().err
