"""Tests for the Warehouse/XomatiQ facade itself."""

import pytest

from repro.engine import Warehouse, XomatiQ
from repro.errors import (
    BindingError,
    UnknownDocumentError,
    UnknownSourceError,
    XQuerySyntaxError,
)
from repro.relational import SqliteBackend


class TestCatalog:
    def test_document_names_lists_loaded_sources(self, warehouse):
        names = warehouse.document_names()
        assert "hlx_enzyme.DEFAULT" in names
        assert "hlx_embl.inv" in names

    def test_document_exists(self, warehouse):
        assert warehouse.document_exists("hlx_enzyme", "DEFAULT")
        assert warehouse.document_exists("hlx_enzyme", None)
        assert not warehouse.document_exists("hlx_enzyme", "nope")
        assert not warehouse.document_exists("zzz", None)

    def test_dtd_tree_for_registered_source(self, warehouse):
        assert warehouse.dtd_tree("hlx_sprot").tag == "hlx_n_sequence"

    def test_dtd_tree_unknown_source(self, warehouse):
        with pytest.raises(UnknownSourceError):
            warehouse.dtd_tree("not_registered")


class TestQueryErrors:
    def test_syntax_error_propagates(self, warehouse):
        with pytest.raises(XQuerySyntaxError):
            warehouse.query("THIS IS NOT A QUERY")

    def test_unknown_document_caught_before_sql(self, warehouse):
        with pytest.raises(UnknownDocumentError):
            warehouse.query('FOR $a IN document("missing.DEFAULT")/r '
                            'RETURN $a')

    def test_dtd_name_check(self, warehouse):
        with pytest.raises(BindingError):
            warehouse.query(
                'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'RETURN $a//definitely_not_in_dtd')

    def test_unbound_variable_caught(self, warehouse):
        with pytest.raises(BindingError):
            warehouse.query(
                'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'RETURN $zz//enzyme_id')


class TestCompiledReuse:
    def test_execute_compiled_query_twice(self, warehouse):
        compiled = warehouse.translate(
            'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
            'RETURN $a//enzyme_id')
        first = warehouse.xomatiq.execute(compiled)
        second = warehouse.xomatiq.execute(compiled)
        assert len(first) == len(second) > 0

    def test_translate_exposes_statements(self, warehouse):
        compiled = warehouse.translate(
            'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
            'WHERE contains($a, "copper", any) RETURN $a//enzyme_id')
        statements = compiled.statements()
        assert all(s.lstrip().startswith("SELECT") for s in statements)


class TestPersistence:
    def test_reopen_on_disk_warehouse(self, tmp_path, corpus):
        path = tmp_path / "wh.sqlite"
        first = Warehouse(backend=SqliteBackend(path))
        first.load_text("hlx_enzyme", corpus.enzyme_text)
        count_query = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                       'RETURN $a//enzyme_id')
        expected = len(first.query(count_query))
        first.close()

        reopened = Warehouse(backend=SqliteBackend(path), create=False)
        assert len(reopened.query(count_query)) == expected
        reopened.close()

    def test_fetch_document_by_doc_id(self, warehouse):
        doc_id = warehouse.loader.doc_ids("hlx_enzyme")[0]
        doc = warehouse.fetch_document(doc_id)
        assert doc.root.tag == "hlx_enzyme"

    def test_fetch_document_xml_unknown_variable(self, warehouse):
        result = warehouse.query(
            'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
            'RETURN $a//enzyme_id')
        with pytest.raises(UnknownDocumentError):
            warehouse.fetch_document_xml(result.rows[0], "zz")


class TestXomatiQComponent:
    def test_warehouse_query_delegates(self, warehouse):
        assert isinstance(warehouse.xomatiq, XomatiQ)
        text = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'RETURN $a//enzyme_id')
        assert len(warehouse.query(text)) == len(
            warehouse.xomatiq.query(text))
