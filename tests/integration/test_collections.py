"""Multi-collection behaviour: EMBL divisions route to distinct
collections; queries can address one or all of them."""

import pytest

from repro.synth import generate_embl_release


@pytest.fixture
def divided(empty_warehouse):
    """A warehouse with EMBL entries in two divisions."""
    empty_warehouse.load_text("hlx_embl", generate_embl_release(
        seed=51, count=12, division="inv", gene_plant=("cdc6", 0.5)))
    empty_warehouse.load_text("hlx_embl", generate_embl_release(
        seed=52, count=8, division="hum", gene_plant=("cdc6", 0.5)))
    return empty_warehouse


class TestDivisionRouting:
    def test_collections_visible_in_catalog(self, divided):
        names = divided.document_names()
        assert "hlx_embl.inv" in names
        assert "hlx_embl.hum" in names

    def test_collection_scoped_query(self, divided):
        inv = divided.query(
            'FOR $a IN document("hlx_embl.inv")/hlx_n_sequence '
            'RETURN $a//embl_accession_number')
        hum = divided.query(
            'FOR $a IN document("hlx_embl.hum")/hlx_n_sequence '
            'RETURN $a//embl_accession_number')
        assert len(inv) == 12
        assert len(hum) == 8
        assert not (set(inv.scalars("embl_accession_number"))
                    & set(hum.scalars("embl_accession_number")))

    def test_source_wide_query_spans_collections(self, divided):
        result = divided.query(
            'FOR $a IN document("hlx_embl")/hlx_n_sequence '
            'RETURN $a//embl_accession_number')
        assert len(result) == 20

    def test_keyword_search_respects_collection(self, divided):
        inv_hits = divided.query(
            'FOR $a IN document("hlx_embl.inv")/hlx_n_sequence '
            'WHERE contains($a, "cdc6", any) '
            'RETURN $a//embl_accession_number')
        all_hits = divided.query(
            'FOR $a IN document("hlx_embl")/hlx_n_sequence '
            'WHERE contains($a, "cdc6", any) '
            'RETURN $a//embl_accession_number')
        assert len(all_hits) > len(inv_hits) > 0

    def test_division_element_matches_collection(self, divided):
        result = divided.query(
            'FOR $a IN document("hlx_embl.hum")/hlx_n_sequence '
            'RETURN $a//division')
        assert set(result.scalars("division")) == {"hum"}

    def test_cross_collection_join(self, divided):
        """Divisions of the same source can be correlated like any two
        databases (shared gene names)."""
        result = divided.query(
            'FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry, '
            '$b IN document("hlx_embl.hum")/hlx_n_sequence/db_entry '
            'WHERE $a//qualifier[@qualifier_type = "gene"] '
            '= $b//qualifier[@qualifier_type = "gene"] '
            'RETURN $a//entry_name, $b//entry_name')
        # cdc6 planted in half of each division: matches must exist
        assert len(result) > 0
