"""Chaos harvesting: seeded transport faults + the resilience layer
must converge the warehouse to exactly the fault-free document set —
same per-source counts, same entry fingerprints — including across a
simulated process restart (on-disk warehouse, new process' hound
restored from persisted snapshots)."""

import pytest

from repro.datahounds import (
    FaultInjectingRepository,
    FaultPlan,
    InMemoryRepository,
    ResilientRepository,
    RetryPolicy,
)
from repro.engine import Warehouse
from repro.relational.sqlite_backend import SqliteBackend
from repro.synth import build_corpus, mutate_release

SOURCES = ("hlx_embl", "hlx_enzyme", "hlx_sprot")


def make_mirror():
    """Two releases of a small three-source corpus."""
    corpus = build_corpus(seed=11, enzyme_count=8, embl_count=8,
                          sprot_count=8)
    repo = InMemoryRepository()
    r1 = corpus.texts()
    corpus.publish_to(repo, "r1")
    for source, text in r1.items():
        repo.publish(source, "r2",
                     mutate_release(text, seed=5, update_fraction=0.3,
                                    remove_fraction=0.1))
    return repo


def chaos_wrapper(repo, seed, warehouse):
    """Seeded faults on every source, behind the resilient transport."""
    plan = FaultPlan(seed=seed).add_source(
        "*", transient_rate=0.15, truncate_rate=0.05, corrupt_rate=0.05)
    flaky = FaultInjectingRepository(repo, plan, sleep=lambda s: None)
    return ResilientRepository(
        flaky,
        policy=RetryPolicy(max_attempts=8, base_delay_s=0.0, jitter=0.0),
        breaker_threshold=50, sleep=lambda s: None,
        metrics=warehouse._metrics_sink, events=warehouse.events), plan


def harvest_releases(warehouse, repo):
    hound = warehouse.connect(repo)
    for release in ("r1", "r2"):
        for source in SOURCES:
            hound.load(source, release)


def warehouse_state(warehouse):
    """Comparable content state: per-source counts + persisted entry
    fingerprints (content hashes, so equal maps mean equal documents)."""
    stats = warehouse.stats()
    counts = {key: value for key, value in stats.items()
              if key.startswith("documents:")}
    fingerprints = {source: dict(fp) for source, (release, fp)
                    in warehouse.loader.load_snapshots().items()}
    return counts, fingerprints


@pytest.fixture(scope="module")
def baseline_state():
    warehouse = Warehouse()
    harvest_releases(warehouse, make_mirror())
    state = warehouse_state(warehouse)
    warehouse.close()
    return state


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_chaotic_harvest_converges_to_fault_free_state(seed,
                                                       baseline_state):
    warehouse = Warehouse()
    wrapper, plan = chaos_wrapper(make_mirror(), seed, warehouse)
    harvest_releases(warehouse, wrapper)
    assert warehouse_state(warehouse) == baseline_state
    # the run must actually have been chaotic, or this test says nothing
    assert plan.injected_total() > 0
    warehouse.close()


def test_chaotic_harvest_converges_across_restart(tmp_path,
                                                  baseline_state):
    """Crash between releases: the first process loads r1 under faults
    and exits; a second process attaches to the same on-disk warehouse,
    restores the persisted snapshots, and refreshes to r2 — ending in
    exactly the fault-free state, nothing lost, nothing loaded twice."""
    db = tmp_path / "wh.sqlite"
    repo = make_mirror()

    first = Warehouse(backend=SqliteBackend(db))
    wrapper, plan = chaos_wrapper(repo, seed=23, warehouse=first)
    hound = first.connect(wrapper)
    for source in SOURCES:
        hound.load(source, "r1")
    injected_before_restart = plan.injected_total()
    first.close()

    second = Warehouse(backend=SqliteBackend(db), create=False)
    wrapper, plan = chaos_wrapper(repo, seed=47, warehouse=second)
    hound = second.connect(wrapper)
    for source in SOURCES:
        # restored snapshots make these incremental refreshes, not
        # full re-loads
        assert hound.loaded_release(source) == "r1"
        report = hound.load(source, "r2")
        assert len(report.plan.unchanged) > 0
    assert warehouse_state(second) == baseline_state
    assert injected_before_restart + plan.injected_total() > 0
    second.close()


def test_chaotic_harvest_is_deterministic(baseline_state):
    """Same fault seed → byte-identical fault sequence → identical
    retry counters, not just identical final state."""
    def run(seed):
        from repro.obs import MetricsRegistry
        warehouse = Warehouse(metrics=MetricsRegistry())
        wrapper, plan = chaos_wrapper(make_mirror(), seed, warehouse)
        harvest_releases(warehouse, wrapper)
        retries = {source: warehouse.metrics.get_counter(
            "transport.retries", source=source) for source in SOURCES}
        injected = dict(plan.injected)
        warehouse.close()
        return retries, injected

    assert run(11) == run(11)
