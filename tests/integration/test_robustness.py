"""Robustness edges: unicode content, deep nesting, wide documents,
odd-but-legal inputs through the whole pipeline."""

import pytest

from repro.shredding import reconstruct_by_entry
from repro.xmlkit import parse_document, serialize


class TestUnicode:
    DOC = ("<entry><name>β-galactosidase (λ‐phage)</name>"
           '<note lang="日本語">унікод · smörgåsbord</note></entry>')

    def test_roundtrip_through_warehouse(self, empty_warehouse):
        doc = parse_document(self.DOC)
        empty_warehouse.loader.store_document("db", "c", "k", doc)
        rebuilt = reconstruct_by_entry(empty_warehouse.backend, "db", "k")
        assert rebuilt.root == doc.root

    def test_unicode_keyword_search(self, empty_warehouse):
        empty_warehouse.loader.store_document(
            "db", "c", "k", parse_document(self.DOC))
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            'FOR $e IN document("db.c")/entry '
            'WHERE contains($e//name, "galactosidase") RETURN $e//name')
        assert len(result) == 1

    def test_unicode_value_comparison(self, empty_warehouse):
        empty_warehouse.loader.store_document(
            "db", "c", "k", parse_document(self.DOC))
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            'FOR $e IN document("db.c")/entry '
            'WHERE $e//note/@lang = "日本語" RETURN $e//name')
        assert len(result) == 1

    def test_unicode_survives_xml_result_view(self, empty_warehouse):
        empty_warehouse.loader.store_document(
            "db", "c", "k", parse_document(self.DOC))
        empty_warehouse.optimize()
        xml = empty_warehouse.query(
            'FOR $e IN document("db.c")/entry RETURN $e//name').to_xml()
        assert "β-galactosidase" in xml
        parse_document(xml)


class TestDeepAndWide:
    def test_deep_nesting_roundtrip(self, empty_warehouse):
        depth = 60
        text = ("".join(f"<l{i}>" for i in range(depth))
                + "bottom"
                + "".join(f"</l{i}>" for i in reversed(range(depth))))
        doc = parse_document(text)
        empty_warehouse.loader.store_document("db", "c", "k", doc)
        rebuilt = reconstruct_by_entry(empty_warehouse.backend, "db", "k")
        assert rebuilt.root == doc.root

    def test_descendant_query_reaches_deep_leaf(self, empty_warehouse):
        depth = 40
        text = ("".join(f"<l{i}>" for i in range(depth))
                + "needle"
                + "".join(f"</l{i}>" for i in reversed(range(depth))))
        empty_warehouse.loader.store_document("db", "c", "k",
                                              parse_document(text))
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            f'FOR $e IN document("db.c")/l0 RETURN $e//l{depth - 1}')
        assert result.scalars(f"l{depth - 1}") == ["needle"]

    def test_wide_document(self, empty_warehouse):
        children = "".join(f"<item>{i}</item>" for i in range(500))
        doc = parse_document(f"<r>{children}</r>")
        empty_warehouse.loader.store_document("db", "c", "k", doc)
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            'FOR $e IN document("db.c")/r RETURN $e/item[500]')
        assert result.scalars("item") == ["499"]

    def test_many_small_documents(self, empty_warehouse):
        for index in range(120):
            empty_warehouse.loader.store_document(
                "db", "c", f"k{index}",
                parse_document(f"<r><v>{index}</v></r>"))
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            'FOR $e IN document("db.c")/r WHERE $e/v >= 100 RETURN $e/v')
        assert len(result) == 20

    def test_value_fetch_across_chunk_boundary(self, empty_warehouse):
        """More bound documents than one IN-list chunk (200): the
        chunked value-query restriction must not drop any values."""
        total = 230
        for index in range(total):
            empty_warehouse.loader.store_document(
                "db", "c", f"k{index}",
                parse_document(f"<r><v>{index}</v></r>"))
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            'FOR $e IN document("db.c")/r RETURN $e/v')
        values = sorted(int(v) for v in result.scalars("v"))
        assert values == list(range(total))


class TestOddButLegal:
    def test_value_with_quotes_and_ampersands(self, empty_warehouse):
        doc = parse_document(
            '<r><v>he said "5&amp;6" &lt;loudly&gt;</v></r>')
        empty_warehouse.loader.store_document("db", "c", "k", doc)
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            'FOR $e IN document("db.c")/r RETURN $e/v')
        assert result.scalars("v") == ['he said "5&6" <loudly>']

    def test_entry_key_with_spaces_and_symbols(self, empty_warehouse):
        doc = parse_document("<r><v>x</v></r>")
        key = "weird key; with stuff'"
        empty_warehouse.loader.store_document("db", "c", key, doc)
        rebuilt = reconstruct_by_entry(empty_warehouse.backend, "db", key)
        assert rebuilt.root.first("v").text() == "x"

    def test_keyword_phrase_with_sql_metacharacters(self, empty_warehouse):
        doc = parse_document("<r><v>100% pure; O'Brien</v></r>")
        empty_warehouse.loader.store_document("db", "c", "k", doc)
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            'FOR $e IN document("db.c")/r '
            "WHERE contains($e//v, \"brien\") RETURN $e/v")
        assert len(result) == 1

    def test_numeric_looking_entry_keys_stay_strings(self, empty_warehouse):
        empty_warehouse.loader.store_document(
            "db", "c", "007", parse_document("<r><v>bond</v></r>"))
        rebuilt = reconstruct_by_entry(empty_warehouse.backend, "db", "007")
        assert rebuilt.root.first("v").text() == "bond"
