"""Failure-path integration tests: transport errors, mid-release
transform failures, bulk-session rollback — each verified against the
real warehouse (both backends), including the persisted snapshot
state the Data Hounds' crash recovery depends on."""

import pytest

from repro.datahounds import InMemoryRepository
from repro.errors import TransformError, TransportError
from repro.xmlkit import parse_document

GOOD = ("ID   1.1.1.1\nDE   alcohol dehydrogenase.\n//\n"
        "ID   1.1.1.2\nDE   another enzyme.\n//\n")
BROKEN = ("ID   1.1.1.1\nDE   fine.\n//\n"
          "ID   1.1.1.2\nDE   broken.\nPR   NOT A PROSITE LINE\n//\n")


class TestTransportErrorPropagation:
    def test_fetch_failure_reaches_the_caller(self, empty_warehouse):
        repo = InMemoryRepository()
        repo.publish("hlx_enzyme", "r1", GOOD)
        hound = empty_warehouse.connect(repo)
        with pytest.raises(TransportError):
            hound.load("hlx_enzyme", "r99")

    def test_failed_fetch_leaves_warehouse_and_snapshot_untouched(
            self, empty_warehouse):
        repo = InMemoryRepository()
        hound = empty_warehouse.connect(repo)
        with pytest.raises(TransportError):
            hound.load("hlx_enzyme")
        assert empty_warehouse.stats()["documents"] == 0
        assert empty_warehouse.loader.load_snapshots() == {}

    def test_failed_refresh_keeps_previous_release_queryable(
            self, empty_warehouse):
        repo = InMemoryRepository()
        repo.publish("hlx_enzyme", "r1", GOOD)
        hound = empty_warehouse.connect(repo)
        hound.load("hlx_enzyme")
        with pytest.raises(TransportError):
            hound.load("hlx_enzyme", "r99")
        assert hound.loaded_release("hlx_enzyme") == "r1"
        assert empty_warehouse.stats()["documents"] == 2
        release, fingerprints = (
            empty_warehouse.loader.load_snapshots()["hlx_enzyme"])
        assert release == "r1" and len(fingerprints) == 2


class TestTransformFailureMidRelease:
    def test_warehouse_untouched_after_initial_load_failure(
            self, empty_warehouse):
        """Two-phase apply against the real store: a malformed entry
        anywhere in the release leaves zero rows behind."""
        repo = InMemoryRepository()
        repo.publish("hlx_enzyme", "r1", BROKEN)
        hound = empty_warehouse.connect(repo)
        with pytest.raises(TransformError):
            hound.load("hlx_enzyme")
        stats = empty_warehouse.stats()
        assert stats["documents"] == 0
        assert stats["elements"] == 0
        assert empty_warehouse.loader.load_snapshots() == {}

    def test_refresh_failure_preserves_loaded_release(
            self, empty_warehouse):
        repo = InMemoryRepository()
        repo.publish("hlx_enzyme", "r1", GOOD)
        hound = empty_warehouse.connect(repo)
        hound.load("hlx_enzyme")
        before = empty_warehouse.stats()
        repo.publish("hlx_enzyme", "r2", BROKEN)
        with pytest.raises(TransformError):
            hound.load("hlx_enzyme")
        assert empty_warehouse.stats() == before
        release, __ = empty_warehouse.loader.load_snapshots()["hlx_enzyme"]
        assert release == "r1"   # snapshot still points at the good one

    def test_quarantine_loads_the_healthy_remainder(self, empty_warehouse):
        repo = InMemoryRepository()
        repo.publish("hlx_enzyme", "r1", BROKEN)
        hound = empty_warehouse.connect(repo, quarantine=True)
        report = hound.load("hlx_enzyme")
        assert report.quarantined == ("1.1.1.2",)
        assert empty_warehouse.stats()["documents"] == 1
        __, fingerprints = (
            empty_warehouse.loader.load_snapshots()["hlx_enzyme"])
        assert set(fingerprints) == {"1.1.1.1"}


class TestBulkSessionRollback:
    def doc(self, index):
        return parse_document(f"<r><v>{index}</v></r>")

    def test_partial_batch_discarded_on_failure(self, empty_warehouse):
        """Complete batches stay committed, the in-flight partial batch
        is discarded — a failed load never half-writes a batch."""
        loader = empty_warehouse.loader
        with pytest.raises(RuntimeError):
            with loader.bulk_session(batch_size=2) as session:
                for index in range(5):     # flushes at 2 and 4
                    session.add("db", "c", f"k{index}", self.doc(index))
                raise RuntimeError("simulated store failure")
        assert loader.document_count("db") == 4
        assert session.flushes == 2

    def test_failure_before_first_flush_writes_nothing(
            self, empty_warehouse):
        loader = empty_warehouse.loader
        with pytest.raises(RuntimeError):
            with loader.bulk_session(batch_size=100) as session:
                session.add("db", "c", "k", self.doc(0))
                raise RuntimeError("boom")
        assert loader.document_count() == 0

    def test_committed_rows_are_indexed_after_failure(
            self, empty_warehouse):
        """Deferred indexes must be rebuilt even when the session block
        raises, so the committed batches stay queryable."""
        loader = empty_warehouse.loader
        with pytest.raises(RuntimeError):
            with loader.bulk_session(batch_size=1,
                                     defer_indexes=True) as session:
                session.add("db", "c", "k0", self.doc(0))
                raise RuntimeError("boom")
        empty_warehouse.optimize()
        result = empty_warehouse.query(
            'FOR $e IN document("db.c")/r RETURN $e/v')
        assert result.scalars("v") == ["0"]

    def test_snapshot_untouched_by_failed_bulk_load(self, empty_warehouse):
        repo = InMemoryRepository()
        repo.publish("hlx_enzyme", "r1", GOOD)
        empty_warehouse.connect(repo).load("hlx_enzyme")
        loader = empty_warehouse.loader
        with pytest.raises(RuntimeError):
            with loader.bulk_session(batch_size=2) as session:
                session.add("db", "c", "k", self.doc(0))
                raise RuntimeError("boom")
        release, fingerprints = loader.load_snapshots()["hlx_enzyme"]
        assert release == "r1" and len(fingerprints) == 2
