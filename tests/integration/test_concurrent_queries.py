"""Concurrent-query stress test over one shared on-disk warehouse.

This is the deployment shape the query service creates: many handler
threads running mixed keyword / sub-tree / join traffic against a
single :class:`~repro.engine.Warehouse` while a harvest bulk-loads a
new source in the background. Every concurrent answer must be
byte-identical to the sequential baseline (the background load touches
``hlx_omim`` only, so no query's answer may move), and the always-on
metrics snapshot must come out of the storm internally consistent.

Exercises both concurrency fixes at once: the compiled-query cache is
hammered by overlapping readers across generation bumps from the
loader, and the file-backed SQLite database runs WAL while the load's
transactions commit mid-traffic.
"""

import threading

import pytest

from repro.engine import Warehouse
from repro.obs import MetricsRegistry
from repro.relational.sqlite_backend import SqliteBackend
from repro.synth import build_corpus

READERS = 8
ITERATIONS = 40

KEYWORD_PHRASE = "ketone"

SUBTREE_QUERIES = [
    'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
    'WHERE contains($a//catalytic_activity, "ketone") '
    'RETURN $a//enzyme_id, $a//enzyme_description',
    'FOR $a IN document("hlx_embl.inv")/hlx_n_sequence '
    'RETURN $a//embl_accession_number, $a//description',
    'FOR $a IN document("hlx_sprot.all")/hlx_n_sequence '
    'RETURN $a//sprot_accession_number',
]

JOIN_QUERY = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number'''

ALL_QUERIES = SUBTREE_QUERIES + [JOIN_QUERY]


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(seed=7, enzyme_count=15, embl_count=20,
                        sprot_count=15, omim_count=25)


class TestConcurrentQueries:
    def test_mixed_traffic_during_bulk_load(self, tmp_path, corpus):
        warehouse = Warehouse(
            backend=SqliteBackend(tmp_path / "wh.sqlite"),
            metrics=MetricsRegistry(), query_cache=8)
        for source in ("hlx_enzyme", "hlx_embl", "hlx_sprot"):
            warehouse.load_text(source, corpus.texts()[source])

        # sequential baselines, captured before any concurrency
        expected_xml = [warehouse.query(text).to_xml()
                        for text in ALL_QUERIES]
        expected_keyword = warehouse.keyword_search(
            KEYWORD_PHRASE, source="hlx_enzyme")
        assert expected_keyword, "keyword baseline must be non-empty"

        errors: list[Exception] = []
        mismatches: list[str] = []
        load_done = threading.Event()
        barrier = threading.Barrier(READERS + 1)

        def loader():
            try:
                barrier.wait()
                loaded = warehouse.load_text("hlx_omim",
                                             corpus.omim_text)
                assert loaded == 25
            except Exception as exc:   # noqa: BLE001 - collected
                errors.append(exc)
            finally:
                load_done.set()

        def reader(offset: int):
            try:
                barrier.wait()
                for index in range(ITERATIONS):
                    turn = (offset + index) % (len(ALL_QUERIES) + 1)
                    if turn == len(ALL_QUERIES):
                        hits = warehouse.keyword_search(
                            KEYWORD_PHRASE, source="hlx_enzyme")
                        if hits != expected_keyword:
                            mismatches.append(
                                f"keyword drifted at iter {index}")
                    else:
                        xml = warehouse.query(
                            ALL_QUERIES[turn]).to_xml()
                        if xml != expected_xml[turn]:
                            mismatches.append(
                                f"query {turn} drifted at iter {index}")
            except Exception as exc:   # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(offset,))
                   for offset in range(READERS)]
        load_thread = threading.Thread(target=loader)
        load_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        load_thread.join()
        assert load_done.is_set()
        assert errors == []
        assert mismatches == []

        # the load landed in full, and sequential re-runs still agree
        assert warehouse.stats()["documents:hlx_omim"] == 25
        for text, baseline in zip(ALL_QUERIES, expected_xml):
            assert warehouse.query(text).to_xml() == baseline

        # the metrics snapshot survived the storm intact
        snapshot = warehouse.metrics.snapshot()
        cache_stats = warehouse.xomatiq.cache.stats()
        total_queries = READERS * ITERATIONS
        assert cache_stats["hits"] + cache_stats["misses"] >= \
            len(ALL_QUERIES)
        counters = {(m["name"],): m["value"]
                    for m in snapshot["counters"] if not m["labels"]}
        assert counters[("query_cache.hits",)] == cache_stats["hits"]
        assert counters[("query_cache.misses",)] \
            == cache_stats["misses"]
        query_count = next(
            m["count"] for m in snapshot["histograms"]
            if m["name"] == "query.seconds")
        # every warehouse.query() above is in the histogram: baselines,
        # concurrent readers' non-keyword turns, and the final re-runs
        assert query_count >= len(ALL_QUERIES) * 2
        assert query_count <= total_queries + 2 * len(ALL_QUERIES)
        warehouse.close()
