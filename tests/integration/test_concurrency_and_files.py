"""On-disk warehouse behaviours the paper attributes to using an
RDBMS: concurrent readers, durable storage, streamed loads."""

import threading

import pytest

from repro.engine import Warehouse
from repro.relational import SqliteBackend
from repro.synth import build_corpus

QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
         'RETURN $a//enzyme_id')


@pytest.fixture
def db_path(tmp_path, corpus):
    path = tmp_path / "wh.sqlite"
    warehouse = Warehouse(backend=SqliteBackend(path))
    warehouse.load_text("hlx_enzyme", corpus.enzyme_text)
    warehouse.close()
    return path


class TestConcurrentReaders:
    def test_two_connections_read_simultaneously(self, db_path, corpus):
        first = Warehouse(backend=SqliteBackend(db_path), create=False)
        second = Warehouse(backend=SqliteBackend(db_path), create=False)
        expected = corpus.sizes()["hlx_enzyme"]
        assert len(first.query(QUERY)) == expected
        assert len(second.query(QUERY)) == expected
        first.close()
        second.close()

    def test_parallel_reader_threads(self, db_path, corpus):
        expected = corpus.sizes()["hlx_enzyme"]
        results: list[int] = []
        errors: list[Exception] = []

        def reader():
            try:
                warehouse = Warehouse(backend=SqliteBackend(db_path),
                                      create=False)
                for __ in range(5):
                    results.append(len(warehouse.query(QUERY)))
                warehouse.close()
            except Exception as exc:   # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == [expected] * 20


class TestReadersDuringBulkLoad:
    KEYWORD = ('FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme'
               '/db_entry '
               'WHERE contains($e//catalytic_activity, "ketone") '
               'RETURN $e/enzyme_id')

    def test_keyword_queries_during_bulk_commits(self, corpus):
        """Readers share the warehouse with an in-flight
        BulkLoadSession: a tiny batch_size forces many interleaved
        flush/commit cycles while N threads run keyword queries
        against an already-loaded source. No torn reads, no sqlite
        thread errors, every reader sees the same answer."""
        from repro.flatfile import parse_entries

        warehouse = Warehouse(metrics=False)
        warehouse.load_text("hlx_enzyme", corpus.enzyme_text)
        expected = warehouse.query(self.KEYWORD).to_xml()

        stop = threading.Event()
        answers: list[str] = []
        errors: list[Exception] = []

        def reader():
            try:
                while not stop.is_set():
                    answers.append(warehouse.query(self.KEYWORD).to_xml())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for __ in range(4)]
        for thread in threads:
            thread.start()
        try:
            count = warehouse.load_entries(
                "hlx_embl", parse_entries(corpus.embl_text),
                batch_size=2)
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        assert not errors
        assert count == corpus.sizes()["hlx_embl"]
        assert answers and set(answers) == {expected}
        # the load itself landed intact under reader pressure
        assert warehouse.stats()["documents:hlx_embl"] == count
        warehouse.close()


class TestStreamedFileLoad:
    def test_load_file_matches_load_text(self, tmp_path, corpus):
        path = tmp_path / "enzyme.dat"
        path.write_text(corpus.enzyme_text, encoding="utf-8")
        via_file = Warehouse()
        count = via_file.load_file("hlx_enzyme", path)
        assert count == corpus.sizes()["hlx_enzyme"]
        via_text = Warehouse()
        via_text.load_text("hlx_enzyme", corpus.enzyme_text)
        assert (sorted(via_file.query(QUERY).scalars("enzyme_id"))
                == sorted(via_text.query(QUERY).scalars("enzyme_id")))

    def test_cli_stats_command(self, db_path, capsys):
        from repro.cli import main
        assert main(["stats", "--db", str(db_path)]) == 0
        out = capsys.readouterr().out
        assert "documents" in out
        assert "keywords" in out
        assert "documents:hlx_enzyme" in out
