"""Compiled-query cache: hits, staleness, and invalidation.

The cache memoizes parse → check → compile keyed by (query text,
backend dialect, sequence_tags); a catalog-generation counter bumped by
every store/remove guarantees a hit can never serve a translation whose
semantic check (or result) went stale. These tests pin the contract
down on both backends.
"""

import pytest

from repro.engine import Warehouse
from repro.errors import UnknownDocumentError
from repro.synth import generate_enzyme_release
from repro.translator.cache import CompiledQueryCache

QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
         'RETURN $a//enzyme_id')


def rows_of(result):
    return [row.values for row in result.rows]


class TestCacheHits:
    def test_repeated_query_hits_cache_with_identical_rows(
            self, empty_warehouse):
        wh = empty_warehouse
        wh.load_text("hlx_enzyme", generate_enzyme_release(seed=3, count=4))
        first = wh.query(QUERY)   # miss: compiled and cached
        second = wh.query(QUERY)  # hit: no parse/check/compile
        assert wh.xomatiq.cache.hits >= 1
        assert first.columns == second.columns
        assert rows_of(first) == rows_of(second)

    def test_cached_rows_match_uncached_warehouse(self, backend):
        text = generate_enzyme_release(seed=3, count=4)
        cached = Warehouse(backend=type(backend)())
        uncached = Warehouse(backend=type(backend)(), query_cache=0)
        cached.load_text("hlx_enzyme", text)
        uncached.load_text("hlx_enzyme", text)
        cached.query(QUERY)
        hit = cached.query(QUERY)  # served from cache
        plain = uncached.query(QUERY)
        assert uncached.xomatiq.cache is None
        assert hit.columns == plain.columns
        assert rows_of(hit) == rows_of(plain)

    def test_traced_query_counts_hit_and_miss(self, backend):
        wh = Warehouse(backend=type(backend)(), trace=True)
        wh.load_text("hlx_enzyme", generate_enzyme_release(seed=3, count=3))
        wh.query(QUERY)
        wh.query(QUERY)
        query_spans = [span for span in wh.tracer.spans
                       if span.name == "query"]
        assert query_spans[0].counters.get("cache.miss") == 1
        assert query_spans[1].counters.get("cache.hit") == 1
        # the miss runs the full pipeline under stage spans; the hit
        # skips every stage, so it is a single span with the SQL
        # statements attached directly to it
        assert "execute" in [c.name for c in query_spans[0].children]
        assert query_spans[1].children == []
        assert query_spans[1].statements
        assert query_spans[1].counters.get("result_rows") == 3


class TestInvalidation:
    def test_failed_check_then_load_recompiles(self, empty_warehouse):
        wh = empty_warehouse
        with pytest.raises(UnknownDocumentError):
            wh.query(QUERY)  # hlx_enzyme not loaded yet
        wh.load_text("hlx_enzyme", generate_enzyme_release(seed=3, count=4))
        result = wh.query(QUERY)  # must recompile and succeed
        assert len(result) == 4

    def test_store_invalidates_cached_results(self, empty_warehouse):
        wh = empty_warehouse
        wh.load_text("hlx_enzyme", generate_enzyme_release(seed=3, count=2))
        before = wh.query(QUERY)
        # a bigger release upserts the old entries and adds new ones
        wh.load_text("hlx_enzyme", generate_enzyme_release(seed=3, count=5))
        after = wh.query(QUERY)
        assert len(before) == 2
        assert len(after) == 5

    def test_remove_source_invalidates_cached_entries(
            self, empty_warehouse):
        wh = empty_warehouse
        wh.load_text("hlx_enzyme", generate_enzyme_release(seed=3, count=3))
        assert len(wh.query(QUERY)) == 3
        wh.remove_source("hlx_enzyme")
        # the stale translation must not be served: the semantic check
        # re-runs and rejects the now-unknown document
        with pytest.raises(UnknownDocumentError):
            wh.query(QUERY)

    def test_single_document_store_invalidates(self, empty_warehouse):
        wh = empty_warehouse
        wh.load_text("hlx_enzyme", generate_enzyme_release(seed=3, count=2))
        wh.query(QUERY)
        generation = wh.loader.generation
        from repro.xmlkit import parse_document
        wh.loader.store_document(
            "other", "c", "k", parse_document("<r><v>x</v></r>"))
        assert wh.loader.generation > generation
        wh.query(QUERY)  # recompiles (generation moved); same answer
        assert wh.xomatiq.cache.invalidations >= 1


class TestCacheUnit:
    def test_lru_eviction(self):
        cache = CompiledQueryCache(maxsize=2)
        tags = frozenset()
        cache.put("q1", "sqlite", tags, 0, "c1")
        cache.put("q2", "sqlite", tags, 0, "c2")
        assert cache.get("q1", "sqlite", tags, 0) == "c1"  # refresh q1
        cache.put("q3", "sqlite", tags, 0, "c3")           # evicts q2
        assert cache.get("q2", "sqlite", tags, 0) is None
        assert cache.get("q1", "sqlite", tags, 0) == "c1"
        assert cache.evictions == 1

    def test_generation_mismatch_is_a_miss_and_drops_entry(self):
        cache = CompiledQueryCache()
        tags = frozenset()
        cache.put("q", "sqlite", tags, 1, "c")
        assert cache.get("q", "sqlite", tags, 2) is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_dialect_and_tags_partition_the_key(self):
        cache = CompiledQueryCache()
        cache.put("q", "sqlite", frozenset(), 0, "a")
        cache.put("q", "minidb", frozenset(), 0, "b")
        cache.put("q", "sqlite", frozenset({"seq"}), 0, "c")
        assert cache.get("q", "sqlite", frozenset(), 0) == "a"
        assert cache.get("q", "minidb", frozenset(), 0) == "b"
        assert cache.get("q", "sqlite", frozenset({"seq"}), 0) == "c"

    def test_stats_shape(self):
        cache = CompiledQueryCache(maxsize=4)
        stats = cache.stats()
        assert stats == {"size": 0, "maxsize": 4, "hits": 0, "misses": 0,
                         "evictions": 0, "invalidations": 0}

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            CompiledQueryCache(maxsize=0)
