"""The docs/adding_sources.md walkthrough, executed verbatim.

If this test breaks, the tutorial is lying to its readers.
"""

import pytest

from repro.datahounds import InMemoryRepository
from repro.datahounds.transformer import SourceTransformer
from repro.engine import Warehouse
from repro.flatfile import Entry, LineSpec
from repro.xmlkit import Document, Element, parse_dtd

PROSITE_DTD_TEXT = """\
<!ELEMENT hlx_prosite (db_entry)>
<!ELEMENT db_entry (entry_name, prosite_accession, description+,
  pattern_list)>
<!ELEMENT entry_name (#PCDATA)>
<!ELEMENT prosite_accession (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT pattern_list (pattern*)>
<!ELEMENT pattern (#PCDATA)>
"""

FLAT_TEXT = """\
ID   ZINC_FINGER_C2H2
AC   PS00028
DE   Zinc finger C2H2 type domain signature.
PA   C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H
//
ID   EGF_1
AC   PS00022
DE   EGF-like domain signature 1.
//
"""


class PrositeTransformer(SourceTransformer):
    name = "hlx_prosite"
    dtd = parse_dtd(PROSITE_DTD_TEXT)
    line_specs = [
        LineSpec("ID", "Entry name", min_count=1, max_count=1),
        LineSpec("AC", "Accession", min_count=1, max_count=1),
        LineSpec("DE", "Description", min_count=1),
        LineSpec("PA", "Pattern"),
    ]

    def entry_to_document(self, entry: Entry) -> Document:
        root = Element("hlx_prosite")
        db_entry = root.subelement("db_entry")
        db_entry.subelement("entry_name", text=entry.value("ID").strip())
        db_entry.subelement("prosite_accession",
                            text=entry.value("AC").strip())
        for line in entry.all("DE"):
            db_entry.subelement("description", text=line.data.strip())
        patterns = db_entry.subelement("pattern_list")
        for line in entry.all("PA"):
            patterns.subelement("pattern", text=line.data.strip())
        return Document(root, name=self.name)

    def entry_key(self, entry: Entry) -> str:
        return entry.value("AC").strip()


class TestTutorial:
    def test_register_load_query(self, backend):
        warehouse = Warehouse(backend=backend)
        warehouse.registry.register(PrositeTransformer)
        assert warehouse.load_text("hlx_prosite", FLAT_TEXT) == 2

        result = warehouse.query('''
            FOR $p IN document("hlx_prosite.DEFAULT")/hlx_prosite
            WHERE contains($p//description, "zinc finger")
            RETURN $p//prosite_accession, $p//pattern
        ''')
        assert len(result) == 1
        assert result.rows[0].values["prosite_accession"] == ["PS00028"]
        assert result.rows[0].values["pattern"][0].startswith("C-x(2,4)")

    def test_hound_pipeline(self, backend):
        warehouse = Warehouse(backend=backend)
        warehouse.registry.register(PrositeTransformer)
        repository = InMemoryRepository()
        repository.publish("hlx_prosite", "r2026-07", FLAT_TEXT)
        hound = warehouse.connect(repository)
        report = hound.load("hlx_prosite")
        assert report.documents_loaded == 2

    def test_roundtrip(self, backend):
        from repro.shredding import reconstruct_by_entry
        warehouse = Warehouse(backend=backend)
        warehouse.registry.register(PrositeTransformer)
        warehouse.load_text("hlx_prosite", FLAT_TEXT)
        expected = PrositeTransformer().transform_text(FLAT_TEXT)[0]
        rebuilt = reconstruct_by_entry(warehouse.backend, "hlx_prosite",
                                       "PS00028")
        assert rebuilt.root == expected.root

    def test_dtd_tree_for_builders(self, backend):
        warehouse = Warehouse(backend=backend)
        warehouse.registry.register(PrositeTransformer)
        tree = warehouse.dtd_tree("hlx_prosite")
        assert tree.find("pattern") is not None
