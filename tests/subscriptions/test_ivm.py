"""Incremental view maintenance — equivalence with the full-refresh
oracle across mutation sequences, fallback gates, and delta algebra."""

from __future__ import annotations

from repro.datahounds import InMemoryRepository
from repro.engine import Warehouse
from repro.subscriptions import KeyedDelta, StandingEvaluation, sources_of
from repro.subscriptions.delta import ORIGIN_FULL, ORIGIN_INCREMENTAL
from repro.synth import build_corpus, mutate_release
from repro.xquery.parser import parse_query

VALUES_QUERY = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//enzyme_id'''

FILTER_QUERY = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//comment_list, "updated")
RETURN $a//enzyme_id'''

JOIN_QUERY = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number'''


def make_setup(backend, seed=23, enzyme_count=25, embl_count=10,
               sprot_count=5):
    corpus = build_corpus(seed=seed, enzyme_count=enzyme_count,
                          embl_count=embl_count, sprot_count=sprot_count)
    repository = InMemoryRepository()
    corpus.publish_to(repository, "r1")
    warehouse = Warehouse(backend=backend)
    hound = warehouse.connect(repository)
    return corpus, repository, warehouse, hound


class TestSourcesOf:
    def test_document_bindings_resolve(self):
        query = parse_query(JOIN_QUERY)
        assert sources_of(query) == ["hlx_embl", "hlx_enzyme"]

    def test_variable_only_bindings_fall_back_to_wildcard(self):
        # parse-level legal even though the checker rejects it later:
        # every binding re-roots on a variable, so no source resolves.
        # The regression: this used to yield [] — a subscription that
        # silently never fires. It must subscribe to "*" instead.
        query = parse_query('FOR $b IN $a//db_entry RETURN $b/enzyme_id')
        assert sources_of(query) == ["*"]

    def test_duplicate_sources_deduped(self):
        query = parse_query('''
            FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
                $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
            WHERE $a/enzyme_id = $b/enzyme_id
            RETURN $a/enzyme_id''')
        assert sources_of(query) == ["hlx_enzyme"]


class TestIncrementalEqualsOracle:
    """Property-style: after every mutation in a sequence covering
    adds, modifies, removes, and a leave-then-re-enter entry, the
    incrementally maintained snapshot is byte-identical to a
    full-refresh oracle's."""

    def drive(self, backend, query_text, releases, corpus=None,
              seed=23):
        if corpus is None:
            corpus, repository, warehouse, hound = make_setup(
                backend, seed=seed)
        else:
            repository = InMemoryRepository()
            corpus.publish_to(repository, "r1")
            warehouse = Warehouse(backend=backend)
            hound = warehouse.connect(repository)
        incremental = StandingEvaluation(warehouse, query_text)
        oracle = StandingEvaluation(warehouse, query_text,
                                    incremental=False)
        events = []
        hound.triggers.subscribe(events.append, "hlx_enzyme")
        hound.load("hlx_enzyme")
        hound.load("hlx_embl")
        for event in events:
            incremental.apply(event)
            oracle.apply(event)
        assert incremental.canonical() == oracle.canonical()
        for round_no, text in enumerate(releases, start=2):
            events.clear()
            repository.publish("hlx_enzyme", f"r{round_no}", text)
            hound.load("hlx_enzyme")
            for event in events:
                inc_delta = incremental.apply(event)
                ora_delta = oracle.apply(event)
                # the two paths must report the *same* delta, not just
                # converge to the same snapshot
                assert (sorted(key for key, __ in inc_delta.added)
                        == sorted(key for key, __ in ora_delta.added))
                assert (sorted(key for key, __ in inc_delta.removed)
                        == sorted(key for key, __ in ora_delta.removed))
            assert incremental.canonical() == oracle.canonical(), \
                f"diverged at release r{round_no}"
        warehouse.close()
        return incremental, oracle

    def test_values_query_over_mutation_sequence(self, backend):
        corpus = build_corpus(seed=23, enzyme_count=25, embl_count=10,
                              sprot_count=5)
        releases = [
            mutate_release(corpus.enzyme_text, seed=1,
                           update_fraction=0.3, remove_fraction=0.1),
            mutate_release(corpus.enzyme_text, seed=2,
                           update_fraction=0.1, remove_fraction=0.3),
            # every original entry returns: removed entries re-enter
            corpus.enzyme_text,
        ]
        incremental, oracle = self.drive(backend, VALUES_QUERY, releases,
                                         corpus=corpus)
        assert incremental.incremental_refreshes > 0
        assert oracle.incremental_refreshes == 0

    def test_filter_query_entries_enter_and_leave(self, backend):
        corpus = build_corpus(seed=23, enzyme_count=25, embl_count=10,
                              sprot_count=5)
        marked = mutate_release(corpus.enzyme_text, seed=3,
                                update_fraction=0.4, remove_fraction=0.0)
        releases = [
            marked,              # entries gain the marker → enter
            corpus.enzyme_text,  # markers gone → leave
            marked,              # re-enter with identical rows
        ]
        incremental, __ = self.drive(backend, FILTER_QUERY, releases,
                                     corpus=corpus)
        assert incremental.incremental_refreshes > 0

    def test_join_query_tracks_either_side(self, backend):
        corpus, repository, warehouse, hound = make_setup(backend)
        incremental = StandingEvaluation(warehouse, JOIN_QUERY)
        oracle = StandingEvaluation(warehouse, JOIN_QUERY,
                                    incremental=False)
        events = []
        hound.triggers.subscribe(events.append)   # both sources
        hound.load("hlx_enzyme")
        hound.load("hlx_embl")
        repository.publish("hlx_enzyme", "r2",
                           mutate_release(corpus.enzyme_text, seed=4,
                                          update_fraction=0.2,
                                          remove_fraction=0.2))
        hound.load("hlx_enzyme")
        repository.publish("hlx_embl", "r2",
                           mutate_release(corpus.embl_text, seed=5,
                                          update_fraction=0.2,
                                          remove_fraction=0.2))
        hound.load("hlx_embl")
        for event in events:
            incremental.apply(event)
            oracle.apply(event)
        assert incremental.canonical() == oracle.canonical()
        assert incremental.incremental_refreshes > 0
        warehouse.close()


class TestFallbackGates:
    def test_large_delta_falls_back_to_full(self, backend):
        __, __, warehouse, hound = make_setup(backend)
        evaluation = StandingEvaluation(warehouse, VALUES_QUERY,
                                        incremental_max_keys=1)
        events = []
        hound.triggers.subscribe(events.append, "hlx_enzyme")
        hound.load("hlx_enzyme")
        delta = evaluation.apply(events[0])
        # 25 added entries > max 1 key: must take the full path
        assert delta.origin == ORIGIN_FULL
        assert evaluation.incremental_refreshes == 0
        warehouse.close()

    def test_unprimed_evaluation_takes_full_path(self, backend):
        __, __, warehouse, hound = make_setup(backend)
        evaluation = StandingEvaluation(warehouse, VALUES_QUERY)
        events = []
        hound.triggers.subscribe(events.append, "hlx_enzyme")
        hound.load("hlx_enzyme")
        delta = evaluation.apply(events[0])
        assert delta.origin == ORIGIN_FULL
        warehouse.close()

    def test_small_delta_after_priming_is_incremental(self, backend):
        corpus, repository, warehouse, hound = make_setup(backend)
        evaluation = StandingEvaluation(warehouse, VALUES_QUERY)
        events = []
        hound.triggers.subscribe(events.append, "hlx_enzyme")
        hound.load("hlx_enzyme")
        evaluation.apply(events[0])
        events.clear()
        repository.publish("hlx_enzyme", "r2",
                           mutate_release(corpus.enzyme_text, seed=6,
                                          update_fraction=0.1,
                                          remove_fraction=0.05))
        hound.load("hlx_enzyme")
        delta = evaluation.apply(events[0])
        assert delta.origin == ORIGIN_INCREMENTAL
        warehouse.close()

    def test_self_join_never_incremental(self, backend):
        corpus, repository, warehouse, hound = make_setup(backend)
        self_join = '''
            FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
                $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
            WHERE $a/enzyme_id = $b/enzyme_id
            RETURN $a/enzyme_id'''
        evaluation = StandingEvaluation(warehouse, self_join)
        events = []
        hound.triggers.subscribe(events.append, "hlx_enzyme")
        hound.load("hlx_enzyme")
        evaluation.apply(events[0])
        events.clear()
        repository.publish("hlx_enzyme", "r2",
                           mutate_release(corpus.enzyme_text, seed=7,
                                          update_fraction=0.1,
                                          remove_fraction=0.0))
        hound.load("hlx_enzyme")
        delta = evaluation.apply(events[0])
        assert delta.origin == ORIGIN_FULL
        warehouse.close()

    def test_query_before_source_loaded_is_empty_not_error(self, backend):
        __, __, warehouse, hound = make_setup(backend)
        evaluation = StandingEvaluation(warehouse, VALUES_QUERY)
        delta = evaluation.refresh_full()
        assert delta.added == [] and delta.removed == []
        assert evaluation.total_rows == 0
        warehouse.close()


class TestDeltaAlgebra:
    def delta(self, added=(), removed=(), origin="incremental"):
        return KeyedDelta(source="s", release="r", origin=origin,
                          added=[(key, None) for key in added],
                          removed=[(key, None) for key in removed])

    def test_add_then_remove_cancels(self):
        merged = self.delta(added=["k1"]).merge(self.delta(removed=["k1"]))
        assert merged.added == [] and merged.removed == []
        assert merged.folded == 2

    def test_remove_then_add_cancels(self):
        merged = self.delta(removed=["k1"]).merge(self.delta(added=["k1"]))
        assert merged.added == [] and merged.removed == []

    def test_disjoint_deltas_union(self):
        merged = self.delta(added=["k1"]).merge(self.delta(added=["k2"]))
        assert sorted(key for key, __ in merged.added) == ["k1", "k2"]

    def test_merge_is_s2_minus_s0(self):
        # S0={a}, S1={a,b}, S2={b,c}: merged must be +b +c -a
        first = self.delta(added=["b"])
        second = self.delta(added=["c"], removed=["a"])
        merged = first.merge(second)
        assert sorted(key for key, __ in merged.added) == ["b", "c"]
        assert [key for key, __ in merged.removed] == ["a"]
