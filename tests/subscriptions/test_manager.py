"""SubscriptionManager — query dedupe, channel delivery, persistence
across restarts, and lifecycle."""

from __future__ import annotations

import pytest

from repro.datahounds import InMemoryRepository
from repro.engine import Warehouse
from repro.errors import ReproError
from repro.obs import MetricsRegistry
from repro.subscriptions import SubscriptionManager
from repro.synth import build_corpus, mutate_release

QUERY = '''FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//enzyme_id'''

OTHER_QUERY = '''FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
RETURN $a//entry_name'''


@pytest.fixture
def setup(backend):
    corpus = build_corpus(seed=31, enzyme_count=15, embl_count=5,
                          sprot_count=6)
    repository = InMemoryRepository()
    corpus.publish_to(repository, "r1")
    warehouse = Warehouse(backend=backend, metrics=MetricsRegistry())
    hound = warehouse.connect(repository)
    yield corpus, repository, warehouse, hound
    warehouse.close()


class TestDedupe:
    def test_same_text_shares_one_evaluation(self, setup):
        __, __, warehouse, __ = setup
        manager = SubscriptionManager(warehouse)
        first = manager.subscribe(QUERY, callback=lambda d: None)
        second = manager.subscribe(QUERY, callback=lambda d: None)
        third = manager.subscribe(OTHER_QUERY, callback=lambda d: None)
        assert first.id != second.id
        assert manager.evaluation_count == 2
        assert (manager.evaluation_for(QUERY)
                is not manager.evaluation_for(OTHER_QUERY))
        assert third.query_text == OTHER_QUERY
        manager.close()

    def test_one_event_refreshes_shared_query_once(self, setup):
        __, __, warehouse, hound = setup
        manager = SubscriptionManager(warehouse)
        sinks = [[], [], []]
        for sink in sinks:
            manager.subscribe(QUERY, callback=sink.append)
        hound.load("hlx_enzyme")
        assert manager.bus.flush(timeout=5.0)
        evaluation = manager.evaluation_for(QUERY)
        # primed once at subscribe (x1: shared), refreshed once on load
        assert evaluation.refreshes == 2
        # ...but every subscriber got its own delivery
        assert all(len(sink) == 1 for sink in sinks)
        manager.close()

    def test_evaluation_dropped_with_last_subscriber(self, setup):
        __, __, warehouse, __ = setup
        manager = SubscriptionManager(warehouse)
        first = manager.subscribe(QUERY, callback=lambda d: None)
        second = manager.subscribe(QUERY, callback=lambda d: None)
        manager.unsubscribe(first.id)
        assert manager.evaluation_count == 1
        manager.unsubscribe(second.id)
        assert manager.evaluation_count == 0
        manager.close()


class TestChannels:
    def test_channel_subscription_accumulates_events(self, setup):
        corpus, repository, warehouse, hound = setup
        manager = SubscriptionManager(warehouse)
        subscription = manager.subscribe(QUERY)
        hound.load("hlx_enzyme")
        assert manager.bus.flush(timeout=5.0)
        events, last_id = subscription.channel.poll(timeout=2.0)
        assert last_id == 1
        assert len(events) == 1
        assert events[0][1]["added"]
        # resume from the cursor: nothing new
        events, __ = subscription.channel.poll(after=last_id)
        assert events == []
        # a comment-only update leaves the returned values unchanged —
        # entries must actually leave for the result to change
        repository.publish("hlx_enzyme", "r2",
                           mutate_release(corpus.enzyme_text, seed=2,
                                          update_fraction=0.0,
                                          remove_fraction=0.3))
        hound.load("hlx_enzyme")
        assert manager.bus.flush(timeout=5.0)
        events, last_id = subscription.channel.poll(after=last_id,
                                                    timeout=2.0)
        assert last_id == 2 and len(events) == 1
        assert events[0][1]["removed"]
        manager.close()

    def test_unchanged_refresh_publishes_nothing(self, setup):
        corpus, repository, warehouse, hound = setup
        manager = SubscriptionManager(warehouse)
        subscription = manager.subscribe(QUERY)
        hound.load("hlx_enzyme")
        # unrelated source: the evaluation never runs, nothing lands
        hound.load("hlx_sprot")
        assert manager.bus.flush(timeout=5.0)
        events, last_id = subscription.channel.poll(timeout=2.0)
        assert last_id == 1 and len(events) == 1
        manager.close()

    def test_ring_overflow_counts_lost(self, setup):
        corpus, repository, warehouse, hound = setup
        manager = SubscriptionManager(warehouse, channel_capacity=1)
        subscription = manager.subscribe(QUERY)
        hound.load("hlx_enzyme")
        repository.publish("hlx_enzyme", "r2",
                           mutate_release(corpus.enzyme_text, seed=3,
                                          update_fraction=0.0,
                                          remove_fraction=0.4))
        hound.load("hlx_enzyme")
        assert manager.bus.flush(timeout=5.0)
        assert subscription.channel.lost == 1
        events, last_id = subscription.channel.poll()
        assert len(events) == 1 and last_id == 2
        manager.close()


class TestPersistence:
    def test_subscriptions_survive_restart(self, setup):
        corpus, repository, warehouse, hound = setup
        manager = SubscriptionManager(warehouse)
        kept = manager.subscribe(QUERY, subscription_id="durable-1")
        manager.subscribe(OTHER_QUERY, subscription_id="ephemeral",
                          persist=False)
        manager.close()

        # "restart": a new manager over the same backend
        revived = SubscriptionManager(warehouse)
        ids = [sub.id for sub in revived.subscriptions()]
        assert ids == ["durable-1"]
        restored = revived.get("durable-1")
        assert restored.query_text == kept.query_text
        assert restored.policy == kept.policy
        assert restored.persisted
        # and the restored registration is live: a load reaches it
        hound.load("hlx_enzyme")
        assert revived.bus.flush(timeout=5.0)
        events, __ = restored.channel.poll(timeout=2.0)
        assert events and events[0][1]["added"]
        revived.close()

    def test_unsubscribe_removes_persisted_row(self, setup):
        __, __, warehouse, __ = setup
        manager = SubscriptionManager(warehouse)
        manager.subscribe(QUERY, subscription_id="durable-2")
        assert manager.unsubscribe("durable-2")
        manager.close()
        revived = SubscriptionManager(warehouse)
        assert revived.subscriptions() == []
        revived.close()

    def test_restore_skips_broken_rows(self, setup):
        __, __, warehouse, __ = setup
        manager = SubscriptionManager(warehouse)
        manager.subscribe(QUERY, subscription_id="ok-1")
        manager.close()
        warehouse.backend.execute(
            "INSERT INTO standing_subscriptions "
            "(sub_id, query_text, policy, mode, created_at) "
            "VALUES ('broken', 'NOT A QUERY', 'block', 'channel', 0)")
        warehouse.backend.commit()
        revived = SubscriptionManager(warehouse)
        assert [sub.id for sub in revived.subscriptions()] == ["ok-1"]
        failures = warehouse.events.events("subscriptions.restore_failed")
        assert failures and failures[0].fields["sub_id"] == "broken"
        revived.close()

    def test_persist_disabled_writes_nothing(self, setup):
        __, __, warehouse, __ = setup
        manager = SubscriptionManager(warehouse, persist=False)
        manager.subscribe(QUERY)
        manager.close()
        revived = SubscriptionManager(warehouse)
        assert revived.subscriptions() == []
        revived.close()


class TestLifecycle:
    def test_duplicate_id_rejected(self, setup):
        __, __, warehouse, __ = setup
        manager = SubscriptionManager(warehouse)
        manager.subscribe(QUERY, subscription_id="dup")
        with pytest.raises(ReproError):
            manager.subscribe(QUERY, subscription_id="dup")
        manager.close()

    def test_bad_policy_rejected(self, setup):
        __, __, warehouse, __ = setup
        manager = SubscriptionManager(warehouse)
        with pytest.raises(ReproError):
            manager.subscribe(QUERY, policy="bogus")
        manager.close()

    def test_active_gauges_track_registrations(self, setup):
        __, __, warehouse, __ = setup
        registry = warehouse.metrics
        manager = SubscriptionManager(warehouse)
        first = manager.subscribe(QUERY)
        manager.subscribe(QUERY)
        assert registry.get_gauge_value("subscriptions.active") == 2
        assert registry.get_gauge_value(
            "subscriptions.standing_queries") == 1
        manager.unsubscribe(first.id)
        assert registry.get_gauge_value("subscriptions.active") == 1
        manager.close()

    def test_closed_manager_ignores_events(self, setup):
        __, __, warehouse, hound = setup
        manager = SubscriptionManager(warehouse)
        subscription = manager.subscribe(QUERY)
        manager.close()
        hound.load("hlx_enzyme")
        events, __ = subscription.channel.poll()
        assert events == []

    def test_stats_shape(self, setup):
        __, __, warehouse, __ = setup
        manager = SubscriptionManager(warehouse)
        manager.subscribe(QUERY)
        stats = manager.stats()
        assert stats["subscribers"] == 1
        assert stats["standing_queries"] == 1
        manager.close()
