"""DeliveryBus — backpressure policies, subscriber isolation, and the
no-stall guarantee for the publish path."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import EventLog, MetricsRegistry
from repro.subscriptions import DeliveryBus, KeyedDelta


def delta(n: int) -> KeyedDelta:
    return KeyedDelta(source="hlx_enzyme", release=f"r{n}",
                      origin="incremental",
                      added=[((("a", "hlx_enzyme", f"k{n}"), ()), None)])


@pytest.fixture
def bus():
    instance = DeliveryBus(workers=2, queue_max=4)
    yield instance
    instance.close()


class TestDelivery:
    def test_delivers_in_order_per_subscriber(self, bus):
        seen = []
        bus.register("s1", seen.append)
        for n in range(10):
            bus.publish(["s1"], delta(n))
        assert bus.flush(timeout=5.0)
        assert [d.release for d in seen] == [f"r{n}" for n in range(10)]

    def test_fan_out_to_many_subscribers(self, bus):
        counts = {f"s{i}": [] for i in range(5)}
        for sub_id, sink in counts.items():
            bus.register(sub_id, sink.append)
        bus.publish(list(counts), delta(1))
        assert bus.flush(timeout=5.0)
        assert all(len(sink) == 1 for sink in counts.values())

    def test_unregister_discards_queue(self, bus):
        bus.register("s1", lambda d: None)
        bus.unregister("s1")
        assert bus.publish(["s1"], delta(1)) == 0
        assert bus.subscriber_count == 0

    def test_unknown_policy_rejected(self, bus):
        with pytest.raises(ValueError):
            bus.register("s1", lambda d: None, policy="bogus")


class TestBackpressure:
    def test_drop_oldest_never_stalls_publisher(self):
        bus = DeliveryBus(workers=1, queue_max=2)
        release = threading.Event()
        seen = []

        def slow(d):
            release.wait(5.0)
            seen.append(d)

        bus.register("slow", slow, policy="drop_oldest")
        started = time.perf_counter()
        for n in range(20):
            bus.publish(["slow"], delta(n))
        publish_seconds = time.perf_counter() - started
        assert publish_seconds < 1.0       # publisher was never blocked
        release.set()
        assert bus.flush(timeout=5.0)
        stats = bus.stats()["slow"]
        assert stats["dropped"] > 0
        assert stats["delivered"] + stats["dropped"] == 20
        # the newest delta always survives a drop
        assert seen[-1].release == "r19"
        bus.close()

    def test_coalesce_folds_backlog_into_one_net_delta(self):
        bus = DeliveryBus(workers=1, queue_max=4)
        release = threading.Event()
        seen = []

        def slow(d):
            release.wait(5.0)
            seen.append(d)

        bus.register("slow", slow, policy="coalesce")
        bus.publish(["slow"], delta(0))    # worker picks this up, blocks
        time.sleep(0.1)
        for n in range(1, 6):
            bus.publish(["slow"], delta(n))
        release.set()
        assert bus.flush(timeout=5.0)
        stats = bus.stats()["slow"]
        assert stats["coalesced"] == 4     # 5 queued folded into 1
        # the in-flight delta plus one coalesced delta arrive
        assert len(seen) == 2
        assert seen[1].folded == 5
        assert seen[1].origin == "coalesced"
        # net effect preserved: all five distinct keys present
        assert len(seen[1].added) == 5
        bus.close()

    def test_coalesce_cancellation_is_exact(self):
        bus = DeliveryBus(workers=1, queue_max=4)
        release = threading.Event()
        seen = []

        def slow(d):
            release.wait(5.0)
            seen.append(d)

        key = (("a", "hlx_enzyme", "k1"), ())
        add = KeyedDelta(source="s", release="r2", origin="incremental",
                         added=[(key, None)])
        remove = KeyedDelta(source="s", release="r3", origin="incremental",
                            removed=[(key, None)])
        bus.register("slow", slow, policy="coalesce")
        bus.publish(["slow"], delta(0))    # occupy the worker
        time.sleep(0.1)
        bus.publish(["slow"], add)
        bus.publish(["slow"], remove)
        release.set()
        assert bus.flush(timeout=5.0)
        # add then remove of the same key nets to nothing
        assert seen[1].added == [] and seen[1].removed == []
        bus.close()

    def test_block_policy_waits_for_room(self):
        bus = DeliveryBus(workers=1, queue_max=1)
        gate = threading.Event()
        seen = []

        def slow(d):
            gate.wait(5.0)
            seen.append(d)

        bus.register("slow", slow, policy="block")
        bus.publish(["slow"], delta(0))    # in flight, blocks worker
        time.sleep(0.1)
        bus.publish(["slow"], delta(1))    # fills the queue

        def late_publish():
            bus.publish(["slow"], delta(2))

        publisher = threading.Thread(target=late_publish)
        publisher.start()
        time.sleep(0.2)
        assert publisher.is_alive()        # blocked: queue is full
        gate.set()
        publisher.join(timeout=5.0)
        assert not publisher.is_alive()
        assert bus.flush(timeout=5.0)
        assert len(seen) == 3              # lossless
        bus.close()


class TestIsolationAndMetrics:
    def test_raising_subscriber_does_not_stop_the_bus(self):
        registry = MetricsRegistry()
        log = EventLog()
        bus = DeliveryBus(workers=1, metrics=registry, events=log)
        healthy = []
        bus.register("bad", lambda d: (_ for _ in ()).throw(
            RuntimeError("subscriber bug")))
        bus.register("good", healthy.append)
        bus.publish(["bad", "good"], delta(1))
        bus.publish(["bad", "good"], delta(2))
        assert bus.flush(timeout=5.0)
        assert len(healthy) == 2
        assert bus.stats()["bad"]["failed"] == 2
        assert registry.get_counter("subscriptions.delivery_failed") == 2
        failures = log.events("subscriptions.delivery_failed")
        assert failures and failures[0].fields["subscriber"] == "bad"
        bus.close()

    def test_delivery_metrics(self):
        registry = MetricsRegistry()
        bus = DeliveryBus(workers=1, metrics=registry)
        bus.register("s1", lambda d: None)
        bus.publish(["s1"], delta(1))
        assert bus.flush(timeout=5.0)
        assert registry.get_counter("subscriptions.deliveries") == 1
        assert registry.histogram("subscriptions.lag_seconds").count == 1
        assert registry.histogram(
            "subscriptions.delivery_seconds").count == 1
        bus.close()
