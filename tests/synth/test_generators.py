"""Unit tests for the synthetic corpus generators."""

from repro.datahounds.sources.embl import EmblTransformer
from repro.datahounds.sources.enzyme import EnzymeTransformer
from repro.datahounds.sources.sprot import SprotTransformer
from repro.flatfile import parse_entries
from repro.synth import build_corpus, mutate_release
from repro.xmlkit import evaluate_strings, parse_path


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = build_corpus(seed=3, enzyme_count=8, embl_count=8, sprot_count=8)
        b = build_corpus(seed=3, enzyme_count=8, embl_count=8, sprot_count=8)
        assert a.enzyme_text == b.enzyme_text
        assert a.embl_text == b.embl_text
        assert a.sprot_text == b.sprot_text

    def test_different_seed_different_corpus(self):
        a = build_corpus(seed=3, enzyme_count=8, embl_count=8, sprot_count=8)
        b = build_corpus(seed=4, enzyme_count=8, embl_count=8, sprot_count=8)
        assert a.enzyme_text != b.enzyme_text


class TestWellFormedness:
    def test_all_releases_transform_cleanly(self, corpus):
        assert len(EnzymeTransformer().transform_text(corpus.enzyme_text)) \
            == corpus.sizes()["hlx_enzyme"]
        assert len(EmblTransformer().transform_text(corpus.embl_text)) \
            == corpus.sizes()["hlx_embl"]
        assert len(SprotTransformer().transform_text(corpus.sprot_text)) \
            == corpus.sizes()["hlx_sprot"]

    def test_entry_keys_unique_per_source(self, corpus):
        for text, transformer in [
                (corpus.enzyme_text, EnzymeTransformer()),
                (corpus.embl_text, EmblTransformer()),
                (corpus.sprot_text, SprotTransformer())]:
            keys = [transformer.entry_key(e) for e in parse_entries(text)]
            assert len(keys) == len(set(keys))


class TestCrossLinks:
    def test_embl_ec_numbers_from_enzyme_pool(self, corpus):
        ec_pool = set(corpus.ec_numbers)
        found = set()
        for doc in EmblTransformer().transform_text(corpus.embl_text):
            found.update(evaluate_strings(
                parse_path('//qualifier[@qualifier_type = "EC_number"]'),
                doc.root))
        assert found  # the join benchmark needs matches
        assert found <= ec_pool

    def test_enzyme_dr_lines_reference_sprot_accessions(self, corpus):
        accession_pool = {acc for acc, __ in corpus.sprot_accessions}
        referenced = set()
        for doc in EnzymeTransformer().transform_text(corpus.enzyme_text):
            referenced.update(evaluate_strings(
                parse_path("//reference/@swissprot_accession_number"),
                doc.root))
        assert referenced <= accession_pool

    def test_gene_plant_appears_in_both_sequence_sources(self, corpus):
        assert "cdc6" in corpus.embl_text
        assert "cdc6" in corpus.sprot_text

    def test_keyword_plant_in_enzyme(self, corpus):
        assert "ketone" in corpus.enzyme_text


class TestMutateRelease:
    def test_mutation_produces_updates_and_removals(self, corpus):
        mutated = mutate_release(corpus.enzyme_text, seed=5,
                                 update_fraction=0.3, remove_fraction=0.2)
        old = parse_entries(corpus.enzyme_text)
        new = parse_entries(mutated)
        assert len(new) < len(old)
        marker_count = mutated.count("updated in r2")
        assert marker_count > 0

    def test_mutation_deterministic(self, corpus):
        a = mutate_release(corpus.enzyme_text, seed=5)
        b = mutate_release(corpus.enzyme_text, seed=5)
        assert a == b

    def test_mutated_release_still_parses(self, corpus):
        mutated = mutate_release(corpus.enzyme_text, seed=5)
        assert EnzymeTransformer().transform_text(mutated)
