"""Query-path fault tolerance: replicas, breakers, hedging, deadlines,
and the chaos harness that drives them.

Every test injects faults through :mod:`repro.federation.chaos` (no
real network, no real shard kills) and time through the executor's
injectable ``clock``/``sleep`` where the code path allows it — the
threaded attempt path coordinates on real queue timeouts, so its tests
use event-driven stalls with tight safety valves instead of sleeps.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ShardConfigError, StorageError
from repro.federation import FederatedXomatiQ, ShardCatalog
from repro.federation.catalog import shard_of
from repro.federation.chaos import (
    ChaosPlan,
    ChaosSpec,
    FaultInjectingBackend,
    inject_faults,
)
from repro.federation.executor import FaultPolicy
from repro.obs import MetricsRegistry
from repro.resilience import CLOSED, OPEN, ManualClock
from tests.federation.conftest import (
    FIG11_JOIN,
    ROUTING_PER_SOURCE,
    build_federation,
)

#: FIG11 touches s0 (enzyme) and s1 (embl) under ROUTING_PER_SOURCE;
#: chaos lands on s1 so the join's bigger leg is the one that fails
FAULTY = "s1"


def fault_federation(corpus, replicas=0, policy=None, plan=None,
                     trace=None):
    """A federation plus a chaos wrapper on the faulty shard's primary."""
    registry = MetricsRegistry()
    federation = build_federation(corpus, ROUTING_PER_SOURCE,
                                  metrics=registry, replicas=replicas,
                                  fault_policy=policy, trace=trace)
    chaos = inject_faults(federation.catalog.warehouse(FAULTY),
                          plan=plan, name=FAULTY)
    return federation, chaos, registry


def plan_then_arm(federation, chaos_by_backend):
    """Plan the FIG11 join while every backend is clean, then arm the
    chaos plans — scripted and stalled outcomes land on the executor's
    attempt path (the subject under test), not on the planner's
    document-existence probes. Returns the federated plan for
    ``federation.executor.execute``."""
    fplan = federation.plan(FIG11_JOIN)
    for wrapper, chaos_plan in chaos_by_backend.items():
        wrapper.plan = chaos_plan
    return fplan


class TestReplicaCatalog:
    def test_replicas_get_derived_backend_names(self):
        catalog = ShardCatalog()
        catalog.add_shard("s0")
        first = catalog.add_replica("s0")
        second = catalog.add_replica("s0")
        assert first.name == "s0#r0" and second.name == "s0#r1"
        assert catalog.backends_for("s0") == ["s0", "s0#r0", "s0#r1"]
        assert [spec.name for spec in catalog.replicas("s0")] \
            == ["s0#r0", "s0#r1"]
        assert shard_of("s0#r1") == "s0"
        assert catalog.spec("s0#r1").name == "s0#r1"

    def test_replica_sep_reserved_in_shard_names(self):
        catalog = ShardCatalog()
        with pytest.raises(ShardConfigError, match="reserved"):
            catalog.add_shard("s0#r0")

    def test_replica_requires_known_shard(self):
        with pytest.raises(ShardConfigError, match="unknown shard"):
            ShardCatalog().add_replica("nope")

    def test_registry_round_trips_replicas(self, tmp_path):
        catalog = ShardCatalog()
        catalog.add_shard("s0", path=str(tmp_path / "s0.sqlite"))
        catalog.add_replica("s0", path=str(tmp_path / "s0r.sqlite"))
        catalog.assign("hlx_enzyme", "s0")
        reloaded = ShardCatalog.from_dict(catalog.to_dict())
        assert reloaded.backends_for("s0") == ["s0", "s0#r0"]
        assert reloaded.spec("s0#r0").path == str(tmp_path / "s0r.sqlite")
        assert reloaded.to_dict() == catalog.to_dict()


class TestSharedResilience:
    def test_harvest_plane_reexports_shared_primitives(self):
        # PR 4 grew these under repro.datahounds; the query path now
        # shares them from repro.resilience — same objects, both names
        from repro import resilience as shared
        from repro.datahounds import resilience as legacy
        assert legacy.CircuitBreaker is shared.CircuitBreaker
        assert legacy.RetryPolicy is shared.RetryPolicy
        assert legacy.ManualClock is shared.ManualClock

    def test_breakers_run_on_the_injected_clock(self):
        from repro.resilience import CircuitBreaker
        clock = ManualClock()
        breaker = CircuitBreaker("b", failure_threshold=2, cooldown_s=10.0,
                                 clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(10.5)
        assert breaker.allow()          # half-open probe
        breaker.record_success()
        assert breaker.state == CLOSED


class TestFailover:
    def test_dead_primary_fails_over_byte_identical(self, corpus, mono):
        policy = FaultPolicy(hedge=False)
        federation, chaos, registry = fault_federation(
            corpus, replicas=1, policy=policy)
        try:
            chaos.force("error")
            result = federation.query(FIG11_JOIN)
            assert result.complete and not result.failed_shards
            assert result.to_xml() == mono.query(FIG11_JOIN).to_xml()
            assert registry.get_counter("federation.failovers",
                                        shard=FAULTY) >= 1
        finally:
            federation.close()

    def test_replica_answers_keep_the_shard_name(self, corpus):
        policy = FaultPolicy(hedge=False)
        federation, chaos, registry = fault_federation(
            corpus, replicas=1, policy=policy)
        try:
            chaos.force("error")
            result = federation.query(FIG11_JOIN)
            shards = {binding.shard for row in result
                      for binding in row.bindings.values()}
            # bindings name the logical shard, not the replica backend,
            # so document fetch and dedup behave as if the primary spoke
            assert FAULTY in shards and f"{FAULTY}#r0" not in shards
        finally:
            federation.close()

    def test_same_backend_retry_before_failover(self, corpus):
        policy = FaultPolicy(hedge=False, retries_per_backend=2)
        federation, chaos, registry = fault_federation(
            corpus, policy=policy)
        try:
            fplan = plan_then_arm(federation, {
                chaos: ChaosPlan().fail_then_succeed(FAULTY, 1)})
            result = federation.executor.execute(fplan)
            assert result.complete
            assert registry.get_counter("federation.shard_retries",
                                        shard=FAULTY) == 1
            assert registry.counter_total("federation.failovers") == 0
        finally:
            federation.close()

    def test_retry_delay_uses_injected_sleep(self, corpus):
        policy = FaultPolicy(hedge=False, retries_per_backend=2,
                             retry_delay_s=0.25)
        federation, chaos, registry = fault_federation(
            corpus, policy=policy)
        slept: list[float] = []
        federation.executor.sleep = slept.append
        try:
            fplan = plan_then_arm(federation, {
                chaos: ChaosPlan().fail_then_succeed(FAULTY, 1)})
            assert federation.executor.execute(fplan).complete
            assert slept == [0.25]      # recorded, never actually slept
        finally:
            federation.close()

    def test_no_replica_degrades_to_partial(self, corpus):
        policy = FaultPolicy(hedge=False)
        federation, chaos, registry = fault_federation(
            corpus, policy=policy)
        try:
            chaos.force("error")
            result = federation.query(FIG11_JOIN)
            assert not result.complete
            assert result.failed_shards == [FAULTY]
            assert any(FAULTY in warning for warning in result.warnings)
            assert registry.counter_total("federation.partial_results") == 1
        finally:
            federation.close()


class TestCircuitBreaker:
    def test_breaker_opens_then_skips_the_dead_backend(self, corpus):
        policy = FaultPolicy(hedge=False, breaker_threshold=2,
                             breaker_cooldown_s=60.0)
        federation, chaos, registry = fault_federation(
            corpus, replicas=1, policy=policy)
        federation.executor.clock = ManualClock()
        try:
            chaos.force("error")
            federation.query(FIG11_JOIN)     # failure 1 on the primary
            federation.query(FIG11_JOIN)     # failure 2 → breaker opens
            states = federation.executor.breaker_states()
            assert states[FAULTY]["state"] == "open"
            assert states[FAULTY]["consecutive_failures"] == 2
            before = registry.get_counter("federation.breaker_skips",
                                          backend=FAULTY)
            result = federation.query(FIG11_JOIN)
            assert result.complete           # replica still answers
            assert registry.get_counter("federation.breaker_skips",
                                        backend=FAULTY) > before
            # the primary was skipped, not retried: no new failures
            assert federation.executor.breaker_states()[FAULTY][
                "consecutive_failures"] == 2
        finally:
            federation.close()

    def test_breaker_recovers_after_cooldown(self, corpus):
        policy = FaultPolicy(hedge=False, breaker_threshold=1,
                             breaker_cooldown_s=30.0)
        federation, chaos, registry = fault_federation(
            corpus, replicas=1, policy=policy)
        clock = ManualClock()
        federation.executor.clock = clock
        try:
            chaos.force("error")
            federation.query(FIG11_JOIN)
            assert federation.executor.breaker_states()[FAULTY][
                "state"] == "open"
            chaos.restore()
            clock.advance(31.0)
            result = federation.query(FIG11_JOIN)    # half-open probe
            assert result.complete
            assert federation.executor.breaker_states()[FAULTY][
                "state"] == "closed"
        finally:
            federation.close()

    def test_all_backends_open_degrades_to_partial(self, corpus):
        policy = FaultPolicy(hedge=False, breaker_threshold=1,
                             breaker_cooldown_s=60.0)
        federation, chaos, registry = fault_federation(
            corpus, policy=policy)
        federation.executor.clock = ManualClock()
        try:
            chaos.force("error")
            federation.query(FIG11_JOIN)     # opens the only breaker
            chaos.restore()
            result = federation.query(FIG11_JOIN)
            assert not result.complete
            assert result.failed_shards == [FAULTY]
            assert any("circuit breaker" in warning
                       for warning in result.warnings)
        finally:
            federation.close()

    def test_health_reports_breaker_and_replica_state(self, corpus):
        policy = FaultPolicy(hedge=False, breaker_threshold=1,
                             breaker_cooldown_s=60.0)
        federation, chaos, registry = fault_federation(
            corpus, replicas=1, policy=policy)
        try:
            chaos.force("error")
            federation.query(FIG11_JOIN)
            report = federation.health()
            assert report["status"] == "warn"
            checks = {check["name"]: check for check in report["checks"]}
            breaker_check = checks[f"breaker:{FAULTY}"]
            assert breaker_check["status"] == "warn"
            assert "skipped" in breaker_check["detail"]
            assert report["federation"]["breakers"][FAULTY][
                "state"] == "open"
            replicas = report["federation"]["replicas"]
            assert replicas[FAULTY]  # replica states listed per shard
        finally:
            federation.close()


#: a stall schedule with a tight safety valve — if interruption ever
#: breaks, tests error out in seconds instead of the default 30
STALL = dict(stall_rate=1.0, stall_s=5.0)


class TestHedging:
    def test_hedge_outraces_a_stalled_primary(self, corpus, mono):
        # hedge_delay_s=0.0 fires the hedge immediately; the stalled
        # primary loses, is interrupted, and its breaker takes the hit
        policy = FaultPolicy(hedge=True, hedge_delay_s=0.0,
                             breaker_threshold=3)
        federation, chaos, registry = fault_federation(
            corpus, replicas=1, policy=policy)
        try:
            fplan = plan_then_arm(federation, {
                chaos: ChaosPlan().add_backend(FAULTY, **STALL)})
            result = federation.executor.execute(fplan)
            assert result.complete
            assert result.to_xml() == mono.query(FIG11_JOIN).to_xml()
            assert registry.get_counter("federation.hedges",
                                        shard=FAULTY) >= 1
            assert registry.get_counter("federation.hedge_wins",
                                        shard=FAULTY) >= 1
            # losing the race counts against the stalled primary
            assert federation.executor.breaker_states()[FAULTY][
                "consecutive_failures"] >= 1
            assert chaos.injected.get("stall", 0) >= 1
        finally:
            federation.close()

    def test_repeated_hedge_losses_open_the_primary_breaker(self, corpus):
        policy = FaultPolicy(hedge=True, hedge_delay_s=0.0,
                             breaker_threshold=2,
                             breaker_cooldown_s=60.0)
        federation, chaos, registry = fault_federation(
            corpus, replicas=1, policy=policy)
        try:
            fplan = plan_then_arm(federation, {
                chaos: ChaosPlan().add_backend(FAULTY, **STALL)})
            for __ in range(3):
                assert federation.executor.execute(fplan).complete
            assert federation.executor.breaker_states()[FAULTY][
                "state"] == "open"
            # once open, the stalled primary is not even attempted:
            # queries settle at replica speed with no stall injected
            assert registry.get_counter("federation.breaker_skips",
                                        backend=FAULTY) >= 1
        finally:
            federation.close()


class TestDeadline:
    def test_deadline_abandons_stalled_shard(self, corpus):
        policy = FaultPolicy(hedge=True, hedge_delay_s=0.0,
                             breaker_threshold=5)
        federation, chaos, registry = fault_federation(
            corpus, replicas=1, policy=policy)
        replica = inject_faults(
            federation.catalog.warehouse(f"{FAULTY}#r0"),
            name=f"{FAULTY}#r0")
        try:
            # primary AND replica stall: nothing can answer for s1, so
            # the deadline ends the wait — well before the 5s valve
            stall = ChaosPlan().add_backend("*", **STALL)
            fplan = plan_then_arm(federation,
                                  {chaos: stall, replica: stall})
            started = time.perf_counter()
            result = federation.executor.execute(fplan, deadline_s=0.3)
            elapsed = time.perf_counter() - started
            assert not result.complete
            assert result.failed_shards == [FAULTY]
            assert elapsed < 3.0
            assert registry.counter_total("federation.interrupts") >= 1
        finally:
            federation.close()

    def test_trace_spans_annotate_attempts_and_backend(self, corpus):
        policy = FaultPolicy(hedge=False)
        federation, chaos, registry = fault_federation(
            corpus, replicas=1, policy=policy, trace=True)
        try:
            chaos.force("error")
            federation.query(FIG11_JOIN)
            root = federation.tracer.last_span("federated_query")
            span = next(s for s in root.children
                        if s.name == "shard_subquery"
                        and s.meta.get("shard") == FAULTY)
            assert span.meta["backend"] == f"{FAULTY}#r0"
            assert span.meta["attempts"] == 2
        finally:
            federation.close()


class TestChaosHarness:
    def test_plan_is_deterministic_and_replayable(self):
        plan = ChaosPlan(seed=11).add_backend(
            "s0", error_rate=0.3, stall_rate=0.2)
        first = [plan.next_outcome("s0") for __ in range(40)]
        plan.reset()
        second = [plan.next_outcome("s0") for __ in range(40)]
        assert first == second
        assert {"error", "stall"} & set(first)   # rates actually fire
        assert plan.injected == {
            ("s0", kind): second.count(kind)
            for kind in ("error", "stall") if kind in second}

    def test_per_backend_rngs_ignore_interleaving(self):
        plan = ChaosPlan(seed=7).add_backend("*", error_rate=0.5)
        solo = [plan.next_outcome("s0") for __ in range(20)]
        plan.reset()
        mixed = []
        for __ in range(20):
            mixed.append(plan.next_outcome("s0"))
            plan.next_outcome("s1")      # interleaved traffic
        assert solo == mixed

    def test_script_consumed_before_rates(self):
        plan = ChaosPlan().fail_then_succeed("s0", 2)
        outcomes = [plan.next_outcome("s0") for __ in range(4)]
        assert outcomes == ["error", "error", "ok", "ok"]

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="sum"):
            ChaosSpec(error_rate=0.7, stall_rate=0.5)
        with pytest.raises(ValueError, match="unknown scripted"):
            ChaosSpec(script=("explode",))
        with pytest.raises(ValueError, match="unknown forced"):
            FaultInjectingBackend(inner=None).force("explode")

    def test_forced_error_counts_and_restores(self):
        class Inner:
            name = "inner"

            def execute(self, sql, params=()):
                return "rows"

        backend = FaultInjectingBackend(Inner(), name="s0")
        backend.force("error")
        with pytest.raises(StorageError, match="injected error"):
            backend.execute("SELECT 1")
        backend.restore()
        assert backend.execute("SELECT 1") == "rows"
        assert backend.injected == {"error": 1}

    def test_stall_is_interruptible(self):
        class Inner:
            name = "inner"

            def execute(self, sql, params=()):
                return "rows"

            def interrupt(self):
                self.interrupted = True

        inner = Inner()
        plan = ChaosPlan().add_backend("s0", stall_rate=1.0, stall_s=30.0)
        backend = FaultInjectingBackend(inner, plan=plan, name="s0")
        caught: list[Exception] = []

        def run():
            try:
                backend.execute("SELECT 1")
            except StorageError as exc:
                caught.append(exc)

        worker = threading.Thread(target=run)
        worker.start()
        time.sleep(0.05)                  # let the stall begin
        backend.interrupt()               # executor-style cancellation
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert caught and "interrupted" in str(caught[0])
        assert getattr(inner, "interrupted", False)  # forwarded

    def test_loads_stay_clean_under_chaos(self):
        class Inner:
            name = "inner"

            def executemany(self, sql, seq):
                return "loaded"

        backend = FaultInjectingBackend(Inner(), name="s0")
        backend.force("error")
        # chaos targets the query path; loads must not corrupt the
        # byte-identity oracle
        assert backend.executemany("INSERT", [()]) == "loaded"
