"""Distributed tracing through the federation: one connected span
tree per request across the coordinator, the scatter-gather worker
threads, and every shard warehouse's SQL.

Regression anchor: ScatterGatherExecutor workers used to synthesize
detached per-shard spans after the fact (and bulk-load worker spans
started orphaned trees), so a trace of a federated query was a forest
with no shard detail. Now workers open real spans parented under the
coordinator's ``federated_query`` span via the explicit cross-thread
handoff, and shard warehouses share the coordinator's tracer.
"""

from __future__ import annotations

import pytest

from tests.federation.conftest import (
    FIG11_JOIN,
    ROUTING_PARTITIONED,
    ROUTING_PER_SOURCE,
    build_federation,
)


@pytest.fixture
def traced_fed(corpus):
    federation = build_federation(corpus, ROUTING_PER_SOURCE,
                                  metrics=False, trace=True)
    yield federation
    federation.close()


@pytest.fixture
def traced_partitioned(corpus):
    federation = build_federation(corpus, ROUTING_PARTITIONED,
                                  metrics=False, trace=True)
    yield federation
    federation.close()


def assert_connected(root):
    """Every span in the tree carries the root's trace id and a parent
    link to the span it hangs under — a single connected tree."""
    assert root.trace_id
    for span in root.walk():
        assert span.trace_id == root.trace_id, span.name
        for child in span.children:
            assert child.parent_id == span.span_id, child.name


class TestFederatedQueryTrace:
    def test_single_tree_with_shard_subqueries(self, traced_fed):
        result = traced_fed.query(FIG11_JOIN)
        assert len(result) > 0
        root = traced_fed.tracer.last_span("federated_query")
        assert root is not None
        assert_connected(root)
        shard_spans = [s for s in root.children
                       if s.name == "shard_subquery"]
        assert {s.meta["shard"] for s in shard_spans} == {"s0", "s1"}
        assert root.find("coordinator_join") is not None

    def test_shard_spans_contain_shard_side_sql(self, traced_fed):
        traced_fed.query(FIG11_JOIN)
        root = traced_fed.tracer.last_span("federated_query")
        for shard_span in root.children:
            if shard_span.name != "shard_subquery":
                continue
            # the shard warehouse's own query pipeline nests inside the
            # worker's span: its SQL statements are in this subtree
            query_span = shard_span.find("query")
            assert query_span is not None, shard_span.meta
            assert query_span.all_statements()
            assert shard_span.counters.get("rows_shipped", 0) >= 0

    def test_partitioned_source_fans_out_per_shard(
            self, traced_partitioned):
        traced_partitioned.query(
            'FOR $a IN document("hlx_embl.inv")/hlx_n_sequence '
            'RETURN $a//embl_accession_number')
        root = traced_partitioned.tracer.last_span("federated_query")
        assert_connected(root)
        shards = [s.meta["shard"] for s in root.children
                  if s.name == "shard_subquery"]
        assert sorted(shards) == ["s1", "s2", "s3"]

    def test_plan_span_precedes_scatter(self, traced_fed):
        traced_fed.query(FIG11_JOIN)
        tracer = traced_fed.tracer
        plan = tracer.last_span("plan")
        scatter = tracer.last_span("federated_query")
        assert plan is not None and scatter is not None
        assert plan.meta["fanout"] >= 2
        assert plan.end <= scatter.start + 1e-6

    def test_trace_counters_survive_worker_threads(self, traced_fed):
        result = traced_fed.query(FIG11_JOIN)
        root = traced_fed.tracer.last_span("federated_query")
        shipped = root.total_counter("rows_shipped")
        assert shipped > 0
        join = root.find("coordinator_join")
        assert join.counters.get("combos", 0) >= len(result)


class TestSlowQueryAttribution:
    def test_slow_log_carries_shard_and_trace_id(self, corpus):
        federation = build_federation(corpus, ROUTING_PER_SOURCE,
                                      metrics=False, trace=True)
        try:
            # threshold 0: every shard-side query is "slow"
            for name in federation.catalog.shard_names():
                warehouse = federation.catalog.warehouse(name)
                warehouse.slow_queries.threshold_ms = 0.0
            federation.query(FIG11_JOIN)
            root = federation.tracer.last_span("federated_query")
            records = [record
                       for name in federation.catalog.shard_names()
                       for record in federation.catalog.warehouse(
                           name).slow_queries.records()]
            assert records
            by_shard = {record.shard for record in records}
            assert by_shard <= {"s0", "s1", "s2", "s3"}
            assert "" not in by_shard
            # every slow record points back into the request's trace
            assert {record.trace_id for record in records} \
                == {root.trace_id}
        finally:
            federation.close()

    def test_untraced_slow_log_has_empty_trace_id(self, corpus):
        federation = build_federation(corpus, ROUTING_PER_SOURCE,
                                      metrics=False)
        try:
            warehouse = federation.catalog.warehouse("s0")
            warehouse.slow_queries.threshold_ms = 0.0
            federation.query(
                'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'RETURN $a//enzyme_id')
            (record, *__) = warehouse.slow_queries.records()
            assert record.shard == "s0"
            assert record.trace_id == ""
            assert record.to_dict()["shard"] == "s0"
        finally:
            federation.close()


class TestBulkLoadWorkerSpans:
    def test_worker_shred_spans_attach_to_fanout(self, corpus):
        """Regression: ``--workers`` shred spans became top-level
        orphans (one disconnected root per document); they must nest
        under the coordinating thread's ``shred_fanout`` span."""
        from repro.engine import Warehouse
        warehouse = Warehouse(trace=True, metrics=False)
        try:
            count = warehouse.load_text("hlx_enzyme",
                                        corpus.enzyme_text, workers=3)
            tracer = warehouse.tracer
            fanout = tracer.last_span("shred_fanout")
            assert fanout is not None
            shreds = [span for span in fanout.children
                      if span.name == "shred"]
            assert len(shreds) == count
            assert {span.trace_id for span in shreds} \
                == {fanout.trace_id}
            for span in shreds:
                assert span.end is not None
                assert span.parent_id == fanout.span_id
            # no shred span escaped to the top level
            for top in tracer.spans:
                assert top.name != "shred"
        finally:
            warehouse.close()

    def test_inline_load_unchanged(self, corpus):
        """workers=0 keeps the inline path: no fan-out span at all."""
        from repro.engine import Warehouse
        warehouse = Warehouse(trace=True, metrics=False)
        try:
            warehouse.load_text("hlx_enzyme", corpus.enzyme_text)
            assert warehouse.tracer.last_span("shred_fanout") is None
        finally:
            warehouse.close()
