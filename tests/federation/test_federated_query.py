"""End-to-end federated querying.

The headline invariant: a federated query returns **byte-identical**
tagged XML to the same query on a monolithic warehouse loaded from the
same releases — across shard layouts, DNF disjunctions, constructors
and negation. Plus the failure story: losing a shard degrades to
partial results with a warning, never an exception.
"""

import pytest

from repro.federation import FederatedXomatiQ, ShardCatalog
from repro.obs import MetricsRegistry
from repro.xmlkit import serialize

from tests.federation.conftest import (
    FIG11_JOIN,
    ROUTING_PARTITIONED,
    ROUTING_PER_SOURCE,
    build_federation,
)

QUERIES = {
    "fig11_join": FIG11_JOIN,
    "keyword_single_source": '''
        FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE contains($e//catalytic_activity, "ketone")
        RETURN $e/enzyme_id, $e//enzyme_description
    ''',
    "or_across_shards": '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE ($a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
               AND contains($b//catalytic_activity, "ketone", any))
           OR seqcontains($a//sequence, "acgt")
        RETURN $a//embl_accession_number, $b/enzyme_id
    ''',
    "negated_join": '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE seqcontains($a//sequence, "acgtac")
          AND NOT ($a//qualifier[@qualifier_type = "EC_number"]
                   = $b/enzyme_id)
          AND contains($b//catalytic_activity, "ketone")
        RETURN $a//embl_accession_number, $b/enzyme_id
    ''',
    "constructor_join": '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
        RETURN <hit ec="{ $b/enzyme_id }">
                 <acc>{ $a//embl_accession_number }</acc>
               </hit>
    ''',
    "inequality_join": '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE contains($a, "cdc6", any)
          AND $a//qualifier[@qualifier_type = "EC_number"] < $b/enzyme_id
        RETURN $a//embl_accession_number, $b/enzyme_id
    ''',
    "three_sources": '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
            $p IN document("hlx_sprot.all")/hlx_n_sequence/db_entry
        WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
          AND $b//reference = $p//sprot_accession_number
        RETURN $b/enzyme_id, $p//sprot_accession_number,
               $a//embl_accession_number
    ''',
}


@pytest.fixture(scope="module", params=["per_source", "partitioned"])
def federation(request, fed_per_source, fed_partitioned):
    if request.param == "per_source":
        return fed_per_source
    return fed_partitioned


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_matches_monolithic_xml(self, name, mono, federation):
        text = QUERIES[name]
        expected = mono.query(text)
        got = federation.query(text)
        assert got.complete
        assert got.columns == expected.columns
        assert got.to_xml() == expected.to_xml()
        assert got.to_table() == expected.to_table()

    def test_cartesian_product_matches(self, mono, fed_per_source):
        text = '''
        FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
            $o IN document("hlx_omim.DEFAULT")/hlx_disease/db_entry
        WHERE contains($e//catalytic_activity, "ketone")
        RETURN $e/enzyme_id, $o/mim_id
        '''
        assert (fed_per_source.query(text).to_xml()
                == mono.query(text).to_xml())


class TestLoading:
    def test_partitioned_load_is_contiguous_and_complete(self, corpus):
        federation = build_federation(corpus, ROUTING_PARTITIONED)
        counts = federation.catalog.warehouse("s1").stats()
        assert counts["documents:hlx_embl"] > 0
        total = sum(
            federation.catalog.warehouse(shard).stats().get(
                "documents:hlx_embl", 0)
            for shard in ("s1", "s2", "s3"))
        assert total == corpus.sizes()["hlx_embl"]
        federation.close()

    def test_unrouted_source_load_rejected(self, corpus):
        catalog = ShardCatalog()
        catalog.add_shard("s0")
        federation = FederatedXomatiQ(catalog, metrics=False)
        from repro.errors import ShardConfigError
        with pytest.raises(ShardConfigError, match="not routed"):
            federation.load_text("hlx_enzyme", corpus.enzyme_text)
        federation.close()


class TestDocumentFetch:
    def test_fetch_document_goes_to_owning_shard(self, mono,
                                                 fed_partitioned):
        expected = mono.query(FIG11_JOIN)
        got = fed_partitioned.query(FIG11_JOIN)
        row_mono, row_fed = expected.rows[0], got.rows[0]
        doc_mono = mono.fetch_document(row_mono.bindings["a"])
        doc_fed = fed_partitioned.fetch_document(row_fed.bindings["a"])
        assert serialize(doc_fed) == serialize(doc_mono)

    def test_fetch_document_xml_by_variable(self, fed_per_source):
        got = fed_per_source.query(FIG11_JOIN)
        xml = fed_per_source.fetch_document_xml(got.rows[0], "b")
        assert "<hlx_enzyme>" in xml


class TestFailureSemantics:
    @pytest.fixture()
    def disk_federation(self, tmp_path, corpus):
        catalog = ShardCatalog()
        catalog.add_shard("s0", path=str(tmp_path / "s0.sqlite"))
        catalog.add_shard("s1", path=str(tmp_path / "s1.sqlite"))
        catalog.add_shard("s2", path=str(tmp_path / "s2.sqlite"))
        catalog.assign("hlx_enzyme", "s0")
        catalog.assign("hlx_embl", "s1", "s2")
        catalog.assign("hlx_sprot", "s0")
        catalog.assign("hlx_omim", "s0")
        catalog.create_shards()
        registry = MetricsRegistry()
        federation = FederatedXomatiQ(catalog, metrics=registry)
        federation.load_corpus(corpus)
        federation.close()
        reopened = FederatedXomatiQ(
            ShardCatalog.from_dict(catalog.to_dict()), metrics=registry)
        yield reopened, tmp_path, registry
        reopened.close()

    def test_lost_shard_degrades_to_partial_results(self,
                                                    disk_federation):
        federation, tmp_path, registry = disk_federation
        baseline = federation.query(FIG11_JOIN)
        assert baseline.complete and len(baseline) > 0

        (tmp_path / "s2.sqlite").unlink()
        federation.catalog._warehouses.pop("s2", None)  # drop pool entry
        partial = federation.query(FIG11_JOIN)
        assert not partial.complete
        assert 0 < len(partial) < len(baseline) + 1
        assert any("s2" in warning for warning in partial.warnings)
        assert registry.get_counter("federation.shard_errors",
                                    shard="s2") >= 1

    def test_lost_shard_surfaces_in_health_and_stats(self,
                                                     disk_federation):
        federation, tmp_path, registry = disk_federation
        (tmp_path / "s1.sqlite").unlink()
        federation.catalog._warehouses.pop("s1", None)
        report = federation.health()
        assert report["status"] == "warn"
        assert report["shards"]["s1"]["status"] == "unreachable"
        stats = federation.stats()
        assert stats["shards_unreachable"] == 1

    def test_fully_lost_route_answers_empty_with_warning(self, tmp_path,
                                                         corpus):
        catalog = ShardCatalog()
        catalog.add_shard("s0", path=str(tmp_path / "s0.sqlite"))
        catalog.assign("hlx_enzyme", "s0")
        catalog.create_shards()
        federation = FederatedXomatiQ(catalog, metrics=False)
        federation.load_text("hlx_enzyme", corpus.enzyme_text)
        federation.close()

        (tmp_path / "s0.sqlite").unlink()
        reopened = FederatedXomatiQ(
            ShardCatalog.from_dict(catalog.to_dict()), metrics=False)
        result = reopened.query(QUERIES["keyword_single_source"])
        assert len(result) == 0
        assert not result.complete
        reopened.close()


class TestSimulatedLatency:
    def test_one_round_trip_per_shard_task(self, corpus, mono):
        catalog = ShardCatalog()
        catalog.add_shard("s0", latency_s=0.001)
        catalog.add_shard("s1", latency_s=0.005)
        catalog.assign("hlx_enzyme", "s0")
        catalog.assign("hlx_embl", "s1")
        catalog.assign("hlx_sprot", "s0")
        catalog.assign("hlx_omim", "s0")
        federation = FederatedXomatiQ(catalog, metrics=False)
        federation.load_corpus(corpus)

        slept = []
        federation.executor.sleep = slept.append
        result = federation.query(FIG11_JOIN)
        # one simulated round-trip per (subplan, shard) task
        assert sorted(slept) == [0.001, 0.005]
        # latency shapes timing only, never answers
        assert result.to_xml() == mono.query(FIG11_JOIN).to_xml()
        federation.close()


class TestObservability:
    def test_federation_metrics_recorded(self, corpus):
        registry = MetricsRegistry()
        federation = build_federation(corpus, ROUTING_PER_SOURCE,
                                      metrics=registry)
        federation.query(FIG11_JOIN)
        assert registry.get_counter("federation.queries") == 1
        assert registry.counter_total("federation.fanout") == 2
        assert registry.counter_total("federation.rows_shipped") > 0
        snapshot = registry.snapshot()
        histograms = {h["name"] for h in snapshot["histograms"]}
        assert "federation.shard_seconds" in histograms
        assert "federation.query_seconds" in histograms
        # shard-level query metrics land in the same registry
        assert registry.counter_total("query.total") >= 2
        federation.close()

    def test_trace_carries_per_shard_spans(self, corpus):
        federation = build_federation(corpus, ROUTING_PER_SOURCE,
                                      metrics=False, trace=True)
        result = federation.query(FIG11_JOIN)
        assert result.trace is not None
        assert result.trace.name == "federated_query"
        shard_spans = [span for span in result.trace.children
                       if span.name == "shard_subquery"]
        assert {span.meta["shard"] for span in shard_spans} \
            == {"s0", "s1"}
        federation.close()

    def test_route_fast_path_used_for_colocated_sources(self, corpus,
                                                        mono):
        routing = {source: ("only",) for source in
                   ("hlx_enzyme", "hlx_embl", "hlx_sprot", "hlx_omim")}
        federation = build_federation(corpus, routing)
        plan = federation.plan(FIG11_JOIN)
        assert plan.route_shard == "only"
        assert (federation.query(FIG11_JOIN).to_xml()
                == mono.query(FIG11_JOIN).to_xml())
        federation.close()
