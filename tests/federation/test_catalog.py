"""ShardCatalog: registration, routing, registry file round-trips."""

import pytest

from repro.engine import Warehouse
from repro.errors import ShardConfigError, ShardUnreachableError
from repro.federation import ShardCatalog


class TestRegistration:
    def test_add_and_lookup(self):
        catalog = ShardCatalog()
        spec = catalog.add_shard("s0", path="x.sqlite")
        assert spec.backend == "sqlite"
        assert catalog.shard_names() == ["s0"]
        assert catalog.spec("s0").path == "x.sqlite"

    def test_duplicate_shard_rejected(self):
        catalog = ShardCatalog()
        catalog.add_shard("s0")
        with pytest.raises(ShardConfigError, match="already registered"):
            catalog.add_shard("s0")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ShardConfigError, match="unknown backend"):
            ShardCatalog().add_shard("s0", backend="oracle")

    def test_unknown_shard_spec_raises(self):
        with pytest.raises(ShardConfigError, match="unknown shard"):
            ShardCatalog().spec("nope")


class TestRouting:
    def test_assign_single_and_partitioned(self):
        catalog = ShardCatalog()
        catalog.add_shard("s0")
        catalog.add_shard("s1")
        catalog.assign("hlx_enzyme", "s0")
        catalog.assign("hlx_embl", "s0", "s1")
        assert catalog.shards_for("hlx_enzyme") == ["s0"]
        assert catalog.shards_for("hlx_embl") == ["s0", "s1"]
        assert catalog.shards_for("unrouted") == []
        assert catalog.shard_position("hlx_embl", "s1") == 1

    def test_assign_to_unknown_shard_rejected(self):
        catalog = ShardCatalog()
        with pytest.raises(ShardConfigError, match="unknown shard"):
            catalog.assign("hlx_enzyme", "ghost")

    def test_assign_same_shard_twice_rejected(self):
        catalog = ShardCatalog()
        catalog.add_shard("s0")
        with pytest.raises(ShardConfigError, match="twice"):
            catalog.assign("hlx_embl", "s0", "s0")

    def test_reassign_replaces_route(self):
        catalog = ShardCatalog()
        catalog.add_shard("s0")
        catalog.add_shard("s1")
        catalog.assign("hlx_enzyme", "s0")
        catalog.assign("hlx_enzyme", "s1")
        assert catalog.shards_for("hlx_enzyme") == ["s1"]


class TestRegistryFile:
    def test_save_load_round_trip(self, tmp_path):
        catalog = ShardCatalog()
        catalog.add_shard("s0", path=str(tmp_path / "s0.sqlite"))
        catalog.add_shard("m0", backend="minidb")
        catalog.assign("hlx_enzyme", "s0")
        catalog.assign("hlx_embl", "s0", "m0")
        path = tmp_path / "shards.json"
        catalog.save(path)

        loaded = ShardCatalog.load(path)
        # the JSON registry is written with sorted keys; routing order
        # (the part that matters) lives in per-source arrays
        assert sorted(loaded.shard_names()) == ["m0", "s0"]
        assert loaded.spec("m0").backend == "minidb"
        assert loaded.sources() == {"hlx_enzyme": ["s0"],
                                    "hlx_embl": ["s0", "m0"]}

    def test_latency_round_trips(self, tmp_path):
        catalog = ShardCatalog()
        catalog.add_shard("remote", latency_s=0.02)
        catalog.add_shard("local")
        path = tmp_path / "shards.json"
        catalog.save(path)
        loaded = ShardCatalog.load(path)
        assert loaded.spec("remote").latency_s == 0.02
        # zero latency is the default and stays out of the JSON
        assert loaded.spec("local").latency_s == 0.0
        assert "latency_s" not in loaded.spec("local").to_dict()

    def test_negative_latency_rejected(self):
        with pytest.raises(ShardConfigError, match="latency_s"):
            ShardCatalog().add_shard("s0", latency_s=-1.0)

    def test_string_route_accepted(self):
        catalog = ShardCatalog.from_dict({
            "version": 1,
            "shards": {"s0": {"path": ":memory:"}},
            "sources": {"hlx_enzyme": "s0"}})
        assert catalog.shards_for("hlx_enzyme") == ["s0"]

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ShardConfigError, match="not valid JSON"):
            ShardCatalog.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ShardConfigError, match="cannot read"):
            ShardCatalog.load(tmp_path / "absent.json")

    def test_wrong_version_rejected(self):
        with pytest.raises(ShardConfigError, match="version"):
            ShardCatalog.from_dict({"version": 99, "shards": {}})


class TestWarehousePool:
    def test_memory_shard_opens_lazily(self):
        catalog = ShardCatalog()
        catalog.add_shard("s0")
        warehouse = catalog.warehouse("s0")
        assert warehouse is catalog.warehouse("s0")  # cached
        catalog.close()

    def test_missing_file_is_unreachable(self, tmp_path):
        catalog = ShardCatalog()
        catalog.add_shard("s0", path=str(tmp_path / "gone.sqlite"))
        with pytest.raises(ShardUnreachableError, match="does not exist"):
            catalog.warehouse("s0")

    def test_create_shards_then_reopen(self, tmp_path):
        path = tmp_path / "s0.sqlite"
        catalog = ShardCatalog()
        catalog.add_shard("s0", path=str(path))
        catalog.create_shards()
        assert path.exists()
        assert catalog.warehouse("s0").stats()["documents"] == 0
        catalog.close()

    def test_attached_warehouse_not_owned(self):
        catalog = ShardCatalog()
        warehouse = Warehouse(metrics=False)
        catalog.attach("s0", warehouse)
        assert catalog.warehouse("s0") is warehouse
        catalog.close()
        # still usable: close() must not touch attached warehouses
        assert warehouse.stats()["documents"] == 0
        warehouse.close()
