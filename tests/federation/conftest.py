"""Federation fixtures: a monolithic reference warehouse plus shard
layouts over the same session corpus (byte-identity tests compare the
two)."""

from __future__ import annotations

import pytest

from repro.engine import Warehouse
from repro.federation import FederatedXomatiQ, ShardCatalog

#: the paper's Figure 11 cross-database join (EMBL × ENZYME)
FIG11_JOIN = '''
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description
'''

#: one shard per source — the pure scatter case
ROUTING_PER_SOURCE = {
    "hlx_enzyme": ("s0",),
    "hlx_embl": ("s1",),
    "hlx_sprot": ("s2",),
    "hlx_omim": ("s3",),
}

#: EMBL horizontally partitioned across three shards
ROUTING_PARTITIONED = {
    "hlx_enzyme": ("s0",),
    "hlx_embl": ("s1", "s2", "s3"),
    "hlx_sprot": ("s0",),
    "hlx_omim": ("s1",),
}


def build_federation(corpus, routing, metrics=False, replicas=0,
                     **kwargs) -> FederatedXomatiQ:
    """An in-memory federation with ``routing`` and the corpus loaded;
    ``replicas`` in-memory replicas per shard (failover/hedging
    targets)."""
    catalog = ShardCatalog()
    names = sorted({shard for route in routing.values()
                    for shard in route})
    for name in names:
        catalog.add_shard(name)
        for __ in range(replicas):
            catalog.add_replica(name)
    for source, route in routing.items():
        catalog.assign(source, *route)
    federation = FederatedXomatiQ(catalog, metrics=metrics, **kwargs)
    federation.load_corpus(corpus)
    return federation


@pytest.fixture(scope="module")
def mono(corpus):
    """Monolithic sqlite reference over the session corpus."""
    warehouse = Warehouse(metrics=False)
    warehouse.load_corpus(corpus)
    yield warehouse
    warehouse.close()


@pytest.fixture(scope="module")
def fed_per_source(corpus):
    federation = build_federation(corpus, ROUTING_PER_SOURCE)
    yield federation
    federation.close()


@pytest.fixture(scope="module")
def fed_partitioned(corpus):
    federation = build_federation(corpus, ROUTING_PARTITIONED)
    yield federation
    federation.close()
