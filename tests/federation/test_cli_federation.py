"""CLI federation workflow: shard verbs plus --shard-map plumbing."""

import json

import pytest

from repro.cli import main

JOIN = ('FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry, '
        '$b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry '
        'WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id '
        'RETURN $a//embl_accession_number, $b/enzyme_id')

KEYWORD = ('FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry '
           'WHERE contains($e//catalytic_activity, "ketone") '
           'RETURN $e/enzyme_id')


@pytest.fixture
def corpus_dir(tmp_path, corpus):
    out = tmp_path / "corpus"
    out.mkdir()
    (out / "enzyme.dat").write_text(corpus.enzyme_text, encoding="utf-8")
    (out / "embl.dat").write_text(corpus.embl_text, encoding="utf-8")
    return out


@pytest.fixture
def shard_map(tmp_path):
    """A two-shard map: enzyme on s0, embl partitioned over s0+s1."""
    path = tmp_path / "shards.json"
    assert main(["shard", "add", "--map", str(path), "s0",
                 "--path", str(tmp_path / "s0.sqlite")]) == 0
    assert main(["shard", "add", "--map", str(path), "s1",
                 "--path", str(tmp_path / "s1.sqlite")]) == 0
    assert main(["shard", "assign", "--map", str(path),
                 "hlx_enzyme", "s0"]) == 0
    assert main(["shard", "assign", "--map", str(path),
                 "hlx_embl", "s0", "s1"]) == 0
    assert main(["shard", "init", "--map", str(path)]) == 0
    return str(path)


@pytest.fixture
def loaded_map(shard_map, corpus_dir):
    assert main(["load", "--shard-map", shard_map, "--source",
                 "hlx_enzyme", str(corpus_dir / "enzyme.dat")]) == 0
    assert main(["load", "--shard-map", shard_map, "--source",
                 "hlx_embl", str(corpus_dir / "embl.dat")]) == 0
    return shard_map


class TestShardVerbs:
    def test_add_assign_list(self, shard_map, capsys):
        capsys.readouterr()
        assert main(["shard", "list", "--map", shard_map]) == 0
        out = capsys.readouterr().out
        assert "s0" in out and "s1" in out
        assert "hlx_embl" in out and "s0, s1" in out

    def test_list_json_round_trips(self, shard_map, capsys):
        capsys.readouterr()
        assert main(["shard", "list", "--map", shard_map, "--json"]) == 0
        registry = json.loads(capsys.readouterr().out)
        assert registry["version"] == 1
        assert registry["sources"]["hlx_embl"] == ["s0", "s1"]

    def test_init_creates_shard_databases(self, tmp_path, shard_map):
        assert (tmp_path / "s0.sqlite").exists()
        assert (tmp_path / "s1.sqlite").exists()

    def test_duplicate_add_reported_cleanly(self, shard_map, capsys):
        code = main(["shard", "add", "--map", shard_map, "s0"])
        assert code == 1
        assert "already registered" in capsys.readouterr().err


class TestFederatedCommands:
    def test_load_reports_per_shard_counts(self, shard_map, corpus_dir,
                                           capsys):
        assert main(["load", "--shard-map", shard_map, "--source",
                     "hlx_embl", str(corpus_dir / "embl.dat")]) == 0
        out = capsys.readouterr().out
        assert "s0:" in out and "s1:" in out

    def test_load_without_target_errors(self, corpus_dir, capsys):
        assert main(["load", "--source", "hlx_enzyme",
                     str(corpus_dir / "enzyme.dat")]) == 2
        assert "provide --db or --shard-map" in capsys.readouterr().err

    def test_query_scatter_gather(self, loaded_map, capsys):
        capsys.readouterr()
        assert main(["query", "--shard-map", loaded_map, JOIN]) == 0
        out = capsys.readouterr().out
        assert "embl_accession_number" in out
        assert "row(s)" in out

    def test_query_xml_output(self, loaded_map, capsys):
        capsys.readouterr()
        assert main(["query", "--shard-map", loaded_map, "--xml",
                     KEYWORD]) == 0
        assert "<xomatiq_results" in capsys.readouterr().out

    def test_stats_aggregates_across_shards(self, loaded_map, corpus,
                                            capsys):
        capsys.readouterr()
        assert main(["stats", "--shard-map", loaded_map, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["documents:hlx_embl"] == corpus.sizes()["hlx_embl"]
        assert stats["shards"] == 2

    def test_stats_per_shard_breakdown(self, loaded_map, capsys):
        capsys.readouterr()
        assert main(["stats", "--shard-map", loaded_map, "--per-shard",
                     "--json"]) == 0
        per_shard = json.loads(capsys.readouterr().out)
        assert set(per_shard) == {"s0", "s1"}
        assert per_shard["s0"]["documents:hlx_enzyme"] > 0

    def test_health_rolls_up_shards(self, loaded_map, capsys):
        capsys.readouterr()
        assert main(["health", "--shard-map", loaded_map, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "ok"
        assert set(report["shards"]) == {"s0", "s1"}

    def test_metrics_exposes_federation_names(self, loaded_map, capsys):
        capsys.readouterr()
        assert main(["metrics", "--shard-map", loaded_map, JOIN]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        counters = {c["name"] for c in snapshot["counters"]}
        assert "federation.queries" in counters
        assert "federation.rows_shipped" in counters
        histograms = {h["name"] for h in snapshot["histograms"]}
        assert "federation.shard_seconds" in histograms

    def test_query_lost_shard_warns_but_answers(self, tmp_path,
                                                loaded_map, capsys):
        (tmp_path / "s1.sqlite").unlink()
        capsys.readouterr()
        assert main(["query", "--shard-map", loaded_map, JOIN]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err and "s1" in captured.err
        assert "row(s)" in captured.out


class TestAnalyzeVerb:
    def test_analyze_writes_sibling_stats_file(self, tmp_path,
                                               loaded_map, capsys):
        capsys.readouterr()
        assert main(["analyze", "--shard-map", loaded_map]) == 0
        out = capsys.readouterr().out
        assert "analyzed 2 shard(s)" in out
        assert "s0" in out and "complete" in out
        assert (tmp_path / "shards.stats.json").exists()

    def test_analyze_json_summary(self, loaded_map, corpus, capsys):
        capsys.readouterr()
        assert main(["analyze", "--shard-map", loaded_map,
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shards_analyzed"] == 2
        total = sum(record["documents"]
                    for record in summary["shards"].values())
        sizes = corpus.sizes()
        assert total == sizes["hlx_enzyme"] + sizes["hlx_embl"]

    def test_analyze_custom_stats_path(self, tmp_path, loaded_map,
                                       capsys):
        target = tmp_path / "custom.stats.json"
        capsys.readouterr()
        assert main(["analyze", "--shard-map", loaded_map,
                     "--stats", str(target)]) == 0
        assert target.exists()
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert set(payload["shards"]) == {"s0", "s1"}

    def test_query_after_analyze_uses_persisted_stats(self, tmp_path,
                                                      loaded_map,
                                                      capsys):
        assert main(["analyze", "--shard-map", loaded_map]) == 0
        capsys.readouterr()
        # a fresh CLI invocation (new process, in spirit) picks the
        # sibling stats file up and still answers correctly
        assert main(["query", "--shard-map", loaded_map, JOIN]) == 0
        assert "row(s)" in capsys.readouterr().out


class TestReplicaVerbs:
    def test_add_replica_round_trips(self, tmp_path, shard_map, capsys):
        capsys.readouterr()
        assert main(["shard", "add-replica", "--map", shard_map, "s0",
                     "--path", str(tmp_path / "s0-r0.sqlite")]) == 0
        assert "s0#r0" in capsys.readouterr().out
        assert main(["shard", "init", "--map", shard_map]) == 0
        assert (tmp_path / "s0-r0.sqlite").exists()
        capsys.readouterr()
        assert main(["shard", "list", "--map", shard_map, "--json"]) == 0
        registry = json.loads(capsys.readouterr().out)
        replicas = registry["shards"]["s0"]["replicas"]
        assert replicas[0]["path"].endswith("s0-r0.sqlite")

    def test_add_replica_unknown_shard_fails(self, shard_map, capsys):
        assert main(["shard", "add-replica", "--map", shard_map,
                     "s9"]) == 1
        assert "unknown shard" in capsys.readouterr().err


class TestHealthExitCodes:
    """Nagios-style tri-state: 0 = ok, 2 = degraded, 1 = broken.
    (The healthy exit-0 case is ``test_health_rolls_up_shards``.)"""

    def test_replicaless_shard_missing_warns(self, tmp_path, loaded_map,
                                             capsys):
        (tmp_path / "s1.sqlite").unlink()
        capsys.readouterr()
        assert main(["health", "--shard-map", loaded_map, "--json"]) == 2
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "warn"

    def test_all_replicas_down_fails(self, tmp_path, loaded_map, capsys):
        # a replica registered but never initialised: the shard
        # promised redundancy and currently has none
        assert main(["shard", "add-replica", "--map", loaded_map, "s0",
                     "--path", str(tmp_path / "ghost.sqlite")]) == 0
        capsys.readouterr()
        assert main(["health", "--shard-map", loaded_map, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "fail"
        assert "redundancy lost" in json.dumps(report["checks"])
