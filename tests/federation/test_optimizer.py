"""Cost-based federation optimizer: pruning, ordering, semi-joins.

Every optimization must preserve the headline invariant — federated
answers byte-identical to the monolithic warehouse — so each scenario
here compares against a monolith over the same corpus. The optimizer
is also strictly opt-in: with an empty statistics catalog the planner
must behave exactly as the rule-based planner always did.
"""

import pytest

import repro.federation.executor as executor_module
from repro.errors import ShardUnreachableError
from repro.engine import Warehouse
from repro.obs import MetricsRegistry
from repro.synth import build_corpus

from tests.federation.conftest import (
    FIG11_JOIN,
    ROUTING_PARTITIONED,
    build_federation,
)

#: skewed corpus: a small build side (enzyme) against a large probe
#: side (embl) makes semi-join pushdown clearly worthwhile
JOIN_CORPUS = dict(seed=17, enzyme_count=120, embl_count=400,
                   sprot_count=10)

SELECTIVE_JOIN = '''
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
  AND contains($b//catalytic_activity, "ketone")
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description
'''


@pytest.fixture(scope="module")
def join_corpus():
    return build_corpus(**JOIN_CORPUS)


@pytest.fixture(scope="module")
def join_mono(join_corpus):
    warehouse = Warehouse(metrics=False)
    warehouse.load_corpus(join_corpus)
    yield warehouse
    warehouse.close()


@pytest.fixture
def optimized(join_corpus):
    """Partitioned federation over the skewed corpus, analyzed."""
    registry = MetricsRegistry()
    federation = build_federation(join_corpus, ROUTING_PARTITIONED,
                                  metrics=registry)
    federation.analyze(persist=False)
    yield federation, registry
    federation.close()


def rows_of(result):
    return [row.values for row in result.rows]


class TestRuleBasedFallback:
    def test_empty_catalog_plans_rule_based(self, join_corpus,
                                            join_mono):
        federation = build_federation(join_corpus, ROUTING_PARTITIONED)
        try:
            plan = federation.plan(FIG11_JOIN)
            assert not plan.cost_based
            assert plan.estimated_rows == {}
            assert plan.pruned == [] and plan.semijoins == []
            result = federation.query(FIG11_JOIN)
            reference = join_mono.xomatiq.query(FIG11_JOIN)
            assert result.to_xml() == reference.to_xml()
        finally:
            federation.close()

    def test_optimized_and_fallback_answers_agree(self, optimized,
                                                  join_corpus):
        federation, __ = optimized
        fallback = build_federation(join_corpus, ROUTING_PARTITIONED)
        try:
            assert rows_of(federation.query(FIG11_JOIN)) \
                == rows_of(fallback.query(FIG11_JOIN))
        finally:
            fallback.close()


class TestCostBasedPlanning:
    def test_plan_carries_estimates(self, optimized):
        federation, __ = optimized
        plan = federation.plan(FIG11_JOIN)
        assert plan.cost_based
        assert set(plan.estimated_rows) \
            == {subplan.index for subplan in plan.subplans}
        assert all(rows >= 0 for rows in plan.estimated_rows.values())

    def test_join_order_most_selective_first(self, optimized):
        federation, __ = optimized
        plan = federation.plan(FIG11_JOIN)
        order = plan.disjuncts[0].subplan_ids
        estimates = [plan.estimated_rows[index] for index in order]
        assert estimates == sorted(estimates)
        # the 120-entry enzyme side must come before the 400-entry embl
        by_index = {subplan.index: subplan for subplan in plan.subplans}
        assert "hlx_enzyme" in by_index[order[0]].sources

    def test_semijoin_selected_for_skewed_join(self, optimized):
        federation, __ = optimized
        plan = federation.plan(FIG11_JOIN)
        assert len(plan.semijoins) == 1
        semijoin = plan.semijoins[0]
        by_index = {subplan.index: subplan for subplan in plan.subplans}
        assert "hlx_enzyme" in by_index[semijoin.build].sources
        assert "hlx_embl" in by_index[semijoin.probe].sources
        assert semijoin.estimated_probe_rows \
            >= 2 * semijoin.estimated_build_rows


class TestShardPruning:
    def test_empty_partition_slices_pruned(self, join_mono):
        # one embl document routed across three shards: two slices are
        # provably empty and must vanish from the plan
        corpus = build_corpus(seed=5, enzyme_count=6, embl_count=1,
                              sprot_count=2, omim_count=1)
        registry = MetricsRegistry()
        federation = build_federation(corpus, ROUTING_PARTITIONED,
                                      metrics=registry)
        mono = Warehouse(metrics=False)
        try:
            mono.load_corpus(corpus)
            federation.analyze(persist=False)
            plan = federation.plan(FIG11_JOIN)
            assert {p.shard for p in plan.pruned} == {"s2", "s3"}
            embl = next(s for s in plan.subplans
                        if "hlx_embl" in s.sources)
            assert embl.shards == ("s1",)
            result = federation.query(FIG11_JOIN)
            assert rows_of(result) \
                == rows_of(mono.xomatiq.query(FIG11_JOIN))
            assert registry.counter_total("federation.shards_pruned") == 2
        finally:
            mono.close()
            federation.close()

    def test_proven_absent_token_prunes_all_shards(self, optimized,
                                                   join_mono):
        federation, registry = optimized
        query = SELECTIVE_JOIN.replace("ketone", "zzzneverinanydoc")
        plan = federation.plan(query)
        enzyme = next(s for s in plan.subplans
                      if "hlx_enzyme" in s.sources)
        assert enzyme.shards == ()
        assert any("token" in p.reason for p in plan.pruned)
        # an empty answer, but the *same* empty answer
        result = federation.query(query)
        assert rows_of(result) == rows_of(join_mono.xomatiq.query(query))

    def test_estimates_never_prune(self, optimized):
        # a selective predicate shrinks the estimate but proves
        # nothing: every shard that might hold a match must stay
        federation, __ = optimized
        plan = federation.plan(SELECTIVE_JOIN)
        embl = next(s for s in plan.subplans if "hlx_embl" in s.sources)
        assert set(embl.shards) == {"s1", "s2", "s3"}


class TestSemiJoinExecution:
    def test_inlist_pushdown_cuts_rows_shipped(self, optimized,
                                               join_corpus, join_mono):
        federation, registry = optimized
        baseline = build_federation(join_corpus, ROUTING_PARTITIONED,
                                    metrics=MetricsRegistry())
        try:
            result = federation.query(FIG11_JOIN)
            reference = baseline.query(FIG11_JOIN)
            assert result.to_xml() == reference.to_xml()
            assert result.to_xml() \
                == join_mono.xomatiq.query(FIG11_JOIN).to_xml()
            shipped = registry.counter_total("federation.rows_shipped")
            unfiltered = baseline.metrics.counter_total(
                "federation.rows_shipped")
            assert shipped < unfiltered
            assert registry.counter_items("federation.semijoin_filters") \
                == [({"mode": "inlist"}, 1)]
        finally:
            baseline.close()

    def test_bloom_pushdown_above_cutoff(self, optimized, join_mono,
                                         monkeypatch):
        # force the IN-list cutoff below the build size: the filter
        # ships as a Bloom filter and false positives must still be
        # removed by the coordinator join
        monkeypatch.setattr(executor_module, "INLIST_CUTOFF", 10)
        federation, registry = optimized
        result = federation.query(FIG11_JOIN)
        assert rows_of(result) \
            == rows_of(join_mono.xomatiq.query(FIG11_JOIN))
        assert registry.counter_items("federation.semijoin_filters") \
            == [({"mode": "bloom"}, 1)]
        assert registry.counter_total("federation.rows_pruned") > 0

    def test_unreachable_build_shard_degrades_unfiltered(self,
                                                         optimized):
        federation, registry = optimized
        original = federation.catalog.warehouse

        def flaky(name):
            if name == "s0":        # the enzyme (build) shard
                raise ShardUnreachableError("s0 is down")
            return original(name)

        federation.catalog.warehouse = flaky
        try:
            result = federation.query(FIG11_JOIN)
        finally:
            federation.catalog.warehouse = original
        # build side lost: empty join, but an answer with warnings —
        # and the probe side scanned unfiltered rather than trusting
        # a filter that could not be built
        assert result.rows == []
        assert any("s0" in warning for warning in result.warnings)
        assert any("semi-join" in warning for warning in result.warnings)
        assert registry.counter_items("federation.semijoin_filters") == []
        assert registry.counter_total("federation.rows_shipped") > 0


class TestAccounting:
    ROUTE_QUERY = ('FOR $e IN document("hlx_enzyme.DEFAULT")'
                   '/hlx_enzyme/db_entry RETURN $e/enzyme_id')

    def test_route_plans_counted_like_scatter(self, corpus):
        colocated = {source: ("only",) for source in
                     ("hlx_enzyme", "hlx_embl", "hlx_sprot", "hlx_omim")}
        registry = MetricsRegistry()
        federation = build_federation(corpus, colocated,
                                      metrics=registry)
        try:
            assert federation.plan(self.ROUTE_QUERY).route_shard == "only"
            federation.query(self.ROUTE_QUERY)
            assert registry.counter_total("federation.queries") == 1
            assert registry.counter_total("federation.fanout") == 1
            assert registry.counter_total("federation.rows_shipped") > 0
            assert registry.counter_total("federation.bytes_shipped") > 0
        finally:
            federation.close()

    def test_scatter_ships_bytes(self, optimized):
        federation, registry = optimized
        federation.query(FIG11_JOIN)
        shipped_bytes = registry.counter_total("federation.bytes_shipped")
        shipped_rows = registry.counter_total("federation.rows_shipped")
        assert shipped_rows > 0
        # every shipped row carries at least its fixed overhead
        assert shipped_bytes \
            >= shipped_rows * executor_module.ROW_OVERHEAD_BYTES

    def test_optimizer_counters_exposed(self, optimized):
        federation, registry = optimized
        federation.query(FIG11_JOIN)
        assert registry.counter_total("federation.estimated_rows") > 0
        names = {name for name, __ in
                 ((c["name"], c) for c in registry.snapshot()["counters"])}
        assert "federation.semijoin_filters" in names
