"""FederationPlanner: routing decisions, pushdown, coordinator atoms."""

import pytest

from repro.errors import FederationError
from repro.federation import FederationPlanner, ShardCatalog
from repro.xquery.ast import Compare
from repro.xquery.parser import parse_query

JOIN = '''
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier = $b/enzyme_id
  AND contains($b//catalytic_activity, "ketone")
RETURN $a//embl_accession_number, $b/enzyme_id
'''


def plan_for(routing: dict, text: str):
    catalog = ShardCatalog()
    for shard in sorted({s for route in routing.values()
                         for s in route}):
        catalog.add_shard(shard)
    for source, route in routing.items():
        catalog.assign(source, *route)
    query = parse_query(text)
    return FederationPlanner(catalog).plan(text, query)


class TestRouting:
    def test_colocated_sources_route_whole_query(self):
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s0",)},
                        JOIN)
        assert plan.route_shard == "s0"
        assert plan.fanout == 1
        assert plan.subplans == []

    def test_split_sources_scatter(self):
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s1",)},
                        JOIN)
        assert plan.route_shard is None
        assert plan.fanout == 2
        assert [sp.shards for sp in plan.subplans] == [("s0",), ("s1",)]

    def test_partitioned_source_fans_out(self):
        plan = plan_for(
            {"hlx_embl": ("s0", "s1", "s2"), "hlx_enzyme": ("s3",)},
            JOIN)
        assert plan.fanout == 4

    def test_unrouted_source_rejected(self):
        with pytest.raises(FederationError, match="not routed"):
            plan_for({"hlx_embl": ("s0",)}, JOIN)


class TestPushdown:
    def test_single_variable_atoms_pushed_to_shard(self):
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s1",)},
                        JOIN)
        enzyme = next(sp for sp in plan.subplans
                      if sp.sources == ("hlx_enzyme",))
        # contains() travels with the enzyme unit...
        assert "contains(" in enzyme.text
        # ...while the cross-shard equality stays at the coordinator
        assert "$a" not in enzyme.text
        [disjunct] = plan.disjuncts
        assert len(disjunct.atoms) == 1
        assert disjunct.atoms[0].op == "="

    def test_projections_cover_outputs_and_join_keys(self):
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s1",)},
                        JOIN)
        embl = next(sp for sp in plan.subplans
                    if sp.sources == ("hlx_embl",))
        assert "$a//embl_accession_number" in embl.item_keys
        assert "$a//qualifier" in embl.item_keys
        enzyme = next(sp for sp in plan.subplans
                      if sp.sources == ("hlx_enzyme",))
        # enzyme_id is both output and join key — shipped once
        assert enzyme.item_keys == ("$b/enzyme_id",)

    def test_context_variable_stays_with_its_root(self):
        text = '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $f IN $a //feature,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE $f//qualifier = $b/enzyme_id
        RETURN $f//qualifier, $b/enzyme_id
        '''
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s1",)},
                        text)
        embl = next(sp for sp in plan.subplans
                    if sp.sources == ("hlx_embl",))
        assert embl.vars == ("a", "f")

    def test_identical_subplans_deduplicated_across_disjuncts(self):
        text = '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE $a//qualifier = $b/enzyme_id
           OR $a//qualifier != $b/enzyme_id
        RETURN $a//embl_accession_number
        '''
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s1",)},
                        text)
        # same bindings, same (empty) pushdown, same projections twice
        assert len(plan.disjuncts) == 2
        assert len(plan.subplans) == 2


class TestCoordinatorAtoms:
    def test_order_compare_across_shards_rejected(self):
        text = '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE $a//feature BEFORE $b/enzyme_id
        RETURN $a//embl_accession_number
        '''
        with pytest.raises(FederationError, match="co-located"):
            plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s1",)}, text)

    def test_order_compare_colocated_merges_onto_one_shard(self):
        text = '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE $a//feature BEFORE $b/enzyme_id
          AND contains($a//description, "x")
        RETURN $a//embl_accession_number
        '''
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s0",)},
                        text)
        assert plan.route_shard == "s0"

    def test_negated_join_atom_kept_at_coordinator(self):
        text = '''
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE NOT ($a//qualifier = $b/enzyme_id)
        RETURN $a//embl_accession_number
        '''
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s1",)},
                        text)
        [disjunct] = plan.disjuncts
        assert disjunct.atoms[0].negated is True

    def test_subqueries_are_well_formed_queries(self):
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s1",)},
                        JOIN)
        for subplan in plan.subplans:
            reparsed = parse_query(subplan.text)
            assert reparsed.variables() == list(subplan.vars)

    def test_join_key_paths_resolve_atom_operands(self):
        plan = plan_for({"hlx_embl": ("s0",), "hlx_enzyme": ("s1",)},
                        JOIN)
        [disjunct] = plan.disjuncts
        atom = disjunct.atoms[0]
        left_unit = disjunct.var_unit[atom.left.var]
        right_unit = disjunct.var_unit[atom.right.var]
        assert atom.left_key in plan.subplans[left_unit].item_keys
        assert atom.right_key in plan.subplans[right_unit].item_keys
        assert left_unit != right_unit
