"""Statistics catalog: collection, persistence, EWMAs, staleness.

The optimizer's knowledge base (``repro.federation.stats``) has three
jobs tested here: describe each shard accurately (counts, histograms,
token maps), survive a round-trip to disk next to the shard map, and
notice when a live shard has drifted past its record — including the
cross-process case where loader generations mean nothing and only the
document count can betray a load from another process.
"""

import pytest

from repro.errors import ShardUnreachableError
from repro.federation import StatisticsCatalog, default_stats_path
from repro.federation.stats import EWMA_ALPHA, ValueHistogram
from repro.synth import build_corpus

from tests.federation.conftest import (
    ROUTING_PARTITIONED,
    ROUTING_PER_SOURCE,
    build_federation,
)


@pytest.fixture(scope="module")
def analyzed(corpus):
    """Per-source federation over the session corpus, analyzed once.

    Module-scoped: the tests below only read the records (the mutating
    staleness/EWMA tests build their own federations)."""
    federation = build_federation(corpus, ROUTING_PER_SOURCE)
    federation.analyze(persist=False)
    yield federation
    federation.close()


class TestCollection:
    def test_per_source_document_counts(self, analyzed, corpus):
        sizes = corpus.sizes()
        record = analyzed.statistics.shard("s0")
        assert record.documents == {"hlx_enzyme": sizes["hlx_enzyme"]}
        assert record.source_documents("hlx_embl") == 0

    def test_tag_counts_scoped_by_source(self, analyzed, corpus):
        # every enzyme document contributes exactly one db_entry
        record = analyzed.statistics.shard("s0")
        assert record.tag_count("hlx_enzyme", "db_entry") \
            == corpus.sizes()["hlx_enzyme"]
        # the tag exists, but not under a source this shard lacks
        assert record.tag_count("hlx_embl", "db_entry") is None
        assert record.tag_count("hlx_enzyme", "no_such_tag") is None

    def test_table_cardinalities_present(self, analyzed, corpus):
        record = analyzed.statistics.shard("s0")
        assert record.tables["documents"] == corpus.sizes()["hlx_enzyme"]
        assert record.tables["elements"] > 0
        assert record.tables["keywords"] > 0

    def test_complete_token_map_proves_absence(self, analyzed):
        record = analyzed.statistics.shard("s0")
        assert record.tokens_complete
        assert record.proves_token_absent("zzz_never_a_token")
        some_token = next(iter(record.token_docs))
        assert not record.proves_token_absent(some_token)
        assert record.token_selectivity(some_token) > 0.0

    def test_capped_token_map_never_proves(self, analyzed):
        record = analyzed.statistics.shard("s0")
        capped = type(record)(name="x", documents={"hlx_enzyme": 10},
                              token_docs=dict(record.token_docs),
                              tokens_complete=False)
        assert not capped.proves_token_absent("zzz_never_a_token")
        # unknown token under a capped map: assumed rare, not absent
        assert capped.token_selectivity("zzz_never_a_token") == 0.1

    def test_value_histograms_cover_join_columns(self, analyzed, corpus):
        record = analyzed.statistics.shard("s0")
        histogram = record.values["enzyme_id"]
        assert histogram.rows == corpus.sizes()["hlx_enzyme"]
        assert histogram.distinct > 0 and not histogram.sampled

    def test_unreachable_shard_skipped_and_dropped(self, corpus):
        federation = build_federation(corpus, ROUTING_PER_SOURCE)
        try:
            federation.analyze(persist=False)
            assert federation.statistics.shard("s1") is not None
            original = federation.catalog.warehouse

            def flaky(name):
                if name == "s1":
                    raise ShardUnreachableError("s1 is down")
                return original(name)

            federation.catalog.warehouse = flaky
            summary = federation.analyze(persist=False)
            assert summary["shards_skipped"] == ["s1"]
            # the stale record dropped: no pruning on dead numbers
            assert federation.statistics.shard("s1") is None
            assert federation.statistics.shard("s0") is not None
        finally:
            federation.catalog.warehouse = original
            federation.close()


class TestValueHistogram:
    def test_mcv_and_uniform_selectivity(self):
        histogram = ValueHistogram.from_values(
            ["a"] * 6 + ["b"] * 2 + ["c", "d"], sampled=False)
        assert histogram.rows == 10 and histogram.distinct == 4
        assert histogram.equality_selectivity("a") == 0.6
        # non-MCV values fall back to 1/distinct
        tail = ValueHistogram(rows=100, distinct=20, mcvs={"a": 30})
        assert tail.equality_selectivity("zzz") == 1.0 / 20

    def test_empty_histogram_selects_nothing(self):
        assert ValueHistogram().equality_selectivity("a") == 0.0


class TestPersistence:
    def test_roundtrip_preserves_records(self, analyzed, tmp_path):
        path = tmp_path / "shards.stats.json"
        analyzed.statistics.save(path)
        reloaded = StatisticsCatalog.load(path)
        assert set(reloaded.shards) == set(analyzed.statistics.shards)
        original = analyzed.statistics.shard("s0")
        record = reloaded.shard("s0")
        assert record.documents == original.documents
        assert record.tags == original.tags
        assert record.token_docs == original.token_docs
        assert record.values["enzyme_id"].to_dict() \
            == original.values["enzyme_id"].to_dict()
        # disk records are marked: their generation is another
        # process's counter until the first staleness check rebases it
        assert record.loaded

    def test_default_path_is_map_sibling(self):
        assert str(default_stats_path("/x/shards.json")) \
            == "/x/shards.stats.json"

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.stats.json"
        path.write_text('{"version": 99, "shards": {}}',
                        encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            StatisticsCatalog.load(path)


class TestRuntimeObservations:
    def test_ewma_folds_observations(self, corpus):
        federation = build_federation(corpus, ROUTING_PER_SOURCE)
        try:
            federation.analyze(persist=False)
            catalog = federation.statistics
            catalog.record_observation("s0", 1.0, 100)
            record = catalog.shard("s0")
            assert record.ewma_seconds == 1.0
            assert record.ewma_rows == 100.0
            catalog.record_observation("s0", 2.0, 200)
            assert record.ewma_seconds \
                == pytest.approx(1.0 + EWMA_ALPHA * 1.0)
            assert record.ewma_rows \
                == pytest.approx(100.0 + EWMA_ALPHA * 100.0)
            assert record.observations == 2
        finally:
            federation.close()

    def test_queries_feed_ewmas(self, corpus):
        federation = build_federation(corpus, ROUTING_PER_SOURCE)
        try:
            federation.analyze(persist=False)
            federation.query(
                'FOR $e IN document("hlx_enzyme.DEFAULT")'
                '/hlx_enzyme/db_entry RETURN $e/enzyme_id')
            assert federation.statistics.shard("s0").observations == 1
        finally:
            federation.close()

    def test_reanalysis_keeps_ewmas(self, corpus):
        federation = build_federation(corpus, ROUTING_PER_SOURCE)
        try:
            federation.analyze(persist=False)
            federation.statistics.record_observation("s0", 1.5, 42)
            federation.analyze(persist=False)
            record = federation.statistics.shard("s0")
            assert record.ewma_seconds == 1.5
            assert record.observations == 1
        finally:
            federation.close()


class TestStaleness:
    def test_fresh_catalog_not_stale(self, corpus):
        federation = build_federation(corpus, ROUTING_PARTITIONED)
        try:
            federation.analyze(persist=False)
            assert federation.statistics.stale_shards(
                federation.catalog) == []
        finally:
            federation.close()

    def test_load_marks_shard_stale_and_plan_refreshes(self, corpus):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        federation = build_federation(corpus, ROUTING_PER_SOURCE,
                                      metrics=registry)
        try:
            federation.analyze(persist=False)
            extra = build_corpus(seed=99, enzyme_count=3, embl_count=0,
                                 sprot_count=0, omim_count=0)
            federation.load_text("hlx_enzyme", extra.enzyme_text)
            stale = federation.statistics.stale_shards(federation.catalog)
            assert stale == ["s0"]
            # planning auto-refreshes: the proof base must track reality
            federation.plan(
                'FOR $e IN document("hlx_enzyme.DEFAULT")'
                '/hlx_enzyme/db_entry RETURN $e/enzyme_id')
            assert registry.counter_total("federation.stats_refreshed") == 1
            record = federation.statistics.shard("s0")
            assert record.documents["hlx_enzyme"] \
                == corpus.sizes()["hlx_enzyme"] + 3
            assert federation.statistics.stale_shards(
                federation.catalog) == []
        finally:
            federation.close()

    def test_loaded_record_rebases_generation(self, corpus, tmp_path):
        path = tmp_path / "shards.stats.json"
        first = build_federation(corpus, ROUTING_PER_SOURCE)
        try:
            first.analyze(persist=False)
            first.statistics.save(path)
        finally:
            first.close()
        # "another process": same data, fresh warehouses whose loader
        # generations restarted from zero
        second = build_federation(corpus, ROUTING_PER_SOURCE,
                                  stats=StatisticsCatalog.load(path))
        try:
            assert second.statistics.stale_shards(second.catalog) == []
            record = second.statistics.shard("s0")
            assert not record.loaded     # rebased onto the live counter
            # after rebasing, in-process loads are caught by generation
            extra = build_corpus(seed=98, enzyme_count=2, embl_count=0,
                                 sprot_count=0, omim_count=0)
            second.load_text("hlx_enzyme", extra.enzyme_text)
            assert second.statistics.stale_shards(
                second.catalog) == ["s0"]
        finally:
            second.close()

    def test_loaded_record_with_count_drift_is_stale(self, corpus,
                                                     tmp_path):
        path = tmp_path / "shards.stats.json"
        first = build_federation(corpus, ROUTING_PER_SOURCE)
        try:
            first.analyze(persist=False)
            first.statistics.save(path)
        finally:
            first.close()
        bigger = build_corpus(seed=7, enzyme_count=30, embl_count=35,
                              sprot_count=25, omim_count=15)
        second = build_federation(bigger, ROUTING_PER_SOURCE,
                                  stats=StatisticsCatalog.load(path))
        try:
            # the record says 25 enzyme documents, the shard holds 30:
            # the count probe catches what generations cannot
            assert "s0" in second.statistics.stale_shards(second.catalog)
        finally:
            second.close()
