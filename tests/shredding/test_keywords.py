"""Unit tests for keyword tokenization."""

from repro.shredding import query_tokens, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Ketone") == ["ketone"]

    def test_stopwords_dropped(self):
        assert tokenize("the enzyme is active") == ["enzyme", "active"]

    def test_short_tokens_dropped(self):
        assert tokenize("a b cd") == ["cd"]

    def test_compound_identifier_kept_whole(self):
        tokens = tokenize("AMD_HUMAN")
        assert "amd_human" in tokens

    def test_compound_identifier_fragments_indexed(self):
        tokens = tokenize("AMD_HUMAN")
        assert "amd" in tokens
        assert "human" in tokens

    def test_ec_number_is_single_token(self):
        tokens = tokenize("EC 1.14.17.3 entry")
        assert "1.14.17.3" in tokens

    def test_gene_symbol_with_digits(self):
        assert "cdc6" in tokenize("the cdc6 gene")

    def test_punctuation_separates(self):
        assert tokenize("alpha;beta,gamma") == ["alpha", "beta", "gamma"]

    def test_order_preserved(self):
        assert tokenize("zeta alpha beta") == ["zeta", "alpha", "beta"]

    def test_empty_input(self):
        assert tokenize("") == []


class TestQueryTokens:
    def test_mirrors_tokenizer_without_fragments(self):
        assert query_tokens("AMD_HUMAN") == ["amd_human"]

    def test_multi_word_phrase(self):
        assert query_tokens("cell division") == ["cell", "division"]

    def test_keeps_stopword_like_queries(self):
        # a user explicitly searching "the" should not silently match all
        assert query_tokens("x") == []

    def test_case_insensitive(self):
        assert query_tokens("KETONE") == ["ketone"]
