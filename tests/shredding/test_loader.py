"""Unit tests for the warehouse loader (both backends via fixture)."""

from repro.shredding import WarehouseLoader
from repro.xmlkit import parse_document


def doc(body: str):
    return parse_document(f"<r><v>{body}</v></r>")


class TestStoreAndRemove:
    def test_store_assigns_increasing_doc_ids(self, backend):
        loader = WarehouseLoader(backend)
        first = loader.store_document("s", "c", "k1", doc("a"))
        second = loader.store_document("s", "c", "k2", doc("b"))
        assert second == first + 1

    def test_store_same_key_replaces(self, backend):
        loader = WarehouseLoader(backend)
        loader.store_document("s", "c", "k1", doc("old"))
        loader.store_document("s", "c", "k1", doc("new"))
        assert loader.document_count("s") == 1
        values = backend.execute(
            "SELECT value FROM text_values")
        assert ("new",) in values and ("old",) not in values

    def test_remove_document_deletes_all_rows(self, backend):
        loader = WarehouseLoader(backend)
        loader.store_document("s", "c", "k1", doc("x"))
        loader.remove_document("s", "c", "k1")
        for table in ("documents", "elements", "text_values", "keywords"):
            rows = backend.execute(f"SELECT COUNT(*) FROM {table}")
            assert rows[0][0] == 0

    def test_remove_with_empty_collection_matches_any(self, backend):
        loader = WarehouseLoader(backend)
        loader.store_document("s", "inv", "k1", doc("x"))
        loader.remove_document("s", "", "k1")
        assert loader.document_count("s") == 0

    def test_counts_by_source(self, backend):
        loader = WarehouseLoader(backend)
        loader.store_document("s1", "c", "a", doc("1"))
        loader.store_document("s2", "c", "b", doc("2"))
        assert loader.document_count() == 2
        assert loader.document_count("s1") == 1

    def test_doc_ids_filterable_by_collection(self, backend):
        loader = WarehouseLoader(backend)
        loader.store_document("s", "inv", "a", doc("1"))
        loader.store_document("s", "hum", "b", doc("2"))
        assert len(loader.doc_ids("s")) == 2
        assert len(loader.doc_ids("s", "inv")) == 1

    def test_bulk_store_documents(self, backend):
        loader = WarehouseLoader(backend)
        count = loader.store_documents(
            "s", "c", [("a", doc("1")), ("b", doc("2"))])
        assert count == 2
        assert loader.document_count("s") == 2

    def test_doc_id_continues_after_reattach(self, backend):
        loader = WarehouseLoader(backend)
        loader.store_document("s", "c", "a", doc("1"))
        reattached = WarehouseLoader(backend, create=False)
        next_id = reattached.store_document("s", "c", "b", doc("2"))
        assert next_id == 2
