"""Unit tests for the XML shredder."""

from repro.shredding import shred_document
from repro.xmlkit import parse_document

DOC = parse_document("""
<hlx_n_sequence>
  <db_entry>
    <entry_name>CDC6_CAEEL</entry_name>
    <score>42</score>
    <feature feature_key="CDS" location="1..10">
      <qualifier qualifier_type="gene">cdc6</qualifier>
    </feature>
    <sequence length="1859" molecule_type="DNA">aacgttgcaa</sequence>
  </db_entry>
</hlx_n_sequence>
""", name="hlx_embl")


def shred(doc=DOC, **kwargs):
    return shred_document(doc, doc_id=5, source="hlx_embl",
                          collection="inv", entry_key="K1", **kwargs)


class TestDocumentRow:
    def test_document_row_contents(self):
        rows = shred().documents
        assert rows == [(5, "hlx_embl", "inv", "K1", "hlx_n_sequence")]


class TestElementRows:
    def test_node_ids_are_preorder_ranks(self):
        elements = sorted(shred().elements, key=lambda r: r[1])
        tags = [row[3] for row in elements]
        assert tags == ["hlx_n_sequence", "db_entry", "entry_name",
                        "score", "feature", "qualifier", "sequence"]
        node_ids = [row[1] for row in elements]
        assert node_ids == list(range(7))

    def test_doc_order_equals_node_id(self):
        for row in shred().elements:
            assert row[1] == row[5]

    def test_parent_links(self):
        elements = {row[1]: row for row in shred().elements}
        assert elements[0][2] is None          # root has no parent
        assert elements[1][2] == 0             # db_entry under root
        assert elements[5][2] == 4             # qualifier under feature

    def test_sibling_order(self):
        elements = {row[1]: row for row in shred().elements}
        assert elements[2][4] == 0   # entry_name is first child
        assert elements[3][4] == 1   # score second
        assert elements[4][4] == 2   # feature third

    def test_subtree_end_intervals(self):
        elements = {row[1]: row for row in shred().elements}
        # root subtree spans the whole document
        assert elements[0][6] == 6
        # feature (node 4) contains qualifier (node 5)
        assert elements[4][6] == 5
        # leaf subtree ends at itself
        assert elements[2][6] == 2

    def test_depth_recorded(self):
        elements = {row[1]: row for row in shred().elements}
        assert elements[0][7] == 0
        assert elements[5][7] == 3


class TestValueRows:
    def test_text_values_with_numeric_typing(self):
        texts = {row[1]: row for row in shred().text_values}
        score_row = texts[3]
        assert score_row[2] == "42"
        assert score_row[3] == 42.0

    def test_non_numeric_text_has_null_num(self):
        texts = {row[1]: row for row in shred().text_values}
        assert texts[2][2] == "CDC6_CAEEL"
        assert texts[2][3] is None

    def test_numeric_typing_can_be_disabled(self):
        texts = {row[1]: row
                 for row in shred(numeric_typing=False).text_values}
        assert texts[3][3] is None

    def test_attributes_shredded(self):
        attrs = {(row[1], row[2]): row for row in shred().attributes}
        assert attrs[(4, "feature_key")][3] == "CDS"
        assert attrs[(6, "length")][3] == "1859"
        assert attrs[(6, "length")][4] == 1859.0


class TestSequenceSplit:
    def test_sequence_goes_to_sequence_table(self):
        shredded = shred()
        assert len(shredded.sequences) == 1
        row = shredded.sequences[0]
        assert row[2] == "aacgttgcaa"
        assert row[3] == 1859          # declared length wins
        assert row[4] == "DNA"

    def test_sequence_text_not_in_text_values(self):
        node_ids = {row[1] for row in shred().text_values}
        assert 6 not in node_ids

    def test_sequence_not_keyword_indexed(self):
        tokens = {row[2] for row in shred().keywords}
        assert "aacgttgcaa" not in tokens

    def test_residue_count_used_when_length_missing(self):
        doc = parse_document(
            "<r><sequence>MKTV</sequence></r>")
        shredded = shred_document(doc, 1, "s", "c", "k")
        assert shredded.sequences[0][3] == 4

    def test_custom_sequence_tags(self):
        doc = parse_document("<r><residues>acgt</residues></r>")
        shredded = shred_document(doc, 1, "s", "c", "k",
                                  sequence_tags=frozenset({"residues"}))
        assert len(shredded.sequences) == 1


class TestKeywords:
    def test_text_tokens_indexed(self):
        tokens = {row[2] for row in shred().keywords}
        assert "cdc6" in tokens
        assert "cdc6_caeel" in tokens

    def test_attribute_tokens_indexed(self):
        tokens = {row[2] for row in shred().keywords}
        assert "cds" in tokens
        assert "gene" in tokens

    def test_positions_strictly_increasing(self):
        positions = [row[3] for row in shred().keywords]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_total_rows_accounting(self):
        shredded = shred()
        by_table = shredded.rows_by_table()
        assert shredded.total_rows == sum(
            len(rows) for rows in by_table.values())
