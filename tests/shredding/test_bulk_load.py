"""Unit tests for the batched bulk-load pipeline (both backends)."""

import pytest

from repro.shredding import WarehouseLoader
from repro.xmlkit import parse_document


def doc(body: str):
    return parse_document(f"<r><v>{body}</v></r>")


class TestBulkLoadSession:
    def test_flushes_across_batch_boundaries(self, backend):
        loader = WarehouseLoader(backend)
        with loader.bulk_session(batch_size=2) as session:
            for i in range(5):
                session.add("s", "c", f"k{i}", doc(str(i)))
        assert session.flushes == 3  # 2 + 2 + remainder of 1
        assert session.documents_loaded == 5
        assert loader.document_count("s") == 5

    def test_rows_visible_only_after_flush(self, backend):
        loader = WarehouseLoader(backend)
        with loader.bulk_session(batch_size=10) as session:
            session.add("s", "c", "k0", doc("x"))
            assert loader.document_count("s") == 0
            session.flush()
            assert loader.document_count("s") == 1

    def test_doc_ids_are_sequential_in_add_order(self, backend):
        loader = WarehouseLoader(backend)
        with loader.bulk_session(batch_size=3) as session:
            ids = [session.add("s", "c", f"k{i}", doc(str(i)))
                   for i in range(4)]
        assert ids == sorted(ids)
        assert loader.doc_ids("s") == ids

    def test_upsert_replaces_previously_stored_entry(self, backend):
        loader = WarehouseLoader(backend)
        loader.store_document("s", "c", "k", doc("old"))
        with loader.bulk_session(batch_size=8) as session:
            session.add("s", "c", "k", doc("new"))
        assert loader.document_count("s") == 1
        values = backend.execute("SELECT value FROM text_values")
        assert ("new",) in values and ("old",) not in values

    def test_upsert_matches_any_collection(self, backend):
        loader = WarehouseLoader(backend)
        loader.store_document("s", "inv", "k", doc("old"))
        with loader.bulk_session() as session:
            session.add("s", "hum", "k", doc("new"))
        assert loader.document_count("s") == 1

    def test_within_batch_duplicate_key_keeps_last(self, backend):
        loader = WarehouseLoader(backend)
        with loader.bulk_session(batch_size=16) as session:
            session.add("s", "c", "k", doc("first"))
            session.add("s", "c", "k", doc("second"))
        assert loader.document_count("s") == 1
        values = backend.execute("SELECT value FROM text_values")
        assert ("second",) in values and ("first",) not in values

    def test_duplicate_key_across_flushes_keeps_last(self, backend):
        loader = WarehouseLoader(backend)
        with loader.bulk_session(batch_size=1) as session:
            session.add("s", "c", "k", doc("first"))
            session.add("s", "c", "k", doc("second"))
        assert loader.document_count("s") == 1
        values = backend.execute("SELECT value FROM text_values")
        assert ("second",) in values

    def test_no_upsert_mode_skips_existing_lookup(self, backend):
        loader = WarehouseLoader(backend)
        with loader.bulk_session(batch_size=4, upsert=False) as session:
            session.add("s", "c", "a", doc("1"))
            session.add("s", "c", "b", doc("2"))
        assert loader.document_count("s") == 2

    def test_exception_discards_partial_batch(self, backend):
        loader = WarehouseLoader(backend)
        with pytest.raises(RuntimeError):
            with loader.bulk_session(batch_size=10) as session:
                session.add("s", "c", "k", doc("x"))
                raise RuntimeError("boom")
        assert loader.document_count("s") == 0

    def test_exception_keeps_completed_batches(self, backend):
        loader = WarehouseLoader(backend)
        with pytest.raises(RuntimeError):
            with loader.bulk_session(batch_size=1) as session:
                session.add("s", "c", "a", doc("1"))  # flushed
                session.add("s", "c", "b", doc("2"))  # flushed
                raise RuntimeError("boom")
        assert loader.document_count("s") == 2

    def test_flush_bumps_generation(self, backend):
        loader = WarehouseLoader(backend)
        before = loader.generation
        with loader.bulk_session() as session:
            session.add("s", "c", "k", doc("x"))
        assert loader.generation > before

    def test_empty_session_is_a_noop(self, backend):
        loader = WarehouseLoader(backend)
        before = loader.generation
        with loader.bulk_session() as session:
            pass
        assert session.flushes == 0
        assert loader.generation == before

    def test_rejects_batch_size_zero(self, backend):
        loader = WarehouseLoader(backend)
        with pytest.raises(ValueError):
            loader.bulk_session(batch_size=0)

    def test_add_transformed_serial(self, backend):
        loader = WarehouseLoader(backend)
        items = [("c", f"k{i}", doc(str(i))) for i in range(5)]
        with loader.bulk_session(batch_size=2) as session:
            count = session.add_transformed("s", items, lambda item: item)
        assert count == 5
        assert loader.document_count("s") == 5

    def test_add_transformed_parallel_matches_serial(self, backend):
        items = [("c", f"k{i}", doc(f"value {i}")) for i in range(12)]

        def load(workers):
            loader = WarehouseLoader(self_backend())
            with loader.bulk_session(batch_size=5,
                                     workers=workers) as session:
                session.add_transformed("s", items, lambda item: item)
            rows = sorted(loader.backend.execute(
                "SELECT doc_id, node_id, value FROM text_values"))
            loader_docs = loader.backend.execute(
                "SELECT doc_id, entry_key FROM documents ORDER BY doc_id")
            return rows, loader_docs

        def self_backend():
            return type(backend)()

        serial = load(0)
        parallel = load(3)
        assert serial == parallel


class TestLoaderGeneration:
    def test_store_and_remove_bump_generation(self, backend):
        loader = WarehouseLoader(backend)
        g0 = loader.generation
        loader.store_document("s", "c", "k", doc("x"))
        g1 = loader.generation
        loader.remove_document("s", "c", "k")
        g2 = loader.generation
        assert g0 < g1 < g2

    def test_store_documents_uses_bulk_path(self, backend):
        loader = WarehouseLoader(backend)
        count = loader.store_documents(
            "s", "c", [("a", doc("1")), ("b", doc("2"))])
        assert count == 2
        assert loader.document_count("s") == 2
