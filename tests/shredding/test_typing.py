"""Unit tests for string/numeric typing rules."""

import pytest

from repro.shredding import is_numeric, numeric_value


class TestNumericDetection:
    @pytest.mark.parametrize("text,expected", [
        ("42", 42.0),
        ("-3", -3.0),
        ("+7", 7.0),
        ("3.14", 3.14),
        (".5", 0.5),
        ("2.", 2.0),
        ("1e3", 1000.0),
        ("1.5E-2", 0.015),
        ("  12  ", 12.0),
    ])
    def test_numbers_detected(self, text, expected):
        assert numeric_value(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", [
        "",
        "   ",
        "abc",
        "1.14.17.3",     # EC number must NOT be numeric
        "P10731",        # accession must NOT be numeric
        "12a",
        "1 2",
        "2026-07-05",    # dates must NOT be numeric
        "1,000",
        "nan",
        "inf",
        "0x1F",
    ])
    def test_non_numbers_rejected(self, text):
        assert numeric_value(text) is None

    def test_is_numeric_predicate(self):
        assert is_numeric("17")
        assert not is_numeric("EC 17")
