"""Unit tests for document reconstruction (the tagger's storage half)."""

import pytest

from repro.datahounds.sources.enzyme import EnzymeTransformer, SAMPLE_ENTRY
from repro.errors import StorageError
from repro.shredding import (
    WarehouseLoader,
    reconstruct_by_entry,
    reconstruct_document,
    reconstruct_subtree,
)
from repro.xmlkit import parse_document


class TestRoundTrip:
    def test_figure2_document_roundtrips(self, backend):
        loader = WarehouseLoader(backend)
        original = EnzymeTransformer().transform_text(SAMPLE_ENTRY)[0]
        doc_id = loader.store_document("hlx_enzyme", "DEFAULT", "1.14.17.3",
                                       original)
        rebuilt = reconstruct_document(backend, doc_id)
        assert rebuilt.root == original.root

    def test_sibling_order_preserved(self, backend):
        loader = WarehouseLoader(backend)
        original = parse_document(
            "<r><a>1</a><b>2</b><a>3</a><c/><a>4</a></r>")
        doc_id = loader.store_document("s", "c", "k", original)
        rebuilt = reconstruct_document(backend, doc_id)
        assert [c.tag for c in rebuilt.root.children] == [
            "a", "b", "a", "c", "a"]
        assert rebuilt.root == original.root

    def test_attributes_restored(self, backend):
        loader = WarehouseLoader(backend)
        original = parse_document('<r><x a="1" b="two">t</x></r>')
        doc_id = loader.store_document("s", "c", "k", original)
        rebuilt = reconstruct_document(backend, doc_id)
        assert rebuilt.root == original.root

    def test_sequences_reinlined(self, backend):
        loader = WarehouseLoader(backend)
        original = parse_document(
            '<r><sequence length="4">acgt</sequence></r>')
        doc_id = loader.store_document("s", "c", "k", original)
        rebuilt = reconstruct_document(backend, doc_id)
        assert rebuilt.root == original.root

    def test_reconstruct_by_entry(self, backend):
        loader = WarehouseLoader(backend)
        original = parse_document("<r><v>x</v></r>")
        loader.store_document("s", "inv", "K9", original)
        rebuilt = reconstruct_by_entry(backend, "s", "K9")
        assert rebuilt.root == original.root
        rebuilt2 = reconstruct_by_entry(backend, "s", "K9",
                                        collection="inv")
        assert rebuilt2.root == original.root


class TestSubtree:
    def test_subtree_by_node_id(self, backend):
        loader = WarehouseLoader(backend)
        original = parse_document("<r><a><b>deep</b></a><c/></r>")
        doc_id = loader.store_document("s", "c", "k", original)
        subtree = reconstruct_subtree(backend, doc_id, 1)   # <a>
        assert subtree.tag == "a"
        assert subtree.first("b").text() == "deep"

    def test_missing_node_rejected(self, backend):
        loader = WarehouseLoader(backend)
        doc_id = loader.store_document(
            "s", "c", "k", parse_document("<r/>"))
        with pytest.raises(StorageError):
            reconstruct_subtree(backend, doc_id, 99)


class TestErrors:
    def test_unknown_doc_id_rejected(self, backend):
        WarehouseLoader(backend)
        with pytest.raises(StorageError):
            reconstruct_document(backend, 12345)

    def test_unknown_entry_rejected(self, backend):
        WarehouseLoader(backend)
        with pytest.raises(StorageError):
            reconstruct_by_entry(backend, "s", "nope")
