"""HTTP degradation contract: real requests against the same synth
federation ``xomatiq serve --synth --shards 2 --replicas 1`` builds —
partial vs strict modes, deadline headers, and byte-identical failover.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import _build_synth_federation
from repro.engine import Warehouse
from repro.federation.chaos import inject_faults
from repro.service import QueryService, ServiceConfig, ServiceServer
from repro.synth import build_corpus

ENZYME_QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'WHERE contains($a//catalytic_activity, "ketone") '
                'RETURN $a//enzyme_id, $a//enzyme_description')

SEED = 7


def _request(url, payload=None, headers=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), \
                response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _post_query(base, payload, headers=None):
    return _request(base + "/query", payload=payload, headers=headers)


@pytest.fixture
def degraded_server():
    """A live federated server (what ``serve --synth --shards 2
    --replicas 1`` runs) plus chaos wrappers on every backend."""
    engine = _build_synth_federation(SEED, 2, replicas=1)
    wrappers = {}
    for shard in engine.catalog.shard_names():
        for backend in engine.catalog.backends_for(shard):
            wrappers[backend] = inject_faults(
                engine.catalog.warehouse(backend), name=backend)
    server = ServiceServer(
        QueryService(engine, config=ServiceConfig(port=0)))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, engine, wrappers
    server.close()
    thread.join(timeout=10)


class TestDegradationContract:
    def test_partial_then_strict_then_recovered(self, degraded_server):
        server, engine, wrappers = degraded_server
        base = server.url
        # the synth layout puts hlx_enzyme whole on the first shard
        shard = engine.catalog.shards_for("hlx_enzyme")[0]

        status, headers, body = _post_query(
            base, {"query": ENZYME_QUERY})
        healthy = json.loads(body)
        assert status == 200 and not healthy["partial"]
        assert "X-Partial-Results" not in headers

        for backend in engine.catalog.backends_for(shard):
            wrappers[backend].force("error")   # primary AND replica die

        status, headers, body = _post_query(
            base, {"query": ENZYME_QUERY})
        degraded = json.loads(body)
        assert status == 200                   # partial is the default
        assert degraded["partial"] is True
        assert shard in degraded["missing_shards"]
        assert headers["X-Partial-Results"] == "true"
        assert degraded["row_count"] < healthy["row_count"] \
            or degraded["row_count"] == 0

        status, headers, body = _post_query(
            base, {"query": ENZYME_QUERY, "mode": "strict"})
        refused = json.loads(body)
        assert status == 503                   # strict refuses partials
        assert shard in refused["missing_shards"]
        assert int(headers["Retry-After"]) >= 1

        for backend in engine.catalog.backends_for(shard):
            wrappers[backend].restore()

        status, headers, body = _post_query(
            base, {"query": ENZYME_QUERY, "mode": "strict"})
        assert status == 200
        assert json.loads(body)["rows"] == healthy["rows"]
        assert "X-Partial-Results" not in headers

    def test_unknown_mode_rejected(self, degraded_server):
        server, __, ___ = degraded_server
        status, __, body = _post_query(
            server.url, {"query": ENZYME_QUERY, "mode": "optimistic"})
        assert status == 400
        assert b"unknown mode" in body

    def test_deadline_header_validation(self, degraded_server):
        server, __, ___ = degraded_server
        base = server.url
        status, __, body = _post_query(
            base, {"query": ENZYME_QUERY},
            headers={"X-Deadline-Ms": "soon"})
        assert status == 400 and b"X-Deadline-Ms" in body
        status, __, body = _post_query(
            base, {"query": ENZYME_QUERY},
            headers={"X-Deadline-Ms": "-100"})
        assert status == 400 and b"positive" in body
        status, __, ___ = _post_query(
            base, {"query": ENZYME_QUERY},
            headers={"X-Deadline-Ms": "5000"})
        assert status == 200

    def test_failover_is_byte_identical_over_http(self, degraded_server):
        server, engine, wrappers = degraded_server
        base = server.url
        monolith = Warehouse(metrics=False)
        try:
            monolith.load_corpus(build_corpus(seed=SEED))
            oracle = monolith.query(ENZYME_QUERY).to_xml().encode("utf-8")
        finally:
            monolith.close()
        shard = engine.catalog.shards_for("hlx_enzyme")[0]
        wrappers[shard].force("error")         # replica keeps covering
        status, headers, body = _post_query(
            base, {"query": ENZYME_QUERY, "format": "xml"})
        assert status == 200
        assert "X-Partial-Results" not in headers
        assert body == oracle

    def test_health_surfaces_breakers_and_replicas(self, degraded_server):
        server, engine, wrappers = degraded_server
        base = server.url
        shard = engine.catalog.shards_for("hlx_enzyme")[0]
        wrappers[shard].force("error")
        for __ in range(3):                    # trip the breaker
            assert _post_query(base, {"query": ENZYME_QUERY})[0] == 200
        status, __, body = _request(base + "/health")
        report = json.loads(body)
        assert status == 200
        federation = report["federation"]
        assert federation["breakers"][shard]["state"] == "open"
        assert f"{shard}#r0" in federation["replicas"][shard]
