"""Query-service tests: routing/resources via :meth:`QueryService.
handle` (no sockets), then the real ThreadingHTTPServer under
concurrent clients, federated mode, and harvest-over-HTTP."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.datahounds.transport import DirectoryRepository
from repro.engine import Warehouse
from repro.federation import FederatedXomatiQ, ShardCatalog
from repro.obs import MetricsRegistry
from repro.service import QueryService, ServiceConfig, ServiceServer
from repro.synth import build_corpus

ENZYME_QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
                'WHERE contains($a//catalytic_activity, "ketone") '
                'RETURN $a//enzyme_id, $a//enzyme_description')

JOIN_QUERY = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number'''


@pytest.fixture(scope="module")
def service_corpus():
    return build_corpus(seed=7, enzyme_count=20, embl_count=30,
                        sprot_count=20)


@pytest.fixture
def service(service_corpus):
    warehouse = Warehouse(metrics=MetricsRegistry())
    warehouse.load_corpus(service_corpus)
    svc = QueryService(warehouse, config=ServiceConfig())
    yield svc
    svc.close()


class TestRouting:
    def test_unknown_resource_404(self, service):
        assert service.handle("GET", "/nope").status == 404

    def test_method_mismatch_405(self, service):
        response = service.handle("GET", "/query")
        assert response.status == 405
        assert response.headers["Allow"] == "POST"
        assert service.handle("POST", "/stats").status == 405

    def test_invalid_json_body_400(self, service):
        response = service.handle("POST", "/query", body=b"not json")
        assert response.status == 400
        assert "JSON" in response.payload["error"]

    def test_oversized_body_413(self, service):
        service.config.max_body_bytes = 64
        response = service.handle("POST", "/query", body=b"x" * 65)
        assert response.status == 413

    def test_trailing_slash_routes(self, service):
        assert service.handle("GET", "/stats/").status == 200


class TestQueryResource:
    def test_rows_payload(self, service):
        response = service.handle("POST", "/query", body=json.dumps(
            {"query": ENZYME_QUERY}).encode())
        assert response.status == 200
        payload = response.payload
        assert payload["columns"] == ["enzyme_id", "enzyme_description"]
        assert payload["row_count"] == len(payload["rows"])
        assert payload["complete"] is True
        first = payload["rows"][0]
        assert set(first["bindings"]) == {"a"}
        assert set(first["bindings"]["a"]) == {"doc_id", "node_id"}
        assert first["values"]["enzyme_id"]

    def test_rows_match_inprocess_query(self, service):
        response = service.handle("POST", "/query", body=json.dumps(
            {"query": ENZYME_QUERY}).encode())
        direct = service.engine.query(ENZYME_QUERY)
        assert response.payload["row_count"] == len(direct)
        assert response.payload["rows"][0]["values"] == \
            direct.rows[0].values

    def test_xml_format(self, service):
        response = service.handle("POST", "/query", body=json.dumps(
            {"query": ENZYME_QUERY, "format": "xml"}).encode())
        assert response.status == 200
        assert response.content_type.startswith("application/xml")
        assert b"<xomatiq_results" in response.encoded()

    def test_missing_query_400(self, service):
        assert service.handle("POST", "/query",
                              body=b"{}").status == 400

    def test_unknown_format_400(self, service):
        response = service.handle("POST", "/query", body=json.dumps(
            {"query": ENZYME_QUERY, "format": "yaml"}).encode())
        assert response.status == 400

    def test_bad_query_is_400_with_type(self, service):
        response = service.handle("POST", "/query", body=json.dumps(
            {"query": "FOR bogus"}).encode())
        assert response.status == 400
        assert "Error" in response.payload["type"]


class TestKeywordResource:
    def test_all_tokens_required_and_ranked(self, service):
        response = service.handle("GET", "/keyword?q=kinase")
        assert response.status == 200
        hits = response.payload["results"]
        assert hits
        matches = [hit["matches"] for hit in hits]
        assert matches == sorted(matches, reverse=True)
        assert set(hits[0]) == {"doc_id", "source", "collection",
                                "entry_key", "matches"}

    def test_source_filter(self, service):
        response = service.handle(
            "GET", "/keyword?q=kinase&source=hlx_sprot")
        assert all(hit["source"] == "hlx_sprot"
                   for hit in response.payload["results"])

    def test_limit_clamped(self, service):
        service.config.keyword_limit_max = 3
        response = service.handle("GET", "/keyword?q=kinase&limit=999")
        assert response.payload["limit"] == 3
        assert len(response.payload["results"]) <= 3

    def test_missing_terms_400(self, service):
        assert service.handle("GET", "/keyword").status == 400

    def test_no_hits_is_empty_not_error(self, service):
        response = service.handle("GET", "/keyword?q=zzzzzzqqqq")
        assert response.status == 200
        assert response.payload["count"] == 0

    def test_matches_inprocess_search(self, service):
        response = service.handle("GET", "/keyword?q=kinase&limit=10")
        assert response.payload["results"] == \
            service.engine.keyword_search("kinase", limit=10)


class TestDocumentResource:
    def test_reconstructs_xml(self, service):
        hit = service.handle(
            "GET", "/keyword?q=kinase").payload["results"][0]
        response = service.handle("GET", f"/documents/{hit['doc_id']}")
        assert response.status == 200
        assert response.content_type.startswith("application/xml")
        assert response.encoded().startswith(b"<?xml")

    def test_unknown_doc_404(self, service):
        assert service.handle("GET", "/documents/999999").status == 404

    def test_non_numeric_400(self, service):
        assert service.handle("GET", "/documents/abc").status == 400
        assert service.handle("GET", "/documents").status == 400


class TestProbeResources:
    def test_health_ok(self, service):
        response = service.handle("GET", "/health")
        assert response.status == 200
        assert response.payload["status"] == "ok"

    def test_health_fail_is_503(self, service):
        # amputate the keyword index: structural breakage -> fail
        service.engine.backend.execute("DELETE FROM keywords")
        service.engine.backend.commit()
        response = service.handle("GET", "/health")
        assert response.status == 503
        assert response.payload["status"] == "fail"

    def test_stats(self, service):
        response = service.handle("GET", "/stats")
        assert response.status == 200
        assert response.payload["documents"] > 0

    def test_metrics_json_includes_service_counters(self, service):
        service.handle("GET", "/keyword?q=kinase")
        snapshot = service.handle("GET", "/metrics").payload
        names = {c["name"] for c in snapshot["counters"]}
        assert "service.requests" in names
        assert "query_cache.misses" in names

    def test_metrics_prometheus(self, service):
        service.handle("GET", "/keyword?q=kinase")
        response = service.handle("GET", "/metrics?format=prometheus")
        assert response.content_type.startswith("text/plain")
        assert b"xomatiq_service_requests_total" in response.encoded()

    def test_request_event_logged(self, service):
        service.handle("GET", "/stats", client="10.0.0.9")
        events = service.events.events(name="service.request")
        assert events
        assert events[-1].fields["path"] == "/stats"
        assert events[-1].fields["status"] == 200
        assert events[-1].fields["client"] == "10.0.0.9"


class TestAdmissionAndRateLimit:
    def test_rate_limit_429_per_client(self, service_corpus):
        warehouse = Warehouse(metrics=MetricsRegistry())
        warehouse.load_corpus(service_corpus)
        service = QueryService(warehouse, config=ServiceConfig(
            rate_limit=0.001, rate_burst=2.0))
        try:
            statuses = [service.handle(
                "GET", "/keyword?q=kinase",
                headers={"X-Client-Id": "greedy"}).status
                for __ in range(4)]
            assert statuses[:2] == [200, 200]
            assert statuses[2] == 429
            # a different client is untouched
            assert service.handle(
                "GET", "/keyword?q=kinase",
                headers={"X-Client-Id": "polite"}).status == 200
            # probes bypass the limiter entirely
            assert service.handle(
                "GET", "/health",
                headers={"X-Client-Id": "greedy"}).status == 200
            rejected = service.metrics.get_counter(
                "service.rejected", reason="rate_limit")
            assert rejected >= 2
        finally:
            service.close()

    def test_capacity_503_with_retry_after(self, service):
        while service.admission.try_admit():
            pass   # exhaust the in-flight budget
        try:
            response = service.handle("GET", "/keyword?q=kinase")
            assert response.status == 503
            assert response.headers["Retry-After"] == "1"
            assert service.handle("GET", "/health").status == 200
        finally:
            for __ in range(service.admission.max_in_flight):
                service.admission.release()
        assert service.handle("GET", "/keyword?q=kinase").status == 200


# -- live HTTP --------------------------------------------------------------


def _request(url, payload=None, headers=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture
def live_server(service_corpus):
    warehouse = Warehouse(metrics=MetricsRegistry())
    warehouse.load_corpus(service_corpus)
    server = ServiceServer(
        QueryService(warehouse, config=ServiceConfig(port=0)))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=10)


class TestLiveHttp:
    def test_full_surface_over_sockets(self, live_server):
        base = live_server.url
        status, body = _request(base + "/health")
        assert status == 200
        status, body = _request(
            base + "/query", payload={"query": ENZYME_QUERY})
        assert status == 200
        rows = json.loads(body)
        assert rows["row_count"] > 0
        status, body = _request(base + "/keyword?q=kinase&limit=3")
        assert status == 200
        doc_id = json.loads(body)["results"][0]["doc_id"]
        status, body = _request(base + f"/documents/{doc_id}")
        assert status == 200
        assert body.startswith(b"<?xml")
        status, body = _request(base + "/metrics?format=prometheus")
        assert status == 200
        assert b"xomatiq_service_request_seconds" in body

    def test_concurrent_clients_agree(self, live_server):
        base = live_server.url
        expected = json.loads(_request(
            base + "/query", payload={"query": JOIN_QUERY})[1])
        results, errors = [], []

        def client():
            try:
                for __ in range(5):
                    status, body = _request(
                        base + "/query", payload={"query": JOIN_QUERY})
                    assert status == 200
                    results.append(json.loads(body))
            except Exception as exc:   # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=client) for __ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 60
        assert all(result == expected for result in results)

    def test_graceful_shutdown_mid_traffic(self, service_corpus):
        warehouse = Warehouse(metrics=MetricsRegistry())
        warehouse.load_corpus(service_corpus)
        server = ServiceServer(
            QueryService(warehouse, config=ServiceConfig(port=0)))
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        assert _request(server.url + "/health")[0] == 200
        server.close()
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestHarvestResource:
    def test_harvest_and_refresh(self, tmp_path, service_corpus):
        repo = DirectoryRepository(tmp_path / "mirror")
        repo.publish("hlx_enzyme", "2026_01", service_corpus.enzyme_text)
        warehouse = Warehouse(metrics=MetricsRegistry())
        service = QueryService(warehouse, config=ServiceConfig())
        try:
            response = service.handle("POST", "/harvest", body=json.dumps(
                {"repo": str(tmp_path / "mirror"),
                 "sources": ["hlx_enzyme"]}).encode())
            assert response.status == 200
            payload = response.payload
            assert payload["ok"] is True
            assert payload["documents_loaded"] == 20
            assert payload["reports"]["hlx_enzyme"]["release"] \
                == "2026_01"
            # a second harvest of the same release is a clean no-op
            response = service.handle("POST", "/harvest", body=json.dumps(
                {"repo": str(tmp_path / "mirror"),
                 "sources": ["hlx_enzyme"]}).encode())
            assert response.status == 200
            assert response.payload["documents_loaded"] == 0
        finally:
            service.close()

    def test_missing_repo_400(self, service):
        assert service.handle("POST", "/harvest",
                              body=b"{}").status == 400

    def test_failed_source_reported_502(self, tmp_path, service_corpus):
        repo = DirectoryRepository(tmp_path / "mirror")
        repo.publish("hlx_enzyme", "2026_01", service_corpus.enzyme_text)
        warehouse = Warehouse(metrics=MetricsRegistry())
        service = QueryService(warehouse, config=ServiceConfig())
        try:
            response = service.handle("POST", "/harvest", body=json.dumps(
                {"repo": str(tmp_path / "mirror"),
                 "sources": ["hlx_enzyme", "hlx_embl"]}).encode())
            assert response.status == 502
            assert response.payload["failures"]["hlx_embl"]
            assert response.payload["reports"]["hlx_enzyme"][
                "documents_loaded"] == 20
        finally:
            service.close()


class TestFederatedService:
    @pytest.fixture
    def federated_service(self, service_corpus):
        catalog = ShardCatalog()
        catalog.add_shard("s0")
        catalog.add_shard("s1")
        catalog.assign("hlx_enzyme", "s0")
        catalog.assign("hlx_embl", "s1")
        catalog.assign("hlx_sprot", "s0")
        federation = FederatedXomatiQ(catalog,
                                      metrics=MetricsRegistry())
        federation.load_corpus(service_corpus)
        service = QueryService(federation, config=ServiceConfig())
        yield service
        service.close()

    def test_query_carries_shard_bindings(self, federated_service):
        response = federated_service.handle(
            "POST", "/query",
            body=json.dumps({"query": JOIN_QUERY}).encode())
        assert response.status == 200
        row = response.payload["rows"][0]
        assert row["bindings"]["a"]["shard"] == "s1"

    def test_keyword_hits_carry_shard(self, federated_service):
        response = federated_service.handle("GET", "/keyword?q=kinase")
        hits = response.payload["results"]
        assert hits
        assert all(hit["shard"] in ("s0", "s1") for hit in hits)

    def test_document_fetch_resolves_shard_automatically(
            self, federated_service):
        hit = federated_service.handle(
            "GET", "/keyword?q=kinase").payload["results"][0]
        response = federated_service.handle(
            "GET", f"/documents/{hit['doc_id']}")
        assert response.status == 200
        assert response.encoded().startswith(b"<?xml")

    def test_document_fetch_shard_override_and_miss(
            self, federated_service):
        hit = federated_service.handle(
            "GET", "/keyword?q=kinase").payload["results"][0]
        response = federated_service.handle(
            "GET",
            f"/documents/{hit['doc_id']}?shard={hit['shard']}")
        assert response.status == 200
        assert response.encoded().startswith(b"<?xml")
        assert federated_service.handle(
            "GET", "/documents/999999").status == 404

    def test_harvest_rejected_400(self, federated_service):
        response = federated_service.handle(
            "POST", "/harvest",
            body=json.dumps({"repo": "/tmp/nope"}).encode())
        assert response.status == 400

    def test_stats_and_health_roll_up(self, federated_service):
        stats = federated_service.handle("GET", "/stats").payload
        assert stats["shards"] == 2
        health = federated_service.handle("GET", "/health")
        assert health.status == 200
        assert "shards" in health.payload

    def test_stats_exposes_optimizer_block(self, federated_service):
        before = federated_service.handle("GET", "/stats").payload
        assert before["optimizer"]["shards_analyzed"] == 0
        federated_service.engine.analyze(persist=False)
        after = federated_service.handle("GET", "/stats").payload
        optimizer = after["optimizer"]
        assert optimizer["shards_analyzed"] == 2
        assert optimizer["inlist_cutoff"] > 0
        assert 0 < optimizer["bloom_fp_rate"] < 1
