"""Admission-control unit tests (fake clocks, no sockets)."""

import threading

from repro.service import AdmissionController, RateLimiter, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.allow(clock.now) for __ in range(4)] \
            == [True, True, True, False]

    def test_refill_restores_budget(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.allow(clock.now)
        assert bucket.allow(clock.now)
        assert not bucket.allow(clock.now)
        clock.advance(0.5)   # 2 tokens/s * 0.5s = 1 token back
        assert bucket.allow(clock.now)
        assert not bucket.allow(clock.now)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.allow(clock.now)
        assert bucket.allow(clock.now)
        assert not bucket.allow(clock.now)


class TestRateLimiter:
    def test_zero_rate_is_unlimited(self):
        limiter = RateLimiter(rate=0.0)
        assert all(limiter.allow("c") for __ in range(1000))

    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.allow("alice")
        assert not limiter.allow("alice")
        assert limiter.allow("bob")   # alice's spend is not bob's

    def test_bucket_table_stays_bounded(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock,
                              max_clients=10)
        for index in range(50):
            limiter.allow(f"client-{index}")
        assert len(limiter._buckets) <= 10

    def test_evicted_client_restarts_with_full_bucket(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock,
                              max_clients=4)
        assert limiter.allow("c0")
        assert not limiter.allow("c0")
        for index in range(1, 10):   # flood past the cap
            limiter.allow(f"c{index}")
        # c0's bucket fell out of the table — generosity, not a 429
        assert limiter.allow("c0")


class TestAdmissionController:
    def test_admits_up_to_cap_then_sheds(self):
        control = AdmissionController(max_in_flight=2)
        assert control.try_admit()
        assert control.try_admit()
        assert not control.try_admit()
        assert control.in_flight == 2
        control.release()
        assert control.try_admit()

    def test_release_restores_capacity(self):
        control = AdmissionController(max_in_flight=1)
        for __ in range(5):
            assert control.try_admit()
            control.release()
        assert control.in_flight == 0

    def test_thread_safety_never_over_admits(self):
        control = AdmissionController(max_in_flight=5)
        admitted = []
        barrier = threading.Barrier(16)
        peak = []

        def worker():
            barrier.wait()
            for __ in range(200):
                if control.try_admit():
                    peak.append(control.in_flight)
                    control.release()
                    admitted.append(1)

        threads = [threading.Thread(target=worker) for __ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert admitted   # progress was made
        assert max(peak) <= 5
        assert control.in_flight == 0
