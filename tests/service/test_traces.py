"""Service-layer tracing: per-request trace minting, ``X-Request-Id``
/ ``X-Trace-Id`` echo on **every** response path (success, errors,
and 429/503 load-shedding), the ``/traces`` API, histogram exemplars,
and request-id stamping in the structured event log."""

import json

import pytest

from repro.engine import Warehouse
from repro.obs import MetricsRegistry
from repro.service import QueryService, ServiceConfig
from repro.synth import build_corpus

QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
         'RETURN $a//enzyme_id')


@pytest.fixture(scope="module")
def trace_corpus():
    return build_corpus(seed=7, enzyme_count=10, embl_count=10,
                        sprot_count=10)


def make_service(trace_corpus, **config):
    warehouse = Warehouse(metrics=MetricsRegistry())
    warehouse.load_corpus(trace_corpus)
    return QueryService(warehouse, config=ServiceConfig(**config))


@pytest.fixture
def service(trace_corpus):
    svc = make_service(trace_corpus)
    yield svc
    svc.close()


def query_body(text=QUERY):
    return json.dumps({"query": text}).encode()


class TestRequestIdEcho:
    def test_success_echoes_inbound_id(self, service):
        response = service.handle("POST", "/query", body=query_body(),
                                  headers={"X-Request-Id": "req-1"})
        assert response.status == 200
        assert response.headers["X-Request-Id"] == "req-1"
        assert response.headers["X-Trace-Id"] == "req-1"

    def test_fresh_id_minted_when_absent(self, service):
        response = service.handle("GET", "/health")
        assert response.headers["X-Request-Id"]
        assert response.headers["X-Trace-Id"] == \
            response.headers["X-Request-Id"]

    def test_unsafe_inbound_id_is_not_echoed_raw(self, service):
        response = service.handle(
            "GET", "/health",
            headers={"X-Request-Id": "evil\r\nSet-Cookie: x"})
        echoed = response.headers["X-Request-Id"]
        assert "\r" not in echoed and "\n" not in echoed
        assert echoed != "evil\r\nSet-Cookie: x"

    @pytest.mark.parametrize("method,target,body,expected", [
        ("GET", "/nope", b"", 404),
        ("GET", "/query", b"", 405),
        ("POST", "/query", b"not json", 400),
        ("GET", "/documents/999999", b"", 404),
    ])
    def test_error_paths_echo_headers(self, service, method, target,
                                      body, expected):
        response = service.handle(method, target, body=body,
                                  headers={"X-Request-Id": "req-err"})
        assert response.status == expected
        assert response.headers["X-Request-Id"] == "req-err"
        assert response.headers["X-Trace-Id"] == "req-err"

    def test_429_rejection_echoes_headers(self, trace_corpus):
        service = make_service(trace_corpus, rate_limit=0.001,
                               rate_burst=1.0)
        try:
            service.handle("POST", "/query", body=query_body())
            response = service.handle(
                "POST", "/query", body=query_body(),
                headers={"X-Request-Id": "req-shed"})
            assert response.status == 429
            assert response.headers["X-Request-Id"] == "req-shed"
            assert response.headers["X-Trace-Id"] == "req-shed"
            assert response.payload["request_id"] == "req-shed"
            event = service.events.events(name="service.rejected")[-1]
            assert event.fields["request_id"] == "req-shed"
        finally:
            service.close()

    def test_503_rejection_echoes_headers(self, service):
        while service.admission.try_admit():
            pass
        try:
            response = service.handle(
                "POST", "/query", body=query_body(),
                headers={"X-Request-Id": "req-cap"})
            assert response.status == 503
            assert response.headers["X-Request-Id"] == "req-cap"
            assert response.headers["X-Trace-Id"] == "req-cap"
            event = service.events.events(name="service.rejected")[-1]
            assert event.fields["request_id"] == "req-cap"
        finally:
            for __ in range(service.admission.max_in_flight):
                service.admission.release()

    def test_request_event_carries_request_id(self, service):
        service.handle("GET", "/stats",
                       headers={"X-Request-Id": "req-evt"})
        event = service.events.events(name="service.request")[-1]
        assert event.fields["request_id"] == "req-evt"


class TestTracesApi:
    def test_query_trace_resolvable_by_id(self, service):
        response = service.handle("POST", "/query", body=query_body(),
                                  headers={"X-Request-Id": "req-t1"})
        assert response.status == 200
        trace = service.handle("GET", "/traces/req-t1")
        assert trace.status == 200
        payload = trace.payload
        assert payload["format"] == "xomatiq-trace/1"
        assert payload["endpoint"] == "query"
        assert payload["status"] == 200
        root = payload["root"]
        assert root["name"] == "request"
        names = [child["name"] for child in root["children"]]
        assert names[0] == "admission"
        assert "query" in names
        # connected: every child points back to its parent span
        def check(span):
            for child in span["children"]:
                assert child["parent_id"] == span["span_id"]
                assert child["trace_id"] == span["trace_id"]
                check(child)
        check(root)

    def test_listing_and_limit(self, service):
        for index in range(3):
            service.handle("GET", "/health",
                           headers={"X-Request-Id": f"req-l{index}"})
        listing = service.handle("GET", "/traces").payload
        assert listing["kept"] >= 3
        assert listing["capacity"] == service.config.trace_capacity
        ids = [t["trace_id"] for t in listing["traces"]]
        assert ids[0] == "req-l2"   # newest first
        limited = service.handle("GET", "/traces?limit=2").payload
        assert len(limited["traces"]) == 2
        assert service.handle("GET", "/traces?limit=x").status == 400

    def test_unknown_trace_404(self, service):
        assert service.handle("GET", "/traces/ghost").status == 404

    def test_chrome_format(self, service):
        service.handle("POST", "/query", body=query_body(),
                       headers={"X-Request-Id": "req-chrome"})
        response = service.handle(
            "GET", "/traces/req-chrome?format=chrome")
        assert response.status == 200
        events = response.payload["traceEvents"]
        assert {"request", "admission", "query"} <= \
            {e["name"] for e in events if e["ph"] == "X"}
        json.dumps(response.payload)
        bad = service.handle("GET", "/traces/req-chrome?format=yaml")
        assert bad.status == 400

    def test_traces_endpoint_not_self_retained(self, service):
        service.handle("GET", "/health",
                       headers={"X-Request-Id": "req-only"})
        service.handle("GET", "/traces",
                       headers={"X-Request-Id": "req-poll"})
        listing = service.handle("GET", "/traces").payload
        ids = {t["trace_id"] for t in listing["traces"]}
        assert "req-only" in ids
        assert "req-poll" not in ids

    def test_traces_bypass_admission(self, service):
        while service.admission.try_admit():
            pass
        try:
            assert service.handle("GET", "/traces").status == 200
        finally:
            for __ in range(service.admission.max_in_flight):
                service.admission.release()

    def test_error_response_trace_kept_as_error(self, trace_corpus):
        service = make_service(trace_corpus, trace_sample=0.0)
        try:
            service.handle("POST", "/query", body=query_body(),
                           headers={"X-Request-Id": "req-ok"})
            # routine trace sampled out at rate 0.0 ...
            assert service.handle(
                "GET", "/traces/req-ok").status == 404
            # ... but a 5xx is always kept
            original = service.engine.query
            service.engine.query = lambda text: 1 / 0
            try:
                crashed = service.handle(
                    "POST", "/query", body=query_body(),
                    headers={"X-Request-Id": "req-boom"})
            finally:
                service.engine.query = original
            assert crashed.status == 500
            trace = service.handle("GET", "/traces/req-boom").payload
            assert trace["kept"] == "error"
            assert trace["error"] is True
        finally:
            service.close()


class TestExemplars:
    def test_kept_trace_becomes_histogram_exemplar(self, service):
        service.handle("POST", "/query", body=query_body(),
                       headers={"X-Request-Id": "req-ex"})
        text = service.metrics.render_prometheus()
        exemplar_lines = [
            line for line in text.splitlines()
            if "service_request_seconds_bucket" in line and " # " in line]
        assert exemplar_lines
        assert any('trace_id="req-ex"' in line
                   for line in exemplar_lines)

    def test_unkept_trace_leaves_no_exemplar(self, trace_corpus):
        service = make_service(trace_corpus, trace_sample=0.0)
        try:
            service.handle("POST", "/query", body=query_body())
            text = service.metrics.render_prometheus()
            for line in text.splitlines():
                if "service_request_seconds" in line:
                    assert " # " not in line
        finally:
            service.close()


class TestTracingDisabled:
    def test_capacity_zero_disables_cleanly(self, trace_corpus):
        service = make_service(trace_corpus, trace_capacity=0)
        try:
            assert service.tracer is None
            response = service.handle(
                "POST", "/query", body=query_body(),
                headers={"X-Request-Id": "req-off"})
            assert response.status == 200
            # request ids still echo; there is just no trace to link
            assert response.headers["X-Request-Id"] == "req-off"
            assert "X-Trace-Id" not in response.headers
            assert service.handle("GET", "/traces").status == 404
        finally:
            service.close()


class TestStoreBounds:
    def test_ring_capacity_enforced(self, trace_corpus):
        service = make_service(trace_corpus, trace_capacity=4)
        try:
            for index in range(10):
                service.handle("GET", "/health",
                               headers={"X-Request-Id": f"r{index}"})
            listing = service.handle("GET", "/traces").payload
            assert listing["count"] == 4
            assert [t["trace_id"] for t in listing["traces"]] == \
                ["r9", "r8", "r7", "r6"]
            assert listing["offered"] == 10
        finally:
            service.close()
