"""The /subscriptions push surface — create/list/delete, long-poll
with cursor resume, SSE streaming, and the disabled/federated 404."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.datahounds import InMemoryRepository
from repro.engine import Warehouse
from repro.obs import MetricsRegistry
from repro.service import (
    QueryService,
    ServiceConfig,
    ServiceServer,
)
from repro.synth import build_corpus, mutate_release

QUERY = ('FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
         'RETURN $a//enzyme_id')


@pytest.fixture
def setup():
    corpus = build_corpus(seed=37, enzyme_count=12, embl_count=4,
                          sprot_count=4)
    repository = InMemoryRepository()
    corpus.publish_to(repository, "r1")
    warehouse = Warehouse(metrics=MetricsRegistry())
    hound = warehouse.connect(repository)
    service = QueryService(warehouse, config=ServiceConfig())
    yield corpus, repository, hound, service
    service.close()


def create(service, query=QUERY, **extra):
    body = json.dumps({"query": query, **extra}).encode()
    return service.handle("POST", "/subscriptions", body=body)


class TestRegistration:
    def test_create_returns_record(self, setup):
        *__, service = setup
        response = create(service, policy="coalesce")
        assert response.status == 201
        record = response.payload
        assert record["id"] and record["policy"] == "coalesce"
        assert record["mode"] == "channel"
        assert record["sources"] == ["hlx_enzyme"]

    def test_list_and_get(self, setup):
        *__, service = setup
        sub_id = create(service).payload["id"]
        listing = service.handle("GET", "/subscriptions")
        assert listing.status == 200
        assert listing.payload["count"] == 1
        assert listing.payload["subscriptions"][0]["id"] == sub_id
        one = service.handle("GET", f"/subscriptions/{sub_id}")
        assert one.status == 200 and one.payload["id"] == sub_id

    def test_delete(self, setup):
        *__, service = setup
        sub_id = create(service).payload["id"]
        assert service.handle("DELETE",
                              f"/subscriptions/{sub_id}").status == 200
        assert service.handle("DELETE",
                              f"/subscriptions/{sub_id}").status == 404
        assert service.handle("GET", "/subscriptions").payload["count"] == 0

    def test_missing_query_400(self, setup):
        *__, service = setup
        response = service.handle("POST", "/subscriptions",
                                  body=json.dumps({"policy": "block"})
                                  .encode())
        assert response.status == 400

    def test_bad_policy_400(self, setup):
        *__, service = setup
        assert create(service, policy="bogus").status == 400

    def test_bad_query_400(self, setup):
        *__, service = setup
        assert create(service, query="NOT FLWR").status == 400

    def test_method_mismatch_405(self, setup):
        *__, service = setup
        sub_id = create(service).payload["id"]
        assert service.handle("DELETE", "/subscriptions").status == 405
        assert service.handle("POST",
                              f"/subscriptions/{sub_id}").status == 405
        assert service.handle(
            "POST", f"/subscriptions/{sub_id}/events").status == 405

    def test_disabled_404(self):
        warehouse = Warehouse(metrics=MetricsRegistry())
        service = QueryService(
            warehouse, config=ServiceConfig(subscriptions=False))
        try:
            assert service.handle("GET", "/subscriptions").status == 404
        finally:
            service.close()


class TestEvents:
    def test_long_poll_delivers_delta(self, setup):
        __, __, hound, service = setup
        sub_id = create(service).payload["id"]
        hound.load("hlx_enzyme")
        response = service.handle(
            "GET", f"/subscriptions/{sub_id}/events?timeout=5")
        assert response.status == 200
        page = response.payload
        assert page["next"] == 1 and len(page["events"]) == 1
        delta = page["events"][0]["delta"]
        assert delta["origin"] == "full" and delta["added"]

    def test_cursor_resume_via_param_and_header(self, setup):
        corpus, repository, hound, service = setup
        sub_id = create(service).payload["id"]
        hound.load("hlx_enzyme")
        first = service.handle(
            "GET", f"/subscriptions/{sub_id}/events?timeout=5").payload
        cursor = first["next"]
        empty = service.handle(
            "GET", f"/subscriptions/{sub_id}/events?after={cursor}")
        assert empty.payload["events"] == []
        repository.publish("hlx_enzyme", "r2",
                           mutate_release(corpus.enzyme_text, seed=2,
                                          update_fraction=0.0,
                                          remove_fraction=0.4))
        hound.load("hlx_enzyme")
        via_header = service.handle(
            "GET", f"/subscriptions/{sub_id}/events?timeout=5",
            headers={"Last-Event-Id": str(cursor)})
        assert len(via_header.payload["events"]) == 1
        assert via_header.payload["events"][0]["delta"]["removed"]

    def test_bad_cursor_400(self, setup):
        *__, service = setup
        sub_id = create(service).payload["id"]
        response = service.handle(
            "GET", f"/subscriptions/{sub_id}/events?after=nope")
        assert response.status == 400

    def test_unknown_subscription_404(self, setup):
        *__, service = setup
        assert service.handle("GET",
                              "/subscriptions/nope/events").status == 404

    def test_sse_response_streams_frames(self, setup):
        __, __, hound, service = setup
        sub_id = create(service).payload["id"]
        hound.load("hlx_enzyme")
        response = service.handle(
            "GET", f"/subscriptions/{sub_id}/events"
                   f"?stream=sse&max_events=1&max_seconds=5")
        assert response.status == 200
        assert response.content_type.startswith("text/event-stream")
        assert response.stream is not None
        text = b"".join(response.stream).decode()
        assert "id: 1\n" in text and '"origin": "full"' in text

    def test_timeout_clamped_to_config_cap(self, setup):
        *__, service = setup
        service.config.subscription_poll_max_s = 0.2
        sub_id = create(service).payload["id"]
        started = time.perf_counter()
        service.handle("GET",
                       f"/subscriptions/{sub_id}/events?timeout=60")
        assert time.perf_counter() - started < 2.0


class TestLiveHttp:
    def test_subscribe_poll_delete_over_sockets(self, setup):
        __, __, hound, service = setup
        server = ServiceServer(service, ("127.0.0.1", 0))
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            request = urllib.request.Request(
                server.url + "/subscriptions", method="POST",
                data=json.dumps({"query": QUERY}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 201
                sub_id = json.loads(response.read())["id"]
            hound.load("hlx_enzyme")
            with urllib.request.urlopen(
                    server.url + f"/subscriptions/{sub_id}/events"
                                 f"?timeout=5", timeout=10) as response:
                page = json.loads(response.read())
            assert len(page["events"]) == 1
            request = urllib.request.Request(
                server.url + f"/subscriptions/{sub_id}",
                method="DELETE")
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_sse_over_sockets(self, setup):
        __, __, hound, service = setup
        server = ServiceServer(service, ("127.0.0.1", 0))
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            request = urllib.request.Request(
                server.url + "/subscriptions", method="POST",
                data=json.dumps({"query": QUERY}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=10) as response:
                sub_id = json.loads(response.read())["id"]
            hound.load("hlx_enzyme")
            with urllib.request.urlopen(
                    server.url + f"/subscriptions/{sub_id}/events"
                                 f"?stream=sse&max_events=1"
                                 f"&max_seconds=5",
                    timeout=10) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/event-stream")
                text = response.read().decode()
            assert "id: 1\n" in text and "data: {" in text
        finally:
            server.shutdown()
            thread.join(timeout=5)
