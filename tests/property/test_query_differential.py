"""Property-based differential testing of whole XomatiQ queries.

Random documents over a fixed vocabulary are loaded into a SQLite
warehouse and the native-XML store; random queries (keyword searches,
comparisons, order operators, boolean combinations, positional
predicates) must produce identical results on both paths. The native
tree-walker is the semantics oracle for the whole
XQuery→SQL→merge pipeline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, note, settings, strategies as st

from repro.baselines import NativeXmlStore
from repro.engine import Warehouse
from repro.relational import SqliteBackend
from repro.xmlkit import Document, Element

TAGS = ["alpha", "beta", "gamma"]
WORDS = ["kinase", "copper", "ketone", "membrane", "cycle", "zinc"]
NUMBERS = ["3", "17", "100", "250"]


@st.composite
def leaf(draw):
    element = Element(draw(st.sampled_from(TAGS)))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        element.append(" ".join(draw(st.lists(
            st.sampled_from(WORDS), min_size=1, max_size=3))))
    elif kind == 1:
        element.append(draw(st.sampled_from(NUMBERS)))
    if draw(st.booleans()):
        element.set("kind", draw(st.sampled_from(WORDS)))
    return element


@st.composite
def documents(draw):
    root = Element("entry")
    for item in draw(st.lists(leaf(), min_size=1, max_size=5)):
        root.append(item)
    group = root.subelement("group")
    for item in draw(st.lists(leaf(), max_size=3)):
        group.append(item)
    if draw(st.booleans()):
        residues = "".join(draw(st.lists(
            st.sampled_from(["acgt", "ttaa", "gcgc"]),
            min_size=1, max_size=4)))
        root.subelement("sequence", {"length": str(len(residues))},
                        text=residues)
    return Document(root, name="db")


def tagpath(draw, var="$e"):
    axis = draw(st.sampled_from(["/", "//"]))
    tag = draw(st.sampled_from(TAGS + ["group"]))
    return f"{var}{axis}{tag}"


@st.composite
def conditions(draw, depth=0):
    # atoms 0-5 everywhere; boolean combinators 6-7 only at depth 0
    kind = draw(st.integers(0, 7 if depth == 0 else 5))
    if kind == 0:
        word = draw(st.sampled_from(WORDS))
        return f'contains({tagpath(draw)}, "{word}")'
    if kind == 1:
        word = draw(st.sampled_from(WORDS))
        return f'contains($e, "{word}", any)'
    if kind == 2:
        number = draw(st.sampled_from(NUMBERS))
        op = draw(st.sampled_from(["=", "!=", "<", ">", "<=", ">="]))
        return f"{tagpath(draw)} {op} {number}"
    if kind == 3:
        word = draw(st.sampled_from(WORDS))
        return f'{tagpath(draw)}/@kind = "{word}"'
    if kind == 4:
        op = draw(st.sampled_from(["BEFORE", "AFTER"]))
        return f"{tagpath(draw)} {op} {tagpath(draw)}"
    if kind == 5:
        motif = draw(st.sampled_from(["acgt", "cg.c", "ttaa", "aaaa"]))
        return f'seqcontains($e//sequence, "{motif}")'
    if kind == 6:
        left = draw(conditions(depth=depth + 1))
        right = draw(conditions(depth=depth + 1))
        connector = draw(st.sampled_from(["AND", "OR"]))
        return f"({left} {connector} {right})"
    inner = draw(conditions(depth=depth + 1))
    return f"NOT ({inner})"


@st.composite
def return_items(draw):
    items = []
    for __ in range(draw(st.integers(1, 3))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            items.append(tagpath(draw))
        elif kind == 1:
            items.append(f"{tagpath(draw)}/@kind")
        elif kind == 2:
            tag = draw(st.sampled_from(TAGS))
            position = draw(st.integers(1, 3))
            items.append(f"$e//{tag}[{position}]")
        else:
            inner = tagpath(draw)
            attr = tagpath(draw)
            items.append(
                f"<wrap{len(items)} k={{ {attr}/@kind }}>"
                f"{{ {inner} }}</wrap{len(items)}>")
    return ", ".join(items)


@st.composite
def queries(draw):
    where = ""
    if draw(st.booleans()):
        where = f"WHERE {draw(conditions())} "
    return (f'FOR $e IN document("db.c")/entry {where}'
            f"RETURN {draw(return_items())}")


def canonical(result):
    """Order-insensitive multiset of rows by their values.

    Binding ids are intentionally excluded: the loader and the native
    store number documents differently (1- vs 0-based); result
    *content* and row multiplicity are the comparable surface.
    """
    return sorted(
        tuple(sorted((column, tuple(values))
                     for column, values in row.values.items()))
        for row in result.rows)


@given(docs=st.lists(documents(), min_size=1, max_size=4),
       query_text=queries())
@settings(max_examples=250, deadline=None)
def test_relational_path_matches_native_oracle(docs, query_text):
    from repro.xmlkit import serialize_compact
    warehouse = Warehouse(backend=SqliteBackend())
    store = NativeXmlStore()
    try:
        for index, doc in enumerate(docs):
            key = f"k{index}"
            note(f"doc {key}: {serialize_compact(doc)}")
            warehouse.loader.store_document("db", "c", key, doc)
            store.add_document("db", "c", key, doc)
        warehouse.optimize()
        relational = warehouse.query(query_text)
        native = store.query(query_text)
        assert canonical(relational) == canonical(native), query_text
    finally:
        warehouse.close()
