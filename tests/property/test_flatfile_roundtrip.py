"""Property-based tests for the flat-file record layer."""

import string

from hypothesis import given, settings, strategies as st

from repro.flatfile import Entry, parse_entries, render_entries
from repro.flatfile.lines import Line

codes = st.sampled_from(["ID", "DE", "AN", "CA", "CF", "CC", "DR", "KW"])

# payload must survive render/parse: no leading/trailing space loss, no
# newline injection, and must be non-empty so rstrip keeps the code line
payloads = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;:+-()='_",
    min_size=1, max_size=60).filter(
        lambda s: s.strip() == s and not s.startswith("//"))

entries_strategy = st.lists(
    st.builds(Line, codes, payloads), min_size=1, max_size=10
).map(Entry)


@given(st.lists(entries_strategy, min_size=0, max_size=6))
@settings(max_examples=120, deadline=None)
def test_render_parse_roundtrip(entries):
    text = render_entries(entries)
    assert parse_entries(text) == entries


@given(entries_strategy)
@settings(max_examples=80, deadline=None)
def test_rendered_lines_start_at_column_six(entry):
    text = render_entries([entry])
    for raw in text.splitlines():
        if raw == "//":
            continue
        assert raw[2:5] == "   "
        assert raw[5] != " "
