"""Property-based differential testing: minidb must agree with sqlite
on randomly generated single-table and join queries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import MiniDbBackend, SqliteBackend

COLUMNS = ["id", "grp", "num", "label"]
LABELS = ["alpha", "beta", "gamma", None]

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 50),                      # grp
        st.one_of(st.none(), st.integers(-100, 100)),   # num
        st.sampled_from(LABELS)),                 # label
    min_size=0, max_size=40)

comparison_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def predicates(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        op = draw(comparison_ops)
        value = draw(st.integers(-50, 50))
        return f"num {op} {value}"
    if kind == 1:
        label = draw(st.sampled_from([l for l in LABELS if l]))
        return f"label = '{label}'"
    if kind == 2:
        return draw(st.sampled_from(["num IS NULL", "num IS NOT NULL",
                                     "label IS NULL"]))
    if kind == 3:
        op = draw(comparison_ops)
        value = draw(st.integers(0, 40))
        return f"grp {op} {value}"
    pattern = draw(st.sampled_from(["%a%", "b%", "%ta", "_lpha"]))
    return f"label LIKE '{pattern}'"


@st.composite
def where_clauses(draw):
    parts = draw(st.lists(predicates(), min_size=1, max_size=3))
    connectors = draw(st.lists(st.sampled_from(["AND", "OR"]),
                               min_size=len(parts) - 1,
                               max_size=len(parts) - 1))
    clause = parts[0]
    for connector, part in zip(connectors, parts[1:]):
        clause += f" {connector} {part}"
    if draw(st.booleans()):
        clause = f"NOT ({clause})"
    return clause


def fill(backend, rows):
    backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, "
                    "num INTEGER, label TEXT)")
    backend.execute("CREATE INDEX idx_grp ON t (grp)")
    backend.execute("CREATE INDEX idx_num ON t (num)")
    backend.executemany(
        "INSERT INTO t (id, grp, num, label) VALUES (?, ?, ?, ?)",
        [(i,) + row for i, row in enumerate(rows)])


@given(rows=rows_strategy, where=where_clauses())
@settings(max_examples=120, deadline=None)
def test_filtered_selects_agree(rows, where):
    sqlite, minidb = SqliteBackend(), MiniDbBackend()
    try:
        fill(sqlite, rows)
        fill(minidb, rows)
        sql = f"SELECT id, grp, num, label FROM t WHERE {where}"
        assert sorted(minidb.execute(sql)) == sorted(sqlite.execute(sql))
    finally:
        sqlite.close()
        minidb.close()


@given(rows=rows_strategy)
@settings(max_examples=60, deadline=None)
def test_self_join_agrees(rows):
    sqlite, minidb = SqliteBackend(), MiniDbBackend()
    try:
        fill(sqlite, rows)
        fill(minidb, rows)
        sql = ("SELECT a.id, b.id FROM t a JOIN t b ON a.grp = b.grp "
               "WHERE a.id != b.id")
        assert sorted(minidb.execute(sql)) == sorted(sqlite.execute(sql))
    finally:
        sqlite.close()
        minidb.close()


@given(rows=rows_strategy)
@settings(max_examples=60, deadline=None)
def test_aggregates_agree(rows):
    sqlite, minidb = SqliteBackend(), MiniDbBackend()
    try:
        fill(sqlite, rows)
        fill(minidb, rows)
        for sql in [
                "SELECT COUNT(*), COUNT(num), COUNT(DISTINCT label) FROM t",
                "SELECT MIN(num), MAX(num), SUM(num) FROM t",
                "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp"]:
            assert sorted(minidb.execute(sql)) == sorted(sqlite.execute(sql))
    finally:
        sqlite.close()
        minidb.close()


@given(rows=rows_strategy, limit=st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_order_by_limit_agree(rows, limit):
    sqlite, minidb = SqliteBackend(), MiniDbBackend()
    try:
        fill(sqlite, rows)
        fill(minidb, rows)
        sql = (f"SELECT id FROM t WHERE num IS NOT NULL "
               f"ORDER BY num, id LIMIT {limit}")
        assert minidb.execute(sql) == sqlite.execute(sql)
    finally:
        sqlite.close()
        minidb.close()
