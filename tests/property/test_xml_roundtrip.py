"""Property-based tests: XML parse/serialize and shred/reconstruct are
lossless for arbitrary data-centric documents."""

import string

from hypothesis import given, settings, strategies as st

from repro.relational import SqliteBackend
from repro.shredding import WarehouseLoader, reconstruct_document
from repro.xmlkit import Document, Element, parse_document, serialize
from repro.xmlkit.serializer import serialize_compact

tag_names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)

# text that survives the whitespace policy: non-empty after strip, and
# without carriage returns (XML line-end normalization is out of scope)
text_values = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;:+-()&<>'\"_",
    min_size=1, max_size=40).filter(lambda s: s.strip() == s and s)

attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;&<>'\"_",
    max_size=20)


@st.composite
def elements(draw, depth=0):
    element = Element(draw(tag_names))
    for name in draw(st.lists(tag_names, max_size=3, unique=True)):
        element.set(name, draw(attr_values))
    if depth >= 3:
        if draw(st.booleans()):
            element.append(draw(text_values))
        return element
    kind = draw(st.integers(0, 2))
    if kind == 0:
        pass  # empty
    elif kind == 1:
        element.append(draw(text_values))
    else:
        for child in draw(st.lists(elements(depth=depth + 1), min_size=1,
                                   max_size=4)):
            element.append(child)
    return element


documents = elements().map(lambda root: Document(root, name="prop"))


@given(documents)
@settings(max_examples=120, deadline=None)
def test_pretty_serialize_parse_roundtrip(doc):
    assert parse_document(serialize(doc)) == doc


@given(documents)
@settings(max_examples=120, deadline=None)
def test_compact_serialize_parse_roundtrip(doc):
    assert parse_document(serialize_compact(doc)) == doc


@given(documents)
@settings(max_examples=60, deadline=None)
def test_shred_reconstruct_roundtrip(doc):
    backend = SqliteBackend()
    try:
        loader = WarehouseLoader(backend)
        doc_id = loader.store_document("prop", "c", "k", doc)
        rebuilt = reconstruct_document(backend, doc_id)
        assert rebuilt.root == doc.root
    finally:
        backend.close()


@given(documents)
@settings(max_examples=40, deadline=None)
def test_document_order_is_dense_and_total(doc):
    orders = [order for order, __ in doc.walk()]
    assert orders == sorted(orders)
    assert len(set(orders)) == len(orders)
