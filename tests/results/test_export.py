"""Unit tests for tabular result export."""

from repro.results import BoundNode, QueryResult, ResultRow, to_csv, to_tsv, write_tsv


def make_result():
    result = QueryResult(columns=["enzyme_id", "names"], variables=["a"])
    first = ResultRow(bindings={"a": BoundNode(1, 0)})
    first.values = {"enzyme_id": ["1.1.1.1"], "names": ["alpha", "beta"]}
    second = ResultRow(bindings={"a": BoundNode(2, 0)})
    second.values = {"enzyme_id": ["2.2.2.2"], "names": []}
    result.rows = [first, second]
    return result


class TestExports:
    def test_tsv_shape(self):
        lines = to_tsv(make_result()).splitlines()
        assert lines[0] == "enzyme_id\tnames"
        assert lines[1] == "1.1.1.1\talpha; beta"
        assert lines[2] == "2.2.2.2\t"

    def test_csv_quotes_delimiters_in_values(self):
        result = make_result()
        result.rows[0].values["names"] = ["with, comma"]
        lines = to_csv(result).splitlines()
        assert lines[1] == '1.1.1.1,"with, comma"'

    def test_write_tsv(self, tmp_path):
        path = tmp_path / "out.tsv"
        count = write_tsv(make_result(), path)
        assert count == 2
        assert path.read_text().startswith("enzyme_id\t")

    def test_result_methods_delegate(self):
        result = make_result()
        assert result.to_tsv().startswith("enzyme_id\t")
        assert result.to_csv().startswith("enzyme_id,")

    def test_exports_from_live_query(self, warehouse):
        result = warehouse.query(
            'FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme '
            'WHERE contains($a//catalytic_activity, "ketone") '
            'RETURN $a//enzyme_id, $a//alternate_name')
        tsv = result.to_tsv()
        assert tsv.splitlines()[0] == "enzyme_id\talternate_name"
        assert len(tsv.splitlines()) == len(result) + 1


class TestRemoveSource:
    def test_remove_source_clears_all_rows(self, warehouse):
        removed = warehouse.remove_source("hlx_sprot")
        assert removed > 0
        assert not warehouse.document_exists("hlx_sprot", None)
        # other sources untouched
        assert warehouse.document_exists("hlx_enzyme", "DEFAULT")
        stats = warehouse.stats()
        assert "documents:hlx_sprot" not in stats

    def test_remove_missing_source_is_zero(self, warehouse):
        assert warehouse.remove_source("never_loaded") == 0

    def test_remove_all_sources_leaves_zero_residue(self, warehouse):
        """Batched deletes must clear every generic-schema table —
        derived from TABLE_NAMES so a new table can't leak rows."""
        from repro.relational.schema import TABLE_NAMES
        for source in ("hlx_enzyme", "hlx_embl", "hlx_sprot", "hlx_omim"):
            warehouse.remove_source(source)
        stats = warehouse.stats()
        for table in TABLE_NAMES:
            assert stats[table] == 0, f"{table} left {stats[table]} rows"

    def test_remove_source_chunks_batched_deletes(self, warehouse):
        """Chunked IN-lists: force multiple chunks per table."""
        warehouse._REMOVE_CHUNK = 3
        removed = warehouse.remove_source("hlx_enzyme")
        assert removed > 3
        assert not warehouse.document_exists("hlx_enzyme", None)
        assert warehouse.stats()["documents"] > 0  # others intact
