"""Unit tests for the XML result tagger."""

from repro.results import BoundNode, QueryResult, ResultRow, element_name_for, tag_result
from repro.xmlkit import parse_document, serialize


def result_with(rows, columns=("enzyme_id", "@mim_id")):
    result = QueryResult(columns=list(columns), variables=["a"])
    for values in rows:
        row = ResultRow(bindings={"a": BoundNode(1, 0)})
        row.values = values
        result.rows.append(row)
    return result


class TestElementNames:
    def test_plain_name_kept(self):
        assert element_name_for("enzyme_id") == "enzyme_id"

    def test_attribute_column_prefixed(self):
        assert element_name_for("@mim_id") == "attr_mim_id"

    def test_weird_characters_sanitized(self):
        name = element_name_for("a b/c")
        parse_document(f"<{name}/>")   # must be a valid element name

    def test_leading_digit_fixed(self):
        name = element_name_for("1abc")
        parse_document(f"<{name}/>")


class TestTagResult:
    def test_shape(self):
        doc = tag_result(result_with(
            [{"enzyme_id": ["1.1.1.1"], "@mim_id": ["600000"]}]))
        assert doc.root.tag == "xomatiq_results"
        assert doc.root.get("rows") == "1"
        record = doc.root.first("result")
        assert record.first("enzyme_id").text() == "1.1.1.1"
        assert record.first("attr_mim_id").text() == "600000"

    def test_multi_values_repeat_elements(self):
        doc = tag_result(result_with(
            [{"enzyme_id": ["a", "b"], "@mim_id": []}]))
        record = doc.root.first("result")
        assert len(record.child_elements("enzyme_id")) == 2

    def test_missing_values_emit_empty_element(self):
        doc = tag_result(result_with(
            [{"enzyme_id": ["a"], "@mim_id": []}]))
        record = doc.root.first("result")
        assert record.first("attr_mim_id") is not None
        assert record.first("attr_mim_id").children == []

    def test_output_is_wellformed_xml(self):
        doc = tag_result(result_with(
            [{"enzyme_id": ["<&>"], "@mim_id": ["x"]}]))
        reparsed = parse_document(serialize(doc))
        record = reparsed.root.first("result")
        assert record.first("enzyme_id").text() == "<&>"

    def test_empty_result_document(self):
        doc = tag_result(result_with([]))
        assert doc.root.get("rows") == "0"
        assert doc.root.children == []
