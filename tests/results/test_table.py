"""Unit tests for the table formatter."""

from repro.results import BoundNode, QueryResult, ResultRow, format_table


def result_with(rows):
    result = QueryResult(columns=["id", "name"], variables=["a"])
    for values in rows:
        row = ResultRow(bindings={"a": BoundNode(1, 0)})
        row.values = values
        result.rows.append(row)
    return result


class TestFormatTable:
    def test_header_and_footer(self):
        text = format_table(result_with([{"id": ["1"], "name": ["x"]}]))
        assert "| id " in text
        assert text.endswith("1 row(s)")

    def test_multi_values_joined(self):
        text = format_table(result_with(
            [{"id": ["1"], "name": ["a", "b"]}]))
        assert "a; b" in text

    def test_empty_result(self):
        text = format_table(result_with([]))
        assert "0 row(s)" in text

    def test_wide_cells_clipped(self):
        text = format_table(result_with(
            [{"id": ["1"], "name": ["x" * 200]}]), )
        assert "..." in text
        assert all(len(line) < 120 for line in text.splitlines())

    def test_column_width_adapts(self):
        text = format_table(result_with(
            [{"id": ["1"], "name": ["somewhat longer value"]}]))
        header, body = text.splitlines()[1], text.splitlines()[3]
        assert len(header) == len(body)


class TestQueryResultApi:
    def test_column_accessor(self):
        result = result_with([{"id": ["1"], "name": ["x"]}])
        assert result.column("name") == [["x"]]

    def test_unknown_column_rejected(self):
        result = result_with([])
        try:
            result.column("zzz")
            raise AssertionError("expected KeyError")
        except KeyError:
            pass

    def test_scalars_flatten(self):
        result = result_with([{"id": ["1"], "name": ["a", "b"]},
                              {"id": ["2"], "name": ["c"]}])
        assert result.scalars("name") == ["a", "b", "c"]

    def test_row_first_and_joined(self):
        row = result_with([{"id": ["1"], "name": ["a", "b"]}]).rows[0]
        assert row.first("name") == "a"
        assert row.first("missing", "?") == "?"
        assert row.joined("name") == "a; b"

    def test_len_and_iter(self):
        result = result_with([{"id": ["1"], "name": ["x"]}])
        assert len(result) == 1
        assert list(result) == result.rows
