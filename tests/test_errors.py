"""The exception hierarchy contract: one catchable base, informative
messages."""

import pytest

import repro.errors as errors


ALL_ERRORS = [
    errors.XmlParseError, errors.DtdError, errors.DtdValidationError,
    errors.PathError, errors.FlatFileError, errors.TransportError,
    errors.TransformError, errors.UnknownSourceError, errors.SchemaError,
    errors.ConstraintError, errors.ExecutionError, errors.XQuerySyntaxError,
    errors.BindingError, errors.TranslationError,
    errors.UnknownDocumentError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_class", ALL_ERRORS)
    def test_everything_derives_from_repro_error(self, error_class):
        assert issubclass(error_class, errors.ReproError)

    def test_subsystem_bases(self):
        assert issubclass(errors.XmlParseError, errors.XmlError)
        assert issubclass(errors.TransportError, errors.DataHoundsError)
        assert issubclass(errors.ConstraintError, errors.StorageError)
        assert issubclass(errors.BindingError, errors.QueryError)


class TestMessages:
    def test_xml_parse_error_location(self):
        error = errors.XmlParseError("bad", line=3, column=7)
        assert "line 3" in str(error) and "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_xml_parse_error_without_location(self):
        assert str(errors.XmlParseError("bad")) == "bad"

    def test_flatfile_error_line_number(self):
        error = errors.FlatFileError("bad code", line_number=42)
        assert "line 42" in str(error)
        assert error.line_number == 42

    def test_xquery_error_offset(self):
        error = errors.XQuerySyntaxError("oops", position=17)
        assert "offset 17" in str(error)
        assert error.position == 17


class TestOneCatchSite:
    def test_public_api_errors_catchable_as_repro_error(self, backend):
        """The embedding contract: whatever goes wrong, catching
        ReproError is enough."""
        from repro.engine import Warehouse
        warehouse = Warehouse(backend=backend)
        for bad_call in [
            lambda: warehouse.query("garbage input"),
            lambda: warehouse.query(
                'FOR $a IN document("nope.c")/r RETURN $a'),
            lambda: warehouse.load_text("not_a_source", ""),
            lambda: warehouse.dtd_tree("not_a_source"),
        ]:
            with pytest.raises(errors.ReproError):
                bad_call()
