"""Unit tests for the visual-query-builder substitutes."""

import pytest

from repro.errors import PathError, QueryError
from repro.qbe import (
    JoinQueryBuilder,
    KeywordSearchBuilder,
    SubtreeSearchBuilder,
    all_paths,
    attribute_paths,
    path_to,
)


class TestDtdTreeNavigation:
    def test_path_to_unique_element(self, warehouse):
        tree = warehouse.dtd_tree("hlx_enzyme")
        assert path_to(tree, "enzyme_id") == "/hlx_enzyme/db_entry/enzyme_id"

    def test_path_to_missing_element_rejected(self, warehouse):
        tree = warehouse.dtd_tree("hlx_enzyme")
        with pytest.raises(PathError):
            path_to(tree, "not_there")

    def test_all_paths_lists_every_occurrence(self, warehouse):
        tree = warehouse.dtd_tree("hlx_enzyme")
        assert len(all_paths(tree, "db_entry")) == 1

    def test_attribute_paths(self, warehouse):
        tree = warehouse.dtd_tree("hlx_enzyme")
        hits = attribute_paths(tree, "mim_id")
        assert hits == ["/hlx_enzyme/db_entry/disease_list/disease/@mim_id"]


class TestSubtreeBuilder:
    def test_reproduces_figure9(self, warehouse):
        builder = (SubtreeSearchBuilder(warehouse, "hlx_enzyme.DEFAULT")
                   .search_in("catalytic_activity", "ketone")
                   .retrieve("enzyme_id")
                   .retrieve("enzyme_description"))
        text = builder.translate()
        assert 'document("hlx_enzyme.DEFAULT")/hlx_enzyme' in text
        assert 'contains($a//catalytic_activity, "ketone")' in text
        assert "$a//enzyme_id" in text
        result = builder.run()
        direct = warehouse.query(text)
        assert len(result) == len(direct)

    def test_disjunctive_conditions(self, warehouse):
        builder = (SubtreeSearchBuilder(warehouse, "hlx_enzyme.DEFAULT")
                   .search_in("catalytic_activity", "ketone")
                   .search_in("comment_list", "copper", connector="or")
                   .retrieve("enzyme_id"))
        assert " OR contains" in builder.translate()

    def test_unknown_click_rejected(self, warehouse):
        builder = SubtreeSearchBuilder(warehouse, "hlx_enzyme.DEFAULT")
        with pytest.raises(PathError):
            builder.search_in("no_such_element", "x")

    def test_translation_requires_condition_and_output(self, warehouse):
        builder = SubtreeSearchBuilder(warehouse, "hlx_enzyme.DEFAULT")
        with pytest.raises(QueryError):
            builder.translate()
        builder.search_in("catalytic_activity", "k")
        with pytest.raises(QueryError):
            builder.translate()


class TestKeywordBuilder:
    def test_reproduces_figure8(self, warehouse):
        builder = (KeywordSearchBuilder(warehouse)
                   .add_database("hlx_embl.inv")
                   .add_database("hlx_sprot.all")
                   .keyword("cdc6")
                   .retrieve("hlx_sprot.all", "sprot_accession_number")
                   .retrieve("hlx_embl.inv", "embl_accession_number"))
        text = builder.translate()
        assert 'contains($a, "cdc6", any)' in text
        assert 'contains($b, "cdc6", any)' in text
        assert len(builder.run()) == len(warehouse.query(text))

    def test_requires_keyword(self, warehouse):
        builder = (KeywordSearchBuilder(warehouse)
                   .add_database("hlx_enzyme.DEFAULT")
                   .retrieve("hlx_enzyme.DEFAULT", "enzyme_id"))
        with pytest.raises(QueryError):
            builder.translate()

    def test_retrieve_from_unselected_database_rejected(self, warehouse):
        builder = KeywordSearchBuilder(warehouse).keyword("x")
        with pytest.raises(QueryError):
            builder.retrieve("hlx_enzyme.DEFAULT", "enzyme_id")


class TestJoinBuilder:
    def test_reproduces_figure11(self, warehouse):
        builder = (JoinQueryBuilder(warehouse)
                   .add_database("hlx_embl.inv")
                   .add_database("hlx_enzyme.DEFAULT")
                   .join("hlx_embl.inv",
                         'qualifier[@qualifier_type = "EC_number"]',
                         "hlx_enzyme.DEFAULT", "enzyme_id")
                   .retrieve("hlx_embl.inv", "embl_accession_number",
                             alias="Accession_Number")
                   .retrieve("hlx_embl.inv", "description",
                             alias="Accession_Description"))
        text = builder.translate()
        assert "$a//qualifier" in text and "= $b//enzyme_id" in text
        assert "$Accession_Number" in text
        result = builder.run()
        assert len(result) > 0
        assert len(result) == len(warehouse.query(text))

    def test_join_needs_two_databases(self, warehouse):
        builder = (JoinQueryBuilder(warehouse)
                   .add_database("hlx_enzyme.DEFAULT"))
        with pytest.raises(QueryError):
            builder.translate()

    def test_extra_filter_condition(self, warehouse):
        builder = (JoinQueryBuilder(warehouse)
                   .add_database("hlx_embl.inv")
                   .add_database("hlx_enzyme.DEFAULT")
                   .join("hlx_embl.inv",
                         'qualifier[@qualifier_type = "EC_number"]',
                         "hlx_enzyme.DEFAULT", "enzyme_id")
                   .filter_equals("hlx_embl.inv", "division", "inv")
                   .retrieve("hlx_embl.inv", "embl_accession_number"))
        assert '$a//division = "inv"' in builder.translate()
