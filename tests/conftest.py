"""Shared fixtures.

``warehouse`` is parametrized over both relational backends, so every
integration test runs twice (SQLite and minidb) — differential testing
of the two engines comes for free.
"""

from __future__ import annotations

import pytest

from repro.baselines import NativeXmlStore
from repro.engine import Warehouse
from repro.relational import MiniDbBackend, SqliteBackend
from repro.synth import build_corpus

CORPUS_SEED = 7
CORPUS_SIZES = dict(enzyme_count=25, embl_count=35, sprot_count=25,
                    omim_count=15)


@pytest.fixture(scope="session")
def corpus():
    """One deterministic cross-linked corpus for the whole session."""
    return build_corpus(seed=CORPUS_SEED, **CORPUS_SIZES)


@pytest.fixture(params=["sqlite", "minidb"])
def backend(request):
    if request.param == "sqlite":
        instance = SqliteBackend()
    else:
        instance = MiniDbBackend()
    yield instance
    instance.close()


@pytest.fixture
def warehouse(backend, corpus):
    """A warehouse with the test corpus loaded (both backends)."""
    wh = Warehouse(backend=backend)
    wh.load_corpus(corpus)
    return wh


@pytest.fixture
def empty_warehouse(backend):
    return Warehouse(backend=backend)


@pytest.fixture(scope="session")
def native_store(corpus):
    store = NativeXmlStore()
    store.load_corpus(corpus)
    return store
