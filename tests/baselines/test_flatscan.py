"""Unit tests for the SRS-style flat-file baseline."""

from repro.baselines import AccessionIndex, FlatFileIndex, LinkMap, follow_links

ENZYME_TEXT = """\
ID   1.1.1.1
DE   Alcohol dehydrogenase.
CA   An alcohol + NAD(+) = an aldehyde or ketone + NADH.
DR   P00330, ADH1_YEAST ;
//
ID   1.1.1.2
DE   Aldehyde reductase.
CA   An alcohol + NADP(+) = an aldehyde + NADPH.
//
"""

SPROT_TEXT = """\
ID   ADH1_YEAST  STANDARD;  PRT;  347 AA.
AC   P00330;
DE   Alcohol dehydrogenase 1.
//
ID   OTHER_HUMAN  STANDARD;  PRT;  100 AA.
AC   P99999;
DE   Unrelated protein.
//
"""


class TestIndexedSearch:
    def test_hit_on_indexed_field(self):
        index = FlatFileIndex.build("hlx_enzyme", ENZYME_TEXT, ("ID", "DE"))
        hits = index.search("dehydrogenase")
        assert len(hits) == 1
        assert hits[0].value("ID") == "1.1.1.1"

    def test_multi_token_intersection(self):
        index = FlatFileIndex.build("hlx_enzyme", ENZYME_TEXT, ("ID", "DE"))
        assert len(index.search("alcohol dehydrogenase")) == 1
        assert len(index.search("alcohol reductase")) == 0

    def test_expressiveness_gap_unindexed_field_invisible(self):
        # "ketone" appears only on a CA line; an SRS class without CA
        # indexed cannot find it — the contrast the paper draws
        narrow = FlatFileIndex.build("hlx_enzyme", ENZYME_TEXT, ("ID", "DE"))
        wide = FlatFileIndex.build("hlx_enzyme", ENZYME_TEXT,
                                   ("ID", "DE", "CA"))
        assert narrow.search("ketone") == []
        assert len(wide.search("ketone")) == 1

    def test_no_tokens_no_results(self):
        index = FlatFileIndex.build("hlx_enzyme", ENZYME_TEXT)
        assert index.search("") == []

    def test_len_counts_entries(self):
        assert len(FlatFileIndex.build("e", ENZYME_TEXT)) == 2


class TestLinkFollowing:
    def test_predefined_link_traversal(self):
        enzyme_index = FlatFileIndex.build("hlx_enzyme", ENZYME_TEXT,
                                           ("ID", "DE"))
        sprot_index = AccessionIndex.build(SPROT_TEXT)
        link = LinkMap("hlx_enzyme", "hlx_sprot", "DR")
        hits = enzyme_index.search("dehydrogenase")
        linked = follow_links(hits, link, sprot_index)
        assert len(linked) == 1
        assert linked[0].value("AC") == "P00330;"

    def test_no_links_no_results(self):
        enzyme_index = FlatFileIndex.build("hlx_enzyme", ENZYME_TEXT,
                                           ("ID", "DE"))
        sprot_index = AccessionIndex.build(SPROT_TEXT)
        link = LinkMap("hlx_enzyme", "hlx_sprot", "DR")
        hits = enzyme_index.search("reductase")   # entry without DR
        assert follow_links(hits, link, sprot_index) == []

    def test_accession_index_lookup(self):
        index = AccessionIndex.build(SPROT_TEXT)
        assert index.lookup("P00330") == 0
        assert index.lookup("P99999") == 1
        assert index.lookup("NOPE") is None
