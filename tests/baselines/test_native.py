"""Unit tests for the native-XML baseline evaluator."""

import pytest

from repro.baselines import NativeXmlStore
from repro.errors import UnknownDocumentError
from repro.xmlkit import parse_document


@pytest.fixture
def store():
    store = NativeXmlStore()
    store.add_document("db", "c", "k1", parse_document(
        "<r><item><name>alpha beta</name><score>10</score></item>"
        "<item><name>gamma</name><score>200</score></item></r>"))
    store.add_document("db", "c", "k2", parse_document(
        "<r><item><name>delta</name><score>30</score></item></r>"))
    store.add_document("db", "other", "k3", parse_document(
        "<r><item><name>epsilon</name><score>5</score></item></r>"))
    return store


class TestBindingsAndFilters:
    def test_binding_over_collection(self, store):
        result = store.query('FOR $a IN document("db.c")/r/item '
                             'RETURN $a//name')
        assert len(result) == 3

    def test_binding_without_collection_spans_all(self, store):
        result = store.query('FOR $a IN document("db")/r/item '
                             'RETURN $a//name')
        assert len(result) == 4

    def test_unknown_document_rejected(self, store):
        with pytest.raises(UnknownDocumentError):
            store.query('FOR $a IN document("zzz.c")/r RETURN $a')

    def test_contains_node_scope(self, store):
        result = store.query('FOR $a IN document("db.c")/r/item '
                             'WHERE contains($a//name, "alpha") '
                             'RETURN $a//name')
        assert result.scalars("name") == ["alpha beta"]

    def test_contains_multiword_requires_all_tokens(self, store):
        result = store.query('FOR $a IN document("db.c")/r/item '
                             'WHERE contains($a//name, "alpha gamma") '
                             'RETURN $a//name')
        assert len(result) == 0

    def test_contains_any_scope(self, store):
        result = store.query('FOR $a IN document("db.c")/r '
                             'WHERE contains($a, "delta", any) '
                             'RETURN $a//name')
        assert len(result) == 1

    def test_numeric_comparison(self, store):
        result = store.query('FOR $a IN document("db.c")/r/item '
                             'WHERE $a/score > 25 RETURN $a//score')
        assert sorted(result.scalars("score")) == ["200", "30"]

    def test_not_condition(self, store):
        result = store.query('FOR $a IN document("db.c")/r/item '
                             'WHERE NOT contains($a//name, "gamma") '
                             'RETURN $a//name')
        assert sorted(result.scalars("name")) == ["alpha beta", "delta"]

    def test_proximity_window(self, store):
        near = store.query('FOR $a IN document("db.c")/r '
                           'WHERE contains($a, "alpha beta", 1) '
                           'RETURN $a//name')
        far = store.query('FOR $a IN document("db.c")/r '
                          'WHERE contains($a, "alpha delta", 1) '
                          'RETURN $a//name')
        assert len(near) == 1
        assert len(far) == 0

    def test_sequence_text_not_keyword_searchable(self):
        store = NativeXmlStore()
        store.add_document("db", "c", "k", parse_document(
            "<r><sequence>acgtacgt</sequence><name>gene1</name></r>"))
        result = store.query('FOR $a IN document("db.c")/r '
                             'WHERE contains($a, "acgtacgt", any) '
                             'RETURN $a//name')
        assert len(result) == 0


class TestLoading:
    def test_load_text_uses_transformers(self, corpus):
        store = NativeXmlStore()
        count = store.load_text("hlx_enzyme", corpus.enzyme_text)
        assert count == corpus.sizes()["hlx_enzyme"]

    def test_document_count(self, corpus):
        store = NativeXmlStore()
        store.load_corpus(corpus)
        assert store.document_count() == sum(corpus.sizes().values())
