"""Unit tests for the DTD model, parser and validator."""

import pytest

from repro.errors import DtdError, DtdValidationError
from repro.xmlkit import parse_document, parse_dtd
from repro.xmlkit.dtd import Choice, Mixed, Name, PCData, Seq

SIMPLE_DTD = """
<!ELEMENT root (head, item*, tail?)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT tail (#PCDATA)>
"""


def validate(dtd_text: str, xml_text: str) -> None:
    parse_dtd(dtd_text).validate(parse_document(xml_text))


class TestContentModelParsing:
    def test_sequence(self):
        dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)>"
                        "<!ELEMENT b (#PCDATA)>")
        model = dtd.declaration("r").content
        assert isinstance(model, Seq)
        assert [item.tag for item in model.items] == ["a", "b"]

    def test_choice(self):
        dtd = parse_dtd("<!ELEMENT r (a | b)><!ELEMENT a (#PCDATA)>"
                        "<!ELEMENT b (#PCDATA)>")
        assert isinstance(dtd.declaration("r").content, Choice)

    def test_occurrence_indicators(self):
        dtd = parse_dtd("<!ELEMENT r (a?, b*, c+)><!ELEMENT a (#PCDATA)>"
                        "<!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>")
        model = dtd.declaration("r").content
        assert [item.occurs for item in model.items] == ["?", "*", "+"]

    def test_pcdata(self):
        dtd = parse_dtd("<!ELEMENT r (#PCDATA)>")
        assert isinstance(dtd.declaration("r").content, PCData)

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT r (#PCDATA | a | b)*>"
                        "<!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>")
        model = dtd.declaration("r").content
        assert isinstance(model, Mixed)
        assert model.tags == ("a", "b")

    def test_nested_groups(self):
        dtd = parse_dtd("<!ELEMENT r ((a | b)+, c)><!ELEMENT a (#PCDATA)>"
                        "<!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>")
        model = dtd.declaration("r").content
        assert isinstance(model, Seq)
        assert isinstance(model.items[0], Choice)
        assert model.items[0].occurs == "+"

    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT e EMPTY><!ELEMENT a ANY>")
        assert str(dtd.declaration("e").content) == "EMPTY"
        assert str(dtd.declaration("a").content) == "ANY"

    def test_first_declared_is_root(self):
        dtd = parse_dtd(SIMPLE_DTD)
        assert dtd.root == "root"

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT r (#PCDATA)><!ELEMENT r (#PCDATA)>")

    def test_mixing_separators_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT r (a, b | c)>")

    def test_comments_in_dtd_skipped(self):
        dtd = parse_dtd("<!-- c --><!ELEMENT r (#PCDATA)>")
        assert dtd.root == "r"


class TestAttlist:
    DTD = """
    <!ELEMENT r (#PCDATA)>
    <!ATTLIST r id NMTOKEN #REQUIRED
                 note CDATA #IMPLIED
                 kind (x | y) "x">
    """

    def test_attribute_declarations_parsed(self):
        dtd = parse_dtd(self.DTD)
        attrs = dtd.declaration("r").attributes
        assert attrs["id"].required
        assert not attrs["note"].required
        assert attrs["kind"].enumeration == ("x", "y")
        assert attrs["kind"].default == "x"

    def test_required_attribute_enforced(self):
        dtd = parse_dtd(self.DTD)
        with pytest.raises(DtdValidationError):
            dtd.validate(parse_document("<r>t</r>"))

    def test_undeclared_attribute_rejected(self):
        dtd = parse_dtd(self.DTD)
        with pytest.raises(DtdValidationError):
            dtd.validate(parse_document('<r id="a1" zzz="nope">t</r>'))

    def test_enumeration_enforced(self):
        dtd = parse_dtd(self.DTD)
        with pytest.raises(DtdValidationError):
            dtd.validate(parse_document('<r id="a1" kind="z">t</r>'))

    def test_nmtoken_enforced(self):
        dtd = parse_dtd(self.DTD)
        with pytest.raises(DtdValidationError):
            dtd.validate(parse_document('<r id="has space">t</r>'))

    def test_valid_document_passes(self):
        validate(self.DTD, '<r id="a1" kind="y" note="free text">t</r>')

    def test_attlist_for_unknown_element_rejected(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT r (#PCDATA)>"
                      "<!ATTLIST q a CDATA #IMPLIED>")


class TestValidation:
    def test_valid_sequence(self):
        validate(SIMPLE_DTD, "<root><head>h</head><item>1</item>"
                             "<item>2</item><tail>t</tail></root>")

    def test_optional_parts_omitted(self):
        validate(SIMPLE_DTD, "<root><head>h</head></root>")

    def test_missing_required_child(self):
        with pytest.raises(DtdValidationError):
            validate(SIMPLE_DTD, "<root><item>1</item></root>")

    def test_wrong_order_rejected(self):
        with pytest.raises(DtdValidationError):
            validate(SIMPLE_DTD,
                     "<root><item>1</item><head>h</head></root>")

    def test_extra_child_rejected(self):
        with pytest.raises(DtdValidationError):
            validate(SIMPLE_DTD, "<root><head>h</head><head>h</head></root>")

    def test_undeclared_element_rejected(self):
        with pytest.raises(DtdValidationError):
            validate(SIMPLE_DTD, "<root><head>h</head><zzz/></root>")

    def test_wrong_root_rejected(self):
        with pytest.raises(DtdValidationError):
            validate(SIMPLE_DTD, "<head>h</head>")

    def test_text_in_element_content_rejected(self):
        with pytest.raises(DtdValidationError):
            validate(SIMPLE_DTD, "<root>stray<head>h</head></root>")

    def test_element_in_pcdata_rejected(self):
        with pytest.raises(DtdValidationError):
            validate(SIMPLE_DTD, "<root><head><item>1</item></head></root>")

    def test_empty_content_model(self):
        with pytest.raises(DtdValidationError):
            validate("<!ELEMENT r EMPTY>", "<r>text</r>")

    def test_any_content_model_accepts_everything(self):
        validate("<!ELEMENT r ANY><!ELEMENT a (#PCDATA)>",
                 "<r>text<a>more</a></r>")

    def test_mixed_content_allows_listed_tags(self):
        validate("<!ELEMENT r (#PCDATA | a)*><!ELEMENT a (#PCDATA)>",
                 "<r>one<a>two</a>three</r>")

    def test_mixed_content_rejects_unlisted_tags(self):
        with pytest.raises(DtdValidationError):
            validate("<!ELEMENT r (#PCDATA | a)*><!ELEMENT a (#PCDATA)>"
                     "<!ELEMENT b (#PCDATA)>", "<r><b>x</b></r>")

    def test_choice_plus_repetition(self):
        dtd_text = ("<!ELEMENT r (a | b)+><!ELEMENT a (#PCDATA)>"
                    "<!ELEMENT b (#PCDATA)>")
        validate(dtd_text, "<r><b>1</b><a>2</a><b>3</b></r>")
        with pytest.raises(DtdValidationError):
            validate(dtd_text, "<r/>")

    def test_is_valid_predicate(self):
        dtd = parse_dtd(SIMPLE_DTD)
        assert dtd.is_valid(parse_document("<root><head>h</head></root>"))
        assert not dtd.is_valid(parse_document("<root/>"))


class TestDtdTree:
    def test_tree_structure(self):
        dtd = parse_dtd(SIMPLE_DTD)
        tree = dtd.tree()
        assert tree.tag == "root"
        assert [child.tag for child in tree.children] == [
            "head", "item", "tail"]

    def test_tree_reports_attributes(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>"
                        "<!ATTLIST a id CDATA #REQUIRED>")
        node = dtd.tree().find("a")
        assert node.attributes == ["id"]

    def test_tree_render_contains_indentation(self):
        text = parse_dtd(SIMPLE_DTD).tree().render()
        assert "\n  head" in text

    def test_recursive_dtd_truncated(self):
        dtd = parse_dtd("<!ELEMENT r (r?)>")
        tree = dtd.tree()   # must terminate
        assert tree.tag == "r"
