"""Unit tests for the XML parser."""

import pytest

from repro.errors import XmlParseError
from repro.xmlkit import Element, Text, parse_document, parse_fragment


class TestBasics:
    def test_single_empty_element(self):
        doc = parse_document("<r/>")
        assert doc.root.tag == "r"
        assert doc.root.children == []

    def test_text_content(self):
        doc = parse_document("<r>hello</r>")
        assert doc.root.text() == "hello"

    def test_nested_elements(self):
        doc = parse_document("<r><a><b>x</b></a></r>")
        assert doc.root.first("a").first("b").text() == "x"

    def test_attributes_double_quoted(self):
        doc = parse_document('<r a="1" b="two"/>')
        assert doc.root.get("a") == "1"
        assert doc.root.get("b") == "two"

    def test_attributes_single_quoted(self):
        doc = parse_document("<r a='1'/>")
        assert doc.root.get("a") == "1"

    def test_xml_declaration_skipped(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?>\n<r/>')
        assert doc.root.tag == "r"

    def test_doctype_name_recorded(self):
        doc = parse_document("<!DOCTYPE hlx_enzyme>\n<hlx_enzyme/>")
        assert doc.doctype == "hlx_enzyme"

    def test_doctype_with_internal_subset_skipped(self):
        doc = parse_document(
            "<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]>\n<r>x</r>")
        assert doc.root.text() == "x"

    def test_document_name_attached(self):
        doc = parse_document("<r/>", name="hlx_enzyme")
        assert doc.name == "hlx_enzyme"


class TestWhitespacePolicy:
    def test_indentation_between_elements_dropped(self):
        doc = parse_document("<r>\n  <a>x</a>\n  <b>y</b>\n</r>")
        assert [c.tag for c in doc.root.children] == ["a", "b"]

    def test_leaf_text_preserved_verbatim(self):
        doc = parse_document("<r><a>  padded  </a></r>")
        assert doc.root.first("a").text() == "  padded  "

    def test_mixed_content_text_kept(self):
        doc = parse_document("<r>before<a/>after</r>")
        values = [c.value for c in doc.root.children if isinstance(c, Text)]
        assert values == ["before", "after"]


class TestEntities:
    def test_predefined_entities(self):
        doc = parse_document("<r>&lt;&gt;&amp;&apos;&quot;</r>")
        assert doc.root.text() == "<>&'\""

    def test_decimal_character_reference(self):
        doc = parse_document("<r>&#65;</r>")
        assert doc.root.text() == "A"

    def test_hex_character_reference(self):
        doc = parse_document("<r>&#x41;</r>")
        assert doc.root.text() == "A"

    def test_entities_in_attribute_values(self):
        doc = parse_document('<r a="&amp;&quot;"/>')
        assert doc.root.get("a") == '&"'

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<r>&nope;</r>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<r>&amp</r>")


class TestSections:
    def test_comments_ignored(self):
        doc = parse_document("<r><!-- hi --><a/></r>")
        assert [c.tag for c in doc.root.children] == ["a"]

    def test_cdata_text_preserved(self):
        doc = parse_document("<r><![CDATA[<not><xml>&amp;]]></r>")
        assert doc.root.text() == "<not><xml>&amp;"

    def test_processing_instruction_inside_content_skipped(self):
        doc = parse_document("<r><?pi data?><a/></r>")
        assert [c.tag for c in doc.root.children] == ["a"]

    def test_comment_before_root(self):
        doc = parse_document("<!-- prolog --><r/>")
        assert doc.root.tag == "r"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "<r>",
        "<r></s>",
        "<r><a></r></a>",
        "<r attr></r>",
        "<r a=1/>",
        '<r a="1" a="2"/>',
        "<r/><extra/>",
        "just text",
        "<r>a < b</r>",
        "<r><!-- unterminated </r>",
        "<r><![CDATA[open</r>",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(XmlParseError):
            parse_document(bad)

    def test_error_carries_location(self):
        with pytest.raises(XmlParseError) as info:
            parse_document("<r>\n<bad\n</r>")
        assert info.value.line is not None

    def test_content_after_root_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<r/>trailing")


class TestFragment:
    def test_fragment_parses_single_element(self):
        element = parse_fragment("<a x='1'>t</a>")
        assert isinstance(element, Element)
        assert element.get("x") == "1"

    def test_fragment_rejects_prolog(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<?xml version='1.0'?><a/>")

    def test_fragment_rejects_trailing(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a/><b/>")


class TestTextNormalization:
    def test_adjacent_text_merged_across_cdata(self):
        doc = parse_document("<r>a<![CDATA[b]]>c</r>")
        assert doc.root.children == [Text("abc")]

    def test_self_closing_with_attributes(self):
        doc = parse_document('<r><ref id="7"/></r>')
        assert doc.root.first("ref").get("id") == "7"
