"""Unit tests for the XML serializer."""

from repro.xmlkit import (
    Document,
    Element,
    parse_document,
    serialize,
    serialize_compact,
)
from repro.xmlkit.serializer import escape_attribute, escape_text


class TestEscaping:
    def test_text_escapes_core_chars(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quotes_and_whitespace(self):
        assert escape_attribute('say "hi"\n') == "say &quot;hi&quot;&#10;"


class TestCompact:
    def test_empty_element(self):
        assert serialize_compact(Element("r")) == "<r/>"

    def test_nested(self):
        root = Element("r")
        root.subelement("a", text="x")
        assert serialize_compact(root) == "<r><a>x</a></r>"

    def test_attributes_rendered(self):
        assert serialize_compact(Element("r", {"a": "1"})) == '<r a="1"/>'

    def test_declaration_flag(self):
        out = serialize_compact(Element("r"), declaration=True)
        assert out.startswith("<?xml")


class TestPretty:
    def test_leaf_on_one_line(self):
        root = Element("r")
        root.subelement("a", text="x")
        assert "<a>x</a>" in serialize(root)

    def test_indentation_structure(self):
        root = Element("r")
        inner = root.subelement("list")
        inner.subelement("item", text="1")
        lines = serialize(root, declaration=False).splitlines()
        assert lines[0] == "<r>"
        assert lines[1] == "  <list>"
        assert lines[2] == "    <item>1</item>"

    def test_mixed_content_stays_inline(self):
        doc = parse_document("<r>before<a/>after</r>")
        out = serialize(doc, declaration=False)
        assert "<r>before<a/>after</r>" in out


class TestRoundTrip:
    def parse_print_parse(self, text: str):
        doc = parse_document(text)
        return doc, parse_document(serialize(doc))

    def test_structure_roundtrip(self):
        original, reparsed = self.parse_print_parse(
            '<r a="1"><x>t&amp;t</x><y/><x>  keep  </x></r>')
        assert original == reparsed

    def test_special_characters_roundtrip(self):
        original, reparsed = self.parse_print_parse(
            '<r a="&lt;&quot;&amp;">one &lt; two &amp; three</r>')
        assert original == reparsed

    def test_compact_roundtrip(self):
        doc = parse_document('<r><a b="2">t</a></r>')
        assert parse_document(serialize_compact(doc)) == doc

    def test_document_wrapper_accepted(self):
        doc = Document(Element("r"))
        assert serialize(doc).strip().endswith("<r/>")
