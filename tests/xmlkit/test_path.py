"""Unit tests for path expressions."""

import pytest

from repro.errors import PathError
from repro.xmlkit import (
    evaluate_elements,
    evaluate_strings,
    parse_document,
    parse_path,
)

DOC = parse_document("""
<hlx_enzyme>
  <db_entry>
    <enzyme_id>1.14.17.3</enzyme_id>
    <alternate_name_list>
      <alternate_name>first</alternate_name>
      <alternate_name>second</alternate_name>
    </alternate_name_list>
    <reference name="AMD_HUMAN" acc="P19021">x</reference>
    <reference name="AMD_RAT" acc="P14925">y</reference>
    <feature kind="CDS">
      <qualifier qualifier_type="EC_number">1.14.17.3</qualifier>
      <qualifier qualifier_type="gene">amd</qualifier>
    </feature>
  </db_entry>
</hlx_enzyme>
""")


class TestParsing:
    def test_child_steps(self):
        path = parse_path("/db_entry/enzyme_id")
        assert [s.name for s in path.steps] == ["db_entry", "enzyme_id"]
        assert not path.steps[0].descendant

    def test_descendant_step(self):
        path = parse_path("//enzyme_id")
        assert path.steps[0].descendant

    def test_attribute_final_step(self):
        path = parse_path("//reference/@acc")
        assert path.is_attribute_path
        assert path.last_name == "acc"

    def test_attribute_mid_path_rejected(self):
        with pytest.raises(PathError):
            parse_path("//@acc/more")

    def test_predicate_on_attribute(self):
        path = parse_path('//qualifier[@qualifier_type = "EC_number"]')
        predicate = path.steps[0].predicates[0]
        assert predicate.on_attribute
        assert predicate.name == "qualifier_type"
        assert predicate.value == "EC_number"

    def test_predicate_on_child_element(self):
        path = parse_path('//db_entry[enzyme_id = "1.14.17.3"]')
        predicate = path.steps[0].predicates[0]
        assert not predicate.on_attribute

    def test_wildcard_step(self):
        assert parse_path("/*").steps[0].name == "*"

    def test_empty_path_rejected(self):
        with pytest.raises(PathError):
            parse_path("")

    def test_garbage_rejected(self):
        with pytest.raises(PathError):
            parse_path("//a b")

    def test_unquoted_predicate_value_rejected(self):
        with pytest.raises(PathError):
            parse_path("//a[x = 1]")

    def test_str_roundtrip(self):
        text = '//qualifier[@qualifier_type = "EC_number"]'
        assert str(parse_path(text)) == text

    def test_concat(self):
        joined = parse_path("/a").concat(parse_path("/b"))
        assert str(joined) == "/a/b"


class TestEvaluation:
    def test_child_navigation(self):
        values = evaluate_strings(parse_path("/db_entry/enzyme_id"), DOC.root)
        assert values == ["1.14.17.3"]

    def test_descendant_navigation(self):
        values = evaluate_strings(parse_path("//alternate_name"), DOC.root)
        assert values == ["first", "second"]

    def test_descendant_matches_multiple_levels(self):
        elements = evaluate_elements(parse_path("//qualifier"), DOC.root)
        assert len(elements) == 2

    def test_attribute_values(self):
        values = evaluate_strings(parse_path("//reference/@acc"), DOC.root)
        assert values == ["P19021", "P14925"]

    def test_descendant_attribute(self):
        values = evaluate_strings(parse_path("//@qualifier_type"), DOC.root)
        assert values == ["EC_number", "gene"]

    def test_attribute_predicate_filters(self):
        path = parse_path('//qualifier[@qualifier_type = "EC_number"]')
        values = evaluate_strings(path, DOC.root)
        assert values == ["1.14.17.3"]

    def test_child_predicate_filters(self):
        path = parse_path('//db_entry[enzyme_id = "1.14.17.3"]/enzyme_id')
        assert evaluate_strings(path, DOC.root) == ["1.14.17.3"]

    def test_child_predicate_no_match(self):
        path = parse_path('//db_entry[enzyme_id = "9.9.9.9"]')
        assert evaluate_elements(path, DOC.root) == []

    def test_wildcard_children(self):
        elements = evaluate_elements(parse_path("/db_entry/*"), DOC.root)
        assert len(elements) == 5

    def test_descendant_or_self_on_root_tag(self):
        elements = evaluate_elements(parse_path("//hlx_enzyme"), DOC.root)
        assert elements == [DOC.root]

    def test_missing_attribute_yields_nothing(self):
        assert evaluate_strings(parse_path("//reference/@zzz"), DOC.root) == []

    def test_element_target_full_text(self):
        values = evaluate_strings(parse_path("//alternate_name_list"),
                                  DOC.root)
        assert values == ["firstsecond"]

    def test_evaluate_elements_rejects_attribute_path(self):
        with pytest.raises(PathError):
            evaluate_elements(parse_path("//@acc"), DOC.root)
