"""Unit tests for the XML infoset (doc.py)."""

import pytest

from repro.xmlkit import Document, Element, Text, is_valid_name, merge_adjacent_text


class TestNames:
    def test_simple_name_valid(self):
        assert is_valid_name("enzyme_id")

    def test_name_with_digits_and_dots(self):
        assert is_valid_name("a1.b-2")

    def test_empty_name_invalid(self):
        assert not is_valid_name("")

    def test_leading_digit_invalid(self):
        assert not is_valid_name("1abc")

    def test_space_invalid(self):
        assert not is_valid_name("a b")


class TestText:
    def test_value_stored(self):
        assert Text("hello").value == "hello"

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            Text(42)

    def test_equality_by_value(self):
        assert Text("x") == Text("x")
        assert Text("x") != Text("y")


class TestElementConstruction:
    def test_invalid_tag_rejected(self):
        with pytest.raises(ValueError):
            Element("9bad")

    def test_attributes_from_constructor(self):
        element = Element("e", {"a": "1", "b": "2"})
        assert element.get("a") == "1"
        assert element.get("b") == "2"

    def test_children_from_constructor_accepts_strings(self):
        element = Element("e", children=["hi"])
        assert element.text() == "hi"

    def test_invalid_attribute_name_rejected(self):
        element = Element("e")
        with pytest.raises(ValueError):
            element.set("bad name", "v")

    def test_attribute_value_stringified(self):
        element = Element("e")
        element.set("n", 42)
        assert element.get("n") == "42"

    def test_get_default(self):
        assert Element("e").get("missing", "dflt") == "dflt"


class TestChildren:
    def test_append_sets_parent(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        assert child.parent is parent

    def test_append_rejects_reparenting(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        other = Element("q")
        with pytest.raises(ValueError):
            other.append(child)

    def test_append_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            Element("p").append(42)

    def test_remove_detaches(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        parent.remove(child)
        assert child.parent is None
        assert parent.children == []

    def test_subelement_with_text(self):
        parent = Element("p")
        child = parent.subelement("c", text="body")
        assert child.text() == "body"
        assert parent.first("c") is child

    def test_child_elements_filter(self):
        parent = Element("p")
        parent.subelement("a")
        parent.subelement("b")
        parent.subelement("a")
        assert len(parent.child_elements("a")) == 2
        assert len(parent.child_elements()) == 3

    def test_first_returns_none_when_absent(self):
        assert Element("p").first("x") is None

    def test_sibling_index(self):
        parent = Element("p")
        first = parent.subelement("a")
        second = parent.subelement("b")
        assert first.sibling_index() == 0
        assert second.sibling_index() == 1


class TestNavigation:
    def make_tree(self):
        root = Element("root")
        one = root.subelement("a", text="1")
        nested = one.subelement("b", text="2")
        root.subelement("b", text="3")
        return root, one, nested

    def test_iter_preorder(self):
        root, one, nested = self.make_tree()
        tags = [e.tag for e in root.iter()]
        assert tags == ["root", "a", "b", "b"]

    def test_iter_with_tag_filter(self):
        root, __, __ = self.make_tree()
        assert len(list(root.iter("b"))) == 2

    def test_full_text_in_document_order(self):
        root, __, __ = self.make_tree()
        assert root.full_text() == "123"

    def test_path_from_root(self):
        __, __, nested = self.make_tree()
        assert nested.path_from_root() == "/root/a/b"

    def test_root_method(self):
        root, __, nested = self.make_tree()
        assert nested.root() is root


class TestDocument:
    def test_requires_element_root(self):
        with pytest.raises(TypeError):
            Document("not an element")

    def test_walk_assigns_dense_orders(self):
        root = Element("r")
        root.subelement("a", text="x")
        doc = Document(root)
        orders = [order for order, __ in doc.walk()]
        assert orders == list(range(len(orders)))

    def test_element_count_excludes_text(self):
        root = Element("r")
        root.subelement("a", text="x")
        assert Document(root).element_count() == 2

    def test_deep_equality(self):
        def build():
            root = Element("r", {"k": "v"})
            root.subelement("a", text="x")
            return Document(root)
        assert build() == build()

    def test_inequality_on_attribute_change(self):
        a = Element("r", {"k": "v"})
        b = Element("r", {"k": "w"})
        assert Document(a) != Document(b)


class TestMergeAdjacentText:
    def test_merges_runs(self):
        element = Element("e")
        element.append(Text("a"))
        element.append(Text("b"))
        merge_adjacent_text(element)
        assert element.children == [Text("ab")]

    def test_keeps_element_boundaries(self):
        element = Element("e")
        element.append(Text("a"))
        element.append(Element("x"))
        element.append(Text("b"))
        merge_adjacent_text(element)
        assert len(element.children) == 3

    def test_recurses(self):
        element = Element("e")
        inner = element.subelement("i")
        inner.append(Text("a"))
        inner.append(Text("b"))
        merge_adjacent_text(element)
        assert inner.text() == "ab"
