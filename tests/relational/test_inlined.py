"""Tests for the DTD-aware inlined schema (experiment E10 substrate)."""

import pytest

from repro.datahounds.sources.embl import EmblTransformer
from repro.datahounds.sources.enzyme import EnzymeTransformer, SAMPLE_ENTRY
from repro.flatfile import parse_entries
from repro.relational import SqliteBackend
from repro.relational.inlined import InlinedSchema, child_multiplicities
from repro.synth import build_corpus


@pytest.fixture(scope="module")
def enzyme_schema():
    return InlinedSchema("hlx_enzyme", EnzymeTransformer.dtd)


@pytest.fixture(scope="module")
def embl_schema():
    return InlinedSchema("hlx_embl", EmblTransformer.dtd)


class TestMultiplicities:
    def test_enzyme_db_entry(self):
        decl = EnzymeTransformer.dtd.declaration("db_entry")
        counts = child_multiplicities(decl)
        assert counts["enzyme_id"] == "one"
        assert counts["enzyme_description"] == "many"
        assert counts["catalytic_activity"] == "many"
        assert counts["alternate_name_list"] == "one"

    def test_repetition_through_group(self):
        from repro.xmlkit import parse_dtd
        dtd = parse_dtd("<!ELEMENT r ((a | b)+)><!ELEMENT a (#PCDATA)>"
                        "<!ELEMENT b (#PCDATA)>")
        counts = child_multiplicities(dtd.declaration("r"))
        assert counts == {"a": "many", "b": "many"}


class TestSchemaDerivation:
    def test_entry_table_scalar_columns(self, enzyme_schema):
        entry = enzyme_schema.entry_table
        names = [c.name for c in entry.columns]
        assert "enzyme_id" in names          # single PCDATA child inlined
        assert "enzyme_description" not in names   # repeated -> own table

    def test_containers_are_transparent(self, enzyme_schema):
        table_anchors = {t.anchor_tag for t in enzyme_schema.tables.values()}
        assert "alternate_name" in table_anchors
        assert "alternate_name_list" not in table_anchors

    def test_attributed_elements_get_tables_with_attr_columns(
            self, enzyme_schema):
        reference = next(t for t in enzyme_schema.tables.values()
                         if t.anchor_tag == "reference")
        names = [c.name for c in reference.columns]
        assert "name" in names
        assert "swissprot_accession_number" in names
        assert "value" in names

    def test_nested_repeated_elements(self, embl_schema):
        feature = next(t for t in embl_schema.tables.values()
                       if t.anchor_tag == "feature")
        qualifier_tables = [t for t in feature.children
                            if t.anchor_tag == "qualifier"]
        assert len(qualifier_tables) == 1
        names = [c.name for c in qualifier_tables[0].columns]
        assert "qualifier_type" in names and "value" in names

    def test_ddl_is_valid_sql(self, enzyme_schema, backend):
        enzyme_schema.create(backend)
        for table in enzyme_schema.tables.values():
            rows = backend.execute(f"SELECT COUNT(*) FROM {table.name}")
            assert rows == [(0,)]


class TestLoading:
    @pytest.fixture
    def loaded(self):
        backend = SqliteBackend()
        schema = InlinedSchema("hlx_enzyme", EnzymeTransformer.dtd)
        schema.create(backend)
        transformer = EnzymeTransformer()
        entries = parse_entries(SAMPLE_ENTRY)
        keyed = [(transformer.entry_key(e), transformer.transform_entry(e))
                 for e in entries]
        schema.load_documents(backend, keyed)
        return backend, schema

    def test_entry_row(self, loaded):
        backend, schema = loaded
        rows = backend.execute(
            f"SELECT entry_key, enzyme_id FROM {schema.entry_table.name}")
        assert rows == [("1.14.17.3", "1.14.17.3")]

    def test_repeated_values_with_order(self, loaded):
        backend, schema = loaded
        table = next(t for t in schema.tables.values()
                     if t.anchor_tag == "alternate_name")
        rows = backend.execute(
            f"SELECT ord, value FROM {table.name} ORDER BY ord")
        assert rows == [(0, "Peptidyl alpha-amidating enzyme"),
                        (1, "Peptidylglycine 2-hydroxylase")]

    def test_attribute_columns_filled(self, loaded):
        backend, schema = loaded
        table = next(t for t in schema.tables.values()
                     if t.anchor_tag == "reference")
        rows = backend.execute(
            f"SELECT name, swissprot_accession_number FROM {table.name} "
            f"ORDER BY ord")
        assert rows[0] == ("AMD_BOVIN", "P10731")
        assert len(rows) == 5

    def test_empty_list_produces_no_rows(self, loaded):
        backend, schema = loaded
        table = next(t for t in schema.tables.values()
                     if t.anchor_tag == "disease")
        assert backend.execute(
            f"SELECT COUNT(*) FROM {table.name}") == [(0,)]


class TestCrossValidationAgainstGenericSchema:
    """The inlined and generic paths must answer the same question the
    same way: the Figure 11 join, hand-written over the inlined schema,
    must match XomatiQ over the generic schema."""

    def test_figure11_join_agrees(self):
        from repro.engine import Warehouse
        corpus = build_corpus(seed=7, enzyme_count=40, embl_count=60,
                              sprot_count=5)
        warehouse = Warehouse()
        warehouse.load_corpus(corpus)
        expected = sorted(warehouse.query(
            'FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry, '
            '$b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry '
            'WHERE $a//qualifier[@qualifier_type = "EC_number"] '
            '= $b/enzyme_id '
            'RETURN $a//entry_name').scalars("entry_name"))

        backend = SqliteBackend()
        enzyme_schema = InlinedSchema("hlx_enzyme", EnzymeTransformer.dtd)
        embl_schema = InlinedSchema("hlx_embl", EmblTransformer.dtd)
        enzyme_schema.create(backend)
        embl_schema.create(backend)
        for schema, transformer, text in [
                (enzyme_schema, EnzymeTransformer(), corpus.enzyme_text),
                (embl_schema, EmblTransformer(), corpus.embl_text)]:
            keyed = [(transformer.entry_key(e),
                      transformer.transform_entry(e))
                     for e in parse_entries(text)]
            schema.load_documents(backend, keyed)

        feature = next(t for t in embl_schema.tables.values()
                       if t.anchor_tag == "feature")
        qualifier = feature.children[0]
        rows = backend.execute(f"""
            SELECT e.entry_name
            FROM {embl_schema.entry_table.name} e
            JOIN {feature.name} f ON f.parent_id = e.row_id
            JOIN {qualifier.name} q ON q.parent_id = f.row_id
            JOIN {enzyme_schema.entry_table.name} z
              ON z.enzyme_id = q.value
            WHERE q.qualifier_type = 'EC_number'""")
        assert sorted(value for (value,) in rows) == expected
