"""WAL + busy_timeout regression tests for file-backed SQLite.

Before this, every :class:`SqliteBackend` ran ``journal_mode =
MEMORY`` with no ``busy_timeout`` — fine for a single connection, but
a second connection on the same *file* (the query service's CLI
``health`` probe, a scraper, another process) got an immediate
``database is locked`` whenever a writer held the lock. File-backed
databases now run WAL with a busy timeout: readers proceed against
their snapshot while a writer works, and a second writer waits its
turn. ``:memory:`` keeps the MEMORY journal (one connection by
construction, nothing to coordinate).
"""

import threading
import time

from repro.relational.sqlite_backend import SqliteBackend


def _journal_mode(backend: SqliteBackend) -> str:
    return backend.execute("PRAGMA journal_mode")[0][0].lower()


class TestJournalModes:
    def test_file_backed_runs_wal(self, tmp_path):
        backend = SqliteBackend(tmp_path / "wh.sqlite")
        assert _journal_mode(backend) == "wal"
        timeout = backend.execute("PRAGMA busy_timeout")[0][0]
        assert timeout >= 1_000
        backend.close()

    def test_in_memory_keeps_memory_journal(self):
        backend = SqliteBackend()
        assert _journal_mode(backend) == "memory"
        backend.close()

    def test_busy_timeout_configurable(self, tmp_path):
        backend = SqliteBackend(tmp_path / "wh.sqlite",
                                busy_timeout_ms=1_234)
        assert backend.execute("PRAGMA busy_timeout")[0][0] == 1_234
        backend.close()


class TestCrossConnectionConcurrency:
    def test_second_writer_waits_instead_of_erroring(self, tmp_path):
        """The headline regression: with no busy_timeout the second
        connection's INSERT raised StorageError("database is locked")
        the instant the first held the write lock; now it queues
        behind the writer and succeeds once the lock frees."""
        path = tmp_path / "wh.sqlite"
        first = SqliteBackend(path)
        first.execute("CREATE TABLE t (x INTEGER)")
        first.commit()
        second = SqliteBackend(path)

        first.execute("BEGIN IMMEDIATE")
        first.execute("INSERT INTO t VALUES (1)")
        outcomes, errors = [], []

        def blocked_writer():
            try:
                second.execute("INSERT INTO t VALUES (2)")
                second.commit()
                outcomes.append("committed")
            except Exception as exc:   # noqa: BLE001 - the regression
                errors.append(exc)

        thread = threading.Thread(target=blocked_writer)
        thread.start()
        time.sleep(0.2)
        # the old code has already failed by now; the new code is
        # still politely waiting on the busy handler
        assert not errors, f"second writer errored: {errors[0]}"
        assert not outcomes
        first.commit()
        thread.join(timeout=10)
        assert outcomes == ["committed"]
        assert errors == []
        rows = first.execute("SELECT COUNT(*) FROM t")
        assert rows[0][0] == 2
        first.close()
        second.close()

    def test_open_reader_does_not_block_writer(self, tmp_path):
        """The deterministic old-code failure: under the rollback
        (MEMORY) journal a reader's open transaction holds a shared
        lock that denies the writer's commit — ``database is locked``
        once the busy window expires. Under WAL the writer commits
        concurrently while the reader keeps its snapshot."""
        path = tmp_path / "wh.sqlite"
        writer = SqliteBackend(path)
        writer.execute("CREATE TABLE t (x INTEGER)")
        writer.execute("INSERT INTO t VALUES (0)")
        writer.commit()
        reader = SqliteBackend(path)
        reader.execute("BEGIN")
        assert reader.execute("SELECT COUNT(*) FROM t")[0][0] == 1
        # bound the busy wait so the old code fails fast, not in 5s
        writer.execute("PRAGMA busy_timeout = 250")
        writer.execute("INSERT INTO t VALUES (1)")   # old code: locked
        writer.commit()
        # the reader's snapshot is stable until its transaction ends
        assert reader.execute("SELECT COUNT(*) FROM t")[0][0] == 1
        reader.execute("COMMIT")
        assert reader.execute("SELECT COUNT(*) FROM t")[0][0] == 2
        writer.close()
        reader.close()

    def test_reader_proceeds_during_write_transaction(self, tmp_path):
        """WAL semantics: a reader on a second connection sees its
        snapshot while a writer holds an open transaction — no
        blocking, no error, no dirty read."""
        path = tmp_path / "wh.sqlite"
        writer = SqliteBackend(path)
        writer.execute("CREATE TABLE t (x INTEGER)")
        writer.executemany("INSERT INTO t VALUES (?)",
                           [(n,) for n in range(3)])
        writer.commit()
        reader = SqliteBackend(path)

        writer.execute("BEGIN IMMEDIATE")
        writer.execute("INSERT INTO t VALUES (99)")
        assert reader.execute("SELECT COUNT(*) FROM t")[0][0] == 3
        writer.commit()
        assert reader.execute("SELECT COUNT(*) FROM t")[0][0] == 4
        writer.close()
        reader.close()

    def test_probe_reads_a_live_warehouse_file(self, tmp_path):
        """The deployment shape that motivated the fix: a CLI health
        probe opens the same database file the service holds open."""
        from repro.engine import Warehouse
        from repro.obs import MetricsRegistry
        from repro.synth import build_corpus
        path = tmp_path / "wh.sqlite"
        serving = Warehouse(backend=SqliteBackend(path),
                            metrics=MetricsRegistry())
        serving.load_corpus(build_corpus(seed=7, enzyme_count=5,
                                         embl_count=5, sprot_count=5))
        probe = Warehouse(backend=SqliteBackend(path), create=False,
                          metrics=MetricsRegistry())
        report = probe.health()
        assert report["status"] == "ok"
        assert probe.stats()["documents"] == serving.stats()["documents"]
        probe.close()
        serving.close()
