"""SqliteBackend specifics: pragmas, streaming executemany, errors."""

import pytest

from repro.errors import StorageError
from repro.relational.sqlite_backend import SqliteBackend


@pytest.fixture
def sqlite_backend():
    backend = SqliteBackend()
    backend.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    yield backend
    backend.close()


class TestExecutemanyStreaming:
    def test_counts_while_streaming_a_generator(self, sqlite_backend):
        total = 3 * SqliteBackend._EXECUTEMANY_CHUNK + 17
        count = sqlite_backend.executemany(
            "INSERT INTO t (a, b) VALUES (?, ?)",
            ((i, f"v{i}") for i in range(total)))
        assert count == total
        rows = sqlite_backend.execute("SELECT COUNT(*), MIN(a), MAX(a) "
                                      "FROM t")
        assert rows == [(total, 0, total - 1)]

    def test_empty_iterable_is_zero(self, sqlite_backend):
        assert sqlite_backend.executemany(
            "INSERT INTO t (a, b) VALUES (?, ?)", iter(())) == 0

    def test_error_raises_storage_error(self, sqlite_backend):
        with pytest.raises(StorageError):
            sqlite_backend.executemany(
                "INSERT INTO missing (a) VALUES (?)", [(1,)])


class TestTuning:
    def test_bulk_load_pragmas_applied(self, sqlite_backend):
        assert sqlite_backend.execute("PRAGMA temp_store") == [(2,)]  # MEMORY
        (cache_size,), = sqlite_backend.execute("PRAGMA cache_size")
        assert cache_size == -65_536
        assert sqlite_backend.execute("PRAGMA synchronous") == [(0,)]

    def test_cache_size_is_configurable(self):
        backend = SqliteBackend(cache_kib=1024)
        assert backend.execute("PRAGMA cache_size") == [(-1024,)]
        backend.close()
