"""Unit tests for the minidb SQL lexer and parser."""

import pytest

from repro.errors import SchemaError
from repro.relational.minidb.expr import (
    Aggregate,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Or,
    Param,
)
from repro.relational.minidb.sql import (
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    parse_sql,
    tokenize,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("SELECT select SeLeCt")]
        assert kinds[:3] == ["keyword"] * 3

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_number_kinds(self):
        tokens = tokenize("1 2.5")
        assert tokens[0].value == "1"
        assert tokens[1].value == "2.5"

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- comment\n1")
        assert [t.value for t in tokens[:2]] == ["SELECT", "1"]

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "weird name"

    def test_unterminated_string_rejected(self):
        with pytest.raises(SchemaError):
            tokenize("'open")


class TestDdlParsing:
    def test_create_table(self):
        statement = parse_sql(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
            "score REAL)")
        assert isinstance(statement, CreateTable)
        assert [c.name for c in statement.columns] == ["id", "name", "score"]
        assert statement.columns[0].primary_key
        assert statement.columns[1].not_null

    def test_create_index(self):
        statement = parse_sql("CREATE INDEX i ON t (a, b)")
        assert isinstance(statement, CreateIndex)
        assert statement.columns == ["a", "b"]
        assert not statement.unique

    def test_create_unique_index(self):
        assert parse_sql("CREATE UNIQUE INDEX i ON t (a)").unique

    def test_drop_table_if_exists(self):
        statement = parse_sql("DROP TABLE IF EXISTS t")
        assert isinstance(statement, DropTable)
        assert statement.if_exists


class TestDmlParsing:
    def test_insert_with_params(self):
        statement = parse_sql("INSERT INTO t (a, b) VALUES (?, ?)")
        assert isinstance(statement, Insert)
        assert statement.columns == ["a", "b"]
        assert all(isinstance(v, Param) for v in statement.values)

    def test_insert_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            parse_sql("INSERT INTO t (a, b) VALUES (?)")

    def test_delete_with_where(self):
        statement = parse_sql("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, Delete)
        assert isinstance(statement.where, Comparison)


class TestSelectParsing:
    def test_basic_shape(self):
        statement = parse_sql("SELECT a, b FROM t WHERE a = 1")
        assert isinstance(statement, Select)
        assert len(statement.items) == 2
        assert statement.base.table == "t"

    def test_table_alias(self):
        statement = parse_sql("SELECT x.a FROM t x")
        assert statement.base.alias == "x"
        ref = statement.items[0].expr
        assert isinstance(ref, ColumnRef) and ref.alias == "x"

    def test_join_on(self):
        statement = parse_sql(
            "SELECT a.x FROM t a JOIN u b ON a.id = b.id")
        assert len(statement.joins) == 1
        assert statement.joins[0].ref.alias == "b"

    def test_comma_cross_join(self):
        statement = parse_sql("SELECT a.x FROM t a, u b WHERE a.id = b.id")
        assert len(statement.cross) == 1

    def test_distinct_flag(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_order_by_directions(self):
        statement = parse_sql("SELECT a FROM t ORDER BY a DESC, b ASC")
        assert [o.ascending for o in statement.order_by] == [False, True]

    def test_limit(self):
        assert parse_sql("SELECT a FROM t LIMIT 5").limit == 5

    def test_group_by(self):
        statement = parse_sql(
            "SELECT a, COUNT(*) FROM t GROUP BY a")
        assert len(statement.group_by) == 1
        assert isinstance(statement.items[1].expr, Aggregate)

    def test_star(self):
        assert parse_sql("SELECT * FROM t").items[0].star

    def test_column_alias(self):
        statement = parse_sql("SELECT a AS alpha FROM t")
        assert statement.items[0].alias == "alpha"


class TestExpressionParsing:
    def where(self, text):
        return parse_sql(f"SELECT a FROM t WHERE {text}").where

    def test_precedence_and_over_or(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Or)
        assert len(expr.items) == 2

    def test_parentheses_override(self):
        expr = self.where("(a = 1 OR b = 2) AND c = 3")
        assert not isinstance(expr, Or)

    def test_is_null_and_is_not_null(self):
        assert isinstance(self.where("a IS NULL"), IsNull)
        expr = self.where("a IS NOT NULL")
        assert isinstance(expr, IsNull) and expr.negate

    def test_like(self):
        expr = self.where("a LIKE '%x%'")
        assert isinstance(expr, Like)

    def test_not_like(self):
        expr = self.where("a NOT LIKE '%x%'")
        assert isinstance(expr, Like) and expr.negate

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.options) == 3

    def test_arithmetic_in_comparison(self):
        expr = self.where("a + 1 < b * 2")
        assert isinstance(expr, Comparison)

    def test_neq_spellings(self):
        assert self.where("a != 1").op == "!="
        assert self.where("a <> 1").op == "!="

    def test_function_call(self):
        expr = self.where("lower(a) = 'x'")
        assert expr.left.name == "lower"

    def test_null_literal(self):
        expr = parse_sql("SELECT NULL FROM t").items[0].expr
        assert isinstance(expr, Literal) and expr.value is None

    def test_param_positions_in_order(self):
        statement = parse_sql("SELECT a FROM t WHERE a = ? AND b = ?")
        params = []

        def walk(expr):
            if isinstance(expr, Param):
                params.append(expr.index)
            for value in getattr(expr, "__dict__", {}).values():
                if isinstance(value, list):
                    for item in value:
                        if hasattr(item, "__dict__"):
                            walk(item)
                elif hasattr(value, "__dict__"):
                    walk(value)

        walk(statement.where)
        assert params == [0, 1]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SchemaError):
            parse_sql("SELECT a FROM t extra garbage here)")
