"""Unit tests for minidb index structures."""

import pytest

from repro.errors import ConstraintError
from repro.relational.minidb.index import HashIndex, OrderedIndex, build_index


class TestHashIndex:
    def make(self, unique=False):
        index = HashIndex("h", [0, 1], unique=unique)
        index.add(("a", 1, "x"), 0)
        index.add(("a", 2, "y"), 1)
        index.add(("a", 1, "z"), 2)
        return index

    def test_lookup_composite_key(self):
        assert self.make().lookup(("a", 1)) == [0, 2]

    def test_lookup_miss(self):
        assert self.make().lookup(("b", 1)) == []

    def test_null_keys_not_indexed(self):
        index = HashIndex("h", [0], unique=False)
        index.add((None, "x"), 0)
        assert len(index) == 0

    def test_remove(self):
        index = self.make()
        index.remove(("a", 1, "x"), 0)
        assert index.lookup(("a", 1)) == [2]

    def test_unique_violation(self):
        index = HashIndex("h", [0], unique=True)
        index.add(("k",), 0)
        with pytest.raises(ConstraintError):
            index.add(("k",), 1)

    def test_no_range_support(self):
        assert not HashIndex("h", [0]).supports_ranges


class TestOrderedIndex:
    def make(self):
        index = OrderedIndex("o", [0])
        for row_id, value in enumerate([30, 10, 20, 10, None, 40]):
            index.add((value,), row_id)
        return index

    def test_lookup_equality(self):
        assert sorted(self.make().lookup((10,))) == [1, 3]

    def test_nulls_excluded(self):
        assert len(self.make()) == 5

    def test_range_scan_inclusive(self):
        hits = sorted(self.make().range_scan(10, 30))
        assert hits == [0, 1, 2, 3]

    def test_range_scan_exclusive_bounds(self):
        hits = sorted(self.make().range_scan(10, 30, low_inclusive=False,
                                             high_inclusive=False))
        assert hits == [2]

    def test_open_ended_ranges(self):
        assert sorted(self.make().range_scan(low=30)) == [0, 5]
        assert sorted(self.make().range_scan(high=10)) == [1, 3]

    def test_remove_shrinks_bucket(self):
        index = self.make()
        index.remove((10,), 1)
        assert index.lookup((10,)) == [3]
        index.remove((10,), 3)
        assert index.lookup((10,)) == []

    def test_mixed_type_keys_segregated(self):
        index = OrderedIndex("o", [0])
        index.add((5,), 0)
        index.add(("banana",), 1)
        index.add((7,), 2)
        # numeric range scans never see string keys
        assert sorted(index.range_scan(0, 100)) == [0, 2]

    def test_supports_ranges(self):
        assert OrderedIndex("o", [0]).supports_ranges


class TestBuildIndex:
    def test_single_column_gets_ordered(self):
        assert isinstance(build_index("i", [0], False), OrderedIndex)

    def test_multi_column_gets_hash(self):
        assert isinstance(build_index("i", [0, 1], False), HashIndex)
