"""Additional minidb SQL-surface coverage (differential vs sqlite
where both support the statement)."""

import pytest

from repro.errors import SchemaError
from repro.relational import MiniDbBackend, SqliteBackend


@pytest.fixture
def pair():
    backends = (SqliteBackend(), MiniDbBackend())
    for backend in backends:
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                        "v TEXT, n INTEGER)")
        backend.executemany("INSERT INTO t (id, v, n) VALUES (?, ?, ?)",
                            [(1, "alpha", 10), (2, "beta", None),
                             (3, "Gamma", 30), (4, None, 40)])
    yield backends
    for backend in backends:
        backend.close()


def both(pair, sql, params=()):
    sqlite, minidb = pair
    assert sorted(minidb.execute(sql, params)) \
        == sorted(sqlite.execute(sql, params)), sql
    return sorted(minidb.execute(sql, params))


class TestMoreExpressions:
    def test_not_in(self, pair):
        both(pair, "SELECT id FROM t WHERE v NOT IN ('alpha', 'beta')")

    def test_in_with_params(self, pair):
        both(pair, "SELECT id FROM t WHERE n IN (?, ?)", (10, 40))

    def test_like_case_insensitive(self, pair):
        rows = both(pair, "SELECT id FROM t WHERE v LIKE 'g%'")
        assert rows == [(3,)]

    def test_not_like(self, pair):
        both(pair, "SELECT id FROM t WHERE v NOT LIKE '%a%'")

    def test_functions_in_projection(self, pair):
        both(pair, "SELECT upper(v), length(v) FROM t WHERE id = 1")

    def test_unary_minus(self, pair):
        both(pair, "SELECT -n FROM t WHERE n IS NOT NULL")

    def test_string_escaping(self, pair):
        for backend in pair:
            backend.execute("INSERT INTO t (id, v, n) VALUES (5, 'it''s', 0)")
        rows = both(pair, "SELECT v FROM t WHERE id = 5")
        assert rows == [("it's",)]

    def test_limit_zero(self, pair):
        assert both(pair, "SELECT id FROM t LIMIT 0") == []

    def test_order_by_with_nulls(self, pair):
        sqlite, minidb = pair
        sql = "SELECT v FROM t ORDER BY v"
        # NULLs sort first in both engines
        assert minidb.execute(sql) == sqlite.execute(sql)

    def test_comparison_with_arithmetic_both_sides(self, pair):
        both(pair, "SELECT id FROM t WHERE n + 5 > id * 10")


class TestDdlEdges:
    def test_drop_index(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        backend.execute("CREATE INDEX iv ON t (v)")
        backend.execute("INSERT INTO t (id, v) VALUES (1, 'x')")
        assert "index lookup" in " ".join(
            backend.explain("SELECT id FROM t WHERE v = 'x'"))
        backend.execute("DROP INDEX iv")
        assert "seq scan" in " ".join(
            backend.explain("SELECT id FROM t WHERE v = 'x'"))

    def test_drop_missing_index_if_exists(self):
        backend = MiniDbBackend()
        backend.execute("DROP INDEX IF EXISTS nothing")
        with pytest.raises(SchemaError):
            backend.execute("DROP INDEX nothing")

    def test_create_duplicate_index_rejected(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        backend.execute("CREATE INDEX i ON t (id)")
        with pytest.raises(SchemaError):
            backend.execute("CREATE INDEX i ON t (id)")

    def test_unique_index_enforced_on_insert(self):
        from repro.errors import ConstraintError
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        backend.execute("CREATE UNIQUE INDEX uv ON t (v)")
        backend.execute("INSERT INTO t (id, v) VALUES (1, 'x')")
        with pytest.raises(ConstraintError):
            backend.execute("INSERT INTO t (id, v) VALUES (2, 'x')")

    def test_index_built_over_existing_rows(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        backend.executemany("INSERT INTO t (id, v) VALUES (?, ?)",
                            [(i, f"v{i}") for i in range(10)])
        backend.execute("CREATE INDEX iv ON t (v)")
        assert backend.execute("SELECT id FROM t WHERE v = 'v7'") == [(7,)]
        assert "index lookup" in " ".join(
            backend.explain("SELECT id FROM t WHERE v = 'v7'"))


class TestJoinOrdering:
    def test_greedy_order_avoids_cross_product(self):
        """Three tables written in a pessimal FROM order: the planner
        must join connected tables first (plan note records the
        reordering)."""
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE big_a (id INTEGER PRIMARY KEY)")
        backend.execute("CREATE TABLE big_b (id INTEGER PRIMARY KEY)")
        backend.execute("CREATE TABLE link (a_id INTEGER NOT NULL, "
                        "b_id INTEGER NOT NULL, tag TEXT NOT NULL)")
        backend.execute("CREATE INDEX lt ON link (tag)")
        backend.executemany("INSERT INTO big_a (id) VALUES (?)",
                            [(i,) for i in range(200)])
        backend.executemany("INSERT INTO big_b (id) VALUES (?)",
                            [(i,) for i in range(200)])
        backend.executemany(
            "INSERT INTO link (a_id, b_id, tag) VALUES (?, ?, ?)",
            [(i, i, "hot" if i < 3 else "cold") for i in range(200)])
        sql = ("SELECT a.id, b.id FROM big_a a, big_b b, link l "
               "WHERE l.a_id = a.id AND l.b_id = b.id AND l.tag = 'hot'")
        rows = backend.execute(sql)
        assert sorted(rows) == [(0, 0), (1, 1), (2, 2)]
        plan = " | ".join(backend.explain(sql))
        assert "join order: l" in plan        # link (selective) first
        assert "nested loop" not in plan      # everything hash-joined
