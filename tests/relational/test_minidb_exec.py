"""minidb execution semantics, differentially tested against sqlite.

Every test runs the same SQL on both engines and asserts equal result
multisets — sqlite is the semantics oracle.
"""

import pytest

from repro.errors import ConstraintError, SchemaError
from repro.relational import MiniDbBackend, SqliteBackend


@pytest.fixture
def pair():
    """Both backends with the same small dataset."""
    backends = (SqliteBackend(), MiniDbBackend())
    for backend in backends:
        backend.execute("CREATE TABLE people (id INTEGER PRIMARY KEY, "
                        "name TEXT NOT NULL, age INTEGER, city TEXT)")
        backend.execute("CREATE TABLE pets (id INTEGER PRIMARY KEY, "
                        "owner_id INTEGER NOT NULL, species TEXT NOT NULL)")
        backend.execute("CREATE INDEX idx_people_city ON people (city)")
        backend.execute("CREATE INDEX idx_pets_owner ON pets (owner_id)")
        people = [(1, "ann", 34, "olso"), (2, "bob", 28, "bergen"),
                  (3, "cai", 41, "olso"), (4, "dee", 28, None),
                  (5, "eli", None, "tromso")]
        pets = [(1, 1, "cat"), (2, 1, "dog"), (3, 3, "cat"),
                (4, 5, "parrot")]
        backend.executemany(
            "INSERT INTO people (id, name, age, city) VALUES (?, ?, ?, ?)",
            people)
        backend.executemany(
            "INSERT INTO pets (id, owner_id, species) VALUES (?, ?, ?)",
            pets)
    yield backends
    for backend in backends:
        backend.close()


def both(pair, sql, params=()):
    sqlite, minidb = pair
    expected = sorted(sqlite.execute(sql, params))
    actual = sorted(minidb.execute(sql, params))
    assert actual == expected, f"divergence on: {sql}"
    return actual


class TestSingleTable:
    def test_full_scan(self, pair):
        rows = both(pair, "SELECT name FROM people")
        assert len(rows) == 5

    def test_equality_filter(self, pair):
        rows = both(pair, "SELECT name FROM people WHERE city = 'olso'")
        assert len(rows) == 2

    def test_equality_via_param(self, pair):
        both(pair, "SELECT name FROM people WHERE city = ?", ("bergen",))

    def test_range_filter(self, pair):
        rows = both(pair, "SELECT name FROM people WHERE age > 30")
        assert len(rows) == 2

    def test_range_both_bounds(self, pair):
        both(pair, "SELECT name FROM people WHERE age >= 28 AND age < 41")

    def test_null_never_matches_comparison(self, pair):
        rows = both(pair, "SELECT name FROM people WHERE age < 100")
        assert ("eli",) not in rows

    def test_is_null(self, pair):
        rows = both(pair, "SELECT name FROM people WHERE city IS NULL")
        assert rows == [("dee",)]

    def test_is_not_null(self, pair):
        both(pair, "SELECT name FROM people WHERE age IS NOT NULL")

    def test_or_condition(self, pair):
        both(pair, "SELECT name FROM people WHERE age = 28 OR city = 'olso'")

    def test_not_condition(self, pair):
        both(pair, "SELECT name FROM people WHERE NOT city = 'olso'")

    def test_in_list(self, pair):
        both(pair, "SELECT name FROM people WHERE city IN ('olso', 'tromso')")

    def test_like_patterns(self, pair):
        both(pair, "SELECT name FROM people WHERE name LIKE '%a%'")
        both(pair, "SELECT name FROM people WHERE name LIKE 'a__'")

    def test_arithmetic_projection(self, pair):
        both(pair, "SELECT id * 2 + 1 FROM people WHERE age = 34")

    def test_scalar_functions(self, pair):
        both(pair, "SELECT upper(name) FROM people WHERE id = 1")
        both(pair, "SELECT length(name) FROM people")
        both(pair, "SELECT abs(0 - id) FROM people")


class TestJoins:
    def test_inner_join_on(self, pair):
        rows = both(pair, "SELECT p.name, q.species FROM people p "
                          "JOIN pets q ON q.owner_id = p.id")
        assert len(rows) == 4

    def test_comma_join_with_where(self, pair):
        both(pair, "SELECT p.name, q.species FROM people p, pets q "
                   "WHERE q.owner_id = p.id AND q.species = 'cat'")

    def test_join_plus_filter_on_either_side(self, pair):
        both(pair, "SELECT p.name FROM people p JOIN pets q "
                   "ON q.owner_id = p.id WHERE p.city = 'olso' "
                   "AND q.species = 'cat'")

    def test_three_way_join(self, pair):
        both(pair, "SELECT a.name, b.name FROM people a, pets x, people b "
                   "WHERE x.owner_id = a.id AND b.age = a.age "
                   "AND b.id != a.id")

    def test_cross_product_without_condition(self, pair):
        rows = both(pair, "SELECT p.id, q.id FROM people p, pets q")
        assert len(rows) == 20

    def test_non_equi_join_condition(self, pair):
        both(pair, "SELECT a.name, b.name FROM people a, people b "
                   "WHERE a.age < b.age")


class TestAggregatesAndShaping:
    def test_count_star(self, pair):
        assert both(pair, "SELECT COUNT(*) FROM people") == [(5,)]

    def test_count_column_skips_nulls(self, pair):
        assert both(pair, "SELECT COUNT(age) FROM people") == [(4,)]

    def test_count_distinct(self, pair):
        assert both(pair, "SELECT COUNT(DISTINCT city) FROM people") == [(3,)]

    def test_min_max_sum_avg(self, pair):
        both(pair, "SELECT MIN(age), MAX(age), SUM(age) FROM people")
        both(pair, "SELECT AVG(age) FROM people WHERE city = 'olso'")

    def test_group_by_with_count(self, pair):
        both(pair, "SELECT city, COUNT(*) FROM people "
                   "WHERE city IS NOT NULL GROUP BY city ORDER BY city")

    def test_distinct(self, pair):
        rows = both(pair, "SELECT DISTINCT city FROM people "
                          "WHERE city IS NOT NULL")
        assert len(rows) == 3

    def test_order_by_asc_desc(self, pair):
        sqlite, minidb = pair
        sql = "SELECT name FROM people WHERE age IS NOT NULL ORDER BY age DESC, name"
        assert minidb.execute(sql) == sqlite.execute(sql)

    def test_limit(self, pair):
        sqlite, minidb = pair
        sql = "SELECT name FROM people ORDER BY name LIMIT 2"
        assert minidb.execute(sql) == sqlite.execute(sql)

    def test_aggregate_on_empty_set(self, pair):
        both(pair, "SELECT MAX(age), COUNT(*) FROM people WHERE id = 999")


class TestDml:
    def test_delete_with_predicate(self, pair):
        for backend in pair:
            backend.execute("DELETE FROM pets WHERE species = 'cat'")
        rows = both(pair, "SELECT species FROM pets")
        assert len(rows) == 2

    def test_delete_all(self, pair):
        for backend in pair:
            backend.execute("DELETE FROM pets")
        assert both(pair, "SELECT COUNT(*) FROM pets") == [(0,)]

    def test_insert_visible_to_index_lookup(self, pair):
        for backend in pair:
            backend.execute("INSERT INTO people (id, name, age, city) "
                            "VALUES (?, ?, ?, ?)", (6, "fay", 20, "olso"))
        rows = both(pair, "SELECT name FROM people WHERE city = 'olso'")
        assert len(rows) == 3


class TestMiniDbSpecifics:
    def test_duplicate_primary_key_rejected(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        backend.execute("INSERT INTO t (id, v) VALUES (1, 'a')")
        with pytest.raises(ConstraintError):
            backend.execute("INSERT INTO t (id, v) VALUES (1, 'b')")

    def test_not_null_enforced(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                        "v TEXT NOT NULL)")
        with pytest.raises(ConstraintError):
            backend.execute("INSERT INTO t (id, v) VALUES (1, ?)", (None,))

    def test_unknown_table_rejected(self):
        with pytest.raises(SchemaError):
            MiniDbBackend().execute("SELECT x FROM nothing")

    def test_unknown_column_rejected(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        with pytest.raises(SchemaError):
            backend.execute("SELECT nope FROM t")

    def test_ambiguous_bare_column_rejected(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        backend.execute("CREATE TABLE u (id INTEGER PRIMARY KEY)")
        with pytest.raises(SchemaError):
            backend.execute("SELECT id FROM t a, u b")

    def test_explain_reports_index_use(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, c TEXT)")
        backend.execute("CREATE INDEX idx_c ON t (c)")
        backend.execute("INSERT INTO t (id, c) VALUES (1, 'x')")
        plan = backend.explain("SELECT id FROM t WHERE c = 'x'")
        assert any("index lookup" in step for step in plan)

    def test_explain_reports_seq_scan_without_index(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, c TEXT)")
        plan = backend.explain("SELECT id FROM t WHERE c = 'x'")
        assert any("seq scan" in step for step in plan)

    def test_statement_cache_reused(self):
        backend = MiniDbBackend()
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        sql = "SELECT id FROM t"
        backend.execute(sql)
        cached = backend._statement_cache[sql]
        backend.execute(sql)
        assert backend._statement_cache[sql] is cached
