"""SqliteBackend thread-safety: the shared connection is lock-guarded,
so worker threads (scatter-gather, bulk-load workers) may execute
against one backend without tripping sqlite's same-thread check."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import Warehouse
from repro.relational.sqlite_backend import SqliteBackend

KEYWORD = ('FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry '
           'WHERE contains($e//catalytic_activity, "ketone") '
           'RETURN $e/enzyme_id')


@pytest.fixture
def backend():
    be = SqliteBackend()
    be.execute("CREATE TABLE t (a INTEGER)")
    yield be
    be.close()


class TestBackendFromWorkerThreads:
    def test_reads_from_worker_threads(self, backend):
        backend.executemany("INSERT INTO t (a) VALUES (?)",
                            [(i,) for i in range(100)])

        def read(_):
            return backend.execute("SELECT COUNT(*), SUM(a) FROM t")

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(read, range(32)))
        assert results == [[(100, 4950)]] * 32

    def test_interleaved_writes_from_worker_threads(self, backend):
        def write(i):
            backend.executemany("INSERT INTO t (a) VALUES (?)",
                                [(i * 50 + j,) for j in range(50)])
            backend.commit()
            return i

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, range(8)))
        assert backend.execute("SELECT COUNT(*), MIN(a), MAX(a) FROM t") \
            == [(400, 0, 399)]


class TestWarehouseFromWorkerThreads:
    def test_concurrent_keyword_queries_agree(self, corpus):
        warehouse = Warehouse(metrics=False)
        warehouse.load_text("hlx_enzyme", corpus.enzyme_text)
        expected = warehouse.query(KEYWORD).to_xml()

        def run(_):
            return warehouse.query(KEYWORD).to_xml()

        with ThreadPoolExecutor(max_workers=8,
                                thread_name_prefix="reader") as pool:
            results = list(pool.map(run, range(24)))
        assert results == [expected] * 24
        warehouse.close()
