"""Unit tests for the generic schema DDL layer (both backends)."""

import pytest

from repro.errors import StorageError
from repro.relational import (
    CREATE_INDEXES,
    SchemaOptions,
    TABLE_NAMES,
    create_schema,
    drop_schema,
)


class TestCreateDrop:
    def test_create_makes_all_tables(self, backend):
        create_schema(backend)
        for table in TABLE_NAMES:
            rows = backend.execute(f"SELECT COUNT(*) FROM {table}")
            assert rows == [(0,)]

    def test_double_create_fails(self, backend):
        create_schema(backend)
        with pytest.raises(Exception):
            create_schema(backend)

    def test_drop_then_recreate(self, backend):
        create_schema(backend)
        drop_schema(backend)
        create_schema(backend, SchemaOptions(with_indexes=False))
        backend.execute(
            "INSERT INTO documents (doc_id, source, collection, entry_key, "
            "root_tag) VALUES (1, 's', 'c', 'k', 'r')")

    def test_drop_missing_tables_tolerated(self, backend):
        drop_schema(backend)   # nothing exists yet: must not raise

    def test_without_indexes_option(self, backend):
        create_schema(backend, SchemaOptions(with_indexes=False))
        # table exists and is writable; no index errors on insert
        backend.execute(
            "INSERT INTO keywords (doc_id, node_id, token, position) "
            "VALUES (1, 0, 'x', 0)")

    def test_index_names_are_unique(self):
        names = [stmt.split()[2] for stmt in CREATE_INDEXES]
        assert len(names) == len(set(names))


class TestSchemaShape:
    def test_elements_has_interval_columns(self, backend):
        create_schema(backend)
        backend.execute(
            "INSERT INTO elements (doc_id, node_id, parent_id, tag, "
            "sib_ord, doc_order, subtree_end, depth, tag_sib_ord) "
            "VALUES (1, 0, NULL, 'r', 0, 0, 0, 0, 0)")
        rows = backend.execute(
            "SELECT doc_order, subtree_end FROM elements")
        assert rows == [(0, 0)]

    def test_numeric_twin_columns(self, backend):
        create_schema(backend)
        backend.execute(
            "INSERT INTO text_values (doc_id, node_id, value, num_value) "
            "VALUES (1, 0, '42', 42.0)")
        rows = backend.execute(
            "SELECT value, num_value FROM text_values WHERE num_value > 40")
        assert rows == [("42", 42.0)]
