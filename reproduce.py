"""One-command reproduction driver.

Runs the full pipeline a reviewer needs::

    python reproduce.py            # tests + benchmarks + summaries
    python reproduce.py --quick    # tests only
    python reproduce.py --profile  # observability smoke: profile the
                                   # Figure 8/11 queries on both
                                   # backends, write profile_results.json
    python reproduce.py --metrics  # always-on metrics smoke: load via a
                                   # hound, run the Figure 8/11 queries,
                                   # write metrics.json (snapshot +
                                   # events + slow queries)
    python reproduce.py --chaos    # resilience smoke: harvest a mirror
                                   # under seeded transport faults and
                                   # verify convergence to the
                                   # fault-free document set

Outputs land next to this file: ``test_output.txt``,
``bench_output.txt``, ``bench_results.json`` and (with ``--profile``)
``profile_results.json`` — both JSON files feed
``benchmarks/summarize.py``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parent

FIG8 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
     $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains ($a, "cdc6", any)
AND   contains ($b, "cdc6", any)
RETURN
     $b//sprot_accession_number,
     $a//embl_accession_number'''

FIG11 = '''FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC_number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description'''


def profile_smoke(out: Path) -> int:
    """Profile the paper's Figure 8 and 11 queries on both backends;
    write the stage-level breakdown JSON and print its summary."""
    sys.path.insert(0, str(ROOT / "src"))
    from repro.engine import Warehouse
    from repro.obs import export_profiles, format_profile
    from repro.relational import MiniDbBackend, SqliteBackend
    from repro.synth import build_corpus

    corpus = build_corpus(seed=7, enzyme_count=40, embl_count=60,
                          sprot_count=40)
    reports = []
    for make in (SqliteBackend, MiniDbBackend):
        warehouse = Warehouse(backend=make())
        warehouse.load_corpus(corpus)
        # fig8 runs twice: the repeat is served by the compiled-query
        # cache, so its profile shows the cache.hit counter and no
        # parse/check/compile stages
        for label, query in (("fig8", FIG8), ("fig8-repeat", FIG8),
                             ("fig11", FIG11)):
            report = warehouse.profile(query)
            reports.append(report)
            print(f"--- {label} ---")
            print(format_profile(report, sql=False))
        warehouse.close()
    export_profiles(reports, out)
    print(f"\nwrote {out}")
    return subprocess.run(
        [sys.executable, str(ROOT / "benchmarks" / "summarize.py"),
         str(out)], cwd=ROOT).returncode


def metrics_smoke(out: Path) -> int:
    """Exercise every instrumented layer once — hound-load a synthetic
    corpus, run the Figure 8/11 queries (fig8 twice for a cache hit),
    refresh — then dump the metrics snapshot, event log and slow-query
    log as ``metrics.json``."""
    import json

    sys.path.insert(0, str(ROOT / "src"))
    from repro.datahounds.transport import InMemoryRepository
    from repro.engine import Warehouse
    from repro.obs import MetricsRegistry
    from repro.synth import build_corpus

    corpus = build_corpus(seed=7, enzyme_count=40, embl_count=60,
                          sprot_count=40)
    registry = MetricsRegistry()
    # slow_query_ms=0 so every query lands in the slow-query log — the
    # smoke must prove SQL + EXPLAIN capture works, not wait for a
    # genuinely slow query
    warehouse = Warehouse(metrics=registry, slow_query_ms=0.0)
    repository = InMemoryRepository(metrics=registry)
    for source, text in corpus.texts().items():
        repository.publish(source, "r1", text)
    hound = warehouse.connect(repository)
    for source in corpus.texts():
        print(hound.load(source))
    for query in (FIG8, FIG8, FIG11):
        warehouse.query(query)
    for source in corpus.texts():
        hound.refresh(source)

    payload = {
        "format": "xomatiq-metrics/1",
        "health": warehouse.health(),
        "metrics": registry.snapshot(),
        "events": [event.to_dict() for event in warehouse.events.events()],
        "slow_queries": warehouse.slow_queries.to_dicts(),
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True),
                   encoding="utf-8")
    warehouse.close()

    snapshot = payload["metrics"]
    print(f"\nhealth: {payload['health']['status']}")
    print(f"counters: {len(snapshot['counters'])}  "
          f"gauges: {len(snapshot['gauges'])}  "
          f"histograms: {len(snapshot['histograms'])}")
    print(f"events: {len(payload['events'])}  "
          f"slow queries: {len(payload['slow_queries'])}")
    print(f"wrote {out}")
    return 0


def chaos_smoke() -> int:
    """Harvest a two-release mirror under seeded transport faults
    (transient resets, truncations, corruptions) through the resilient
    transport, and verify the warehouse converges to exactly the
    fault-free document set — counts and entry fingerprints."""
    sys.path.insert(0, str(ROOT / "src"))
    from repro.datahounds import (FaultInjectingRepository, FaultPlan,
                                  InMemoryRepository, ResilientRepository,
                                  RetryPolicy)
    from repro.engine import Warehouse
    from repro.obs import format_health
    from repro.synth import build_corpus, mutate_release

    corpus = build_corpus(seed=23, enzyme_count=30, embl_count=30,
                          sprot_count=30)
    releases = {"r1": corpus.texts()}
    releases["r2"] = {source: mutate_release(text, seed=29,
                                             update_fraction=0.3,
                                             remove_fraction=0.1)
                      for source, text in releases["r1"].items()}

    def make_mirror():
        repo = InMemoryRepository()
        for release, texts in releases.items():
            for source, text in texts.items():
                repo.publish(source, release, text)
        return repo

    def state(warehouse):
        counts = {k: v for k, v in warehouse.stats().items()
                  if k.startswith("documents:")}
        prints = {source: fp for source, (__, fp)
                  in warehouse.loader.load_snapshots().items()}
        return counts, prints

    def harvest(warehouse, repo):
        hound = warehouse.connect(repo)
        for release in ("r1", "r2"):
            for source in sorted(releases["r1"]):
                print(f"  {hound.load(source, release)}")

    print("=== fault-free baseline ===")
    baseline = Warehouse()
    harvest(baseline, make_mirror())
    want = state(baseline)
    baseline.close()

    for seed in (11, 23, 47):
        print(f"\n=== chaos seed {seed} ===")
        warehouse = Warehouse()
        plan = FaultPlan(seed=seed).add_source(
            "*", transient_rate=0.15, truncate_rate=0.05,
            corrupt_rate=0.05)
        wrapper = ResilientRepository(
            FaultInjectingRepository(make_mirror(), plan,
                                     sleep=lambda s: None),
            policy=RetryPolicy(max_attempts=8, base_delay_s=0.0,
                               jitter=0.0),
            breaker_threshold=50, sleep=lambda s: None,
            metrics=warehouse.metrics, events=warehouse.events)
        harvest(warehouse, wrapper)
        converged = state(warehouse) == want
        print(f"  faults injected: {plan.injected_total()}  "
              f"converged: {converged}")
        if seed == 47:
            print()
            print(format_health(warehouse.health()))
        warehouse.close()
        if not converged:
            print("chaos harvest DIVERGED from the fault-free state")
            return 1
        if not plan.injected_total():
            print("no faults injected — smoke proves nothing")
            return 1
    print("\nchaos smoke ok: every seed converged")
    return 0


def run(label: str, command: list[str], output: Path | None = None) -> int:
    print(f"\n=== {label}: {' '.join(command)} ===")
    process = subprocess.run(command, cwd=ROOT, capture_output=True,
                             text=True)
    text = process.stdout + process.stderr
    if output is not None:
        output.write_text(text, encoding="utf-8")
    tail = "\n".join(text.splitlines()[-3:])
    print(tail)
    return process.returncode


def main() -> int:
    if "--profile" in sys.argv:
        return profile_smoke(ROOT / "profile_results.json")
    if "--metrics" in sys.argv:
        return metrics_smoke(ROOT / "metrics.json")
    if "--chaos" in sys.argv:
        return chaos_smoke()
    quick = "--quick" in sys.argv
    code = run("tests", [sys.executable, "-m", "pytest", "tests/"],
               ROOT / "test_output.txt")
    if code != 0:
        print("tests failed; aborting")
        return code
    if quick:
        return 0
    code = run("benchmarks",
               [sys.executable, "-m", "pytest", "benchmarks/",
                "--benchmark-only",
                "--benchmark-json", str(ROOT / "bench_results.json")],
               ROOT / "bench_output.txt")
    if code != 0:
        print("benchmarks failed")
        return code
    return run("summary", [sys.executable,
                           str(ROOT / "benchmarks" / "summarize.py"),
                           str(ROOT / "bench_results.json")])


if __name__ == "__main__":
    raise SystemExit(main())
