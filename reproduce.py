"""One-command reproduction driver.

Runs the full pipeline a reviewer needs::

    python reproduce.py            # tests + benchmarks + summaries
    python reproduce.py --quick    # tests only

Outputs land next to this file: ``test_output.txt``,
``bench_output.txt`` and ``bench_results.json`` (the input for
``benchmarks/summarize.py``).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parent


def run(label: str, command: list[str], output: Path | None = None) -> int:
    print(f"\n=== {label}: {' '.join(command)} ===")
    process = subprocess.run(command, cwd=ROOT, capture_output=True,
                             text=True)
    text = process.stdout + process.stderr
    if output is not None:
        output.write_text(text, encoding="utf-8")
    tail = "\n".join(text.splitlines()[-3:])
    print(tail)
    return process.returncode


def main() -> int:
    quick = "--quick" in sys.argv
    code = run("tests", [sys.executable, "-m", "pytest", "tests/"],
               ROOT / "test_output.txt")
    if code != 0:
        print("tests failed; aborting")
        return code
    if quick:
        return 0
    code = run("benchmarks",
               [sys.executable, "-m", "pytest", "benchmarks/",
                "--benchmark-only",
                "--benchmark-json", str(ROOT / "bench_results.json")],
               ROOT / "bench_output.txt")
    if code != 0:
        print("benchmarks failed")
        return code
    return run("summary", [sys.executable,
                           str(ROOT / "benchmarks" / "summarize.py"),
                           str(ROOT / "bench_results.json")])


if __name__ == "__main__":
    raise SystemExit(main())
