"""Exception hierarchy for the XomatiQ reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the system (the paper's "applications under the gRNA
framework") can catch one base class. Subsystem bases mirror the package
layout: XML handling, flat-file parsing, Data Hounds, relational storage,
the XQuery front end and the XQ2SQL translator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XmlError(ReproError):
    """Base class for XML infoset errors."""


class XmlParseError(XmlError):
    """Raised when an XML document is not well-formed.

    Carries ``line`` and ``column`` (1-based) of the offending input
    position when they are known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DtdError(XmlError):
    """Raised when a DTD is malformed."""


class DtdValidationError(XmlError):
    """Raised when a document does not conform to its DTD."""


class PathError(XmlError):
    """Raised for malformed path expressions."""


class FlatFileError(ReproError):
    """Raised when a flat-file record violates its line-format spec."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"{message} (input line {line_number})"
        super().__init__(message)
        self.line_number = line_number


class DataHoundsError(ReproError):
    """Base class for Data Hounds (harvest/transform/load) errors."""


class TransportError(DataHoundsError):
    """Raised when a source release cannot be fetched."""


class PayloadIntegrityError(TransportError):
    """Raised when a fetched payload does not match the release
    checksum the repository advertises (truncated or corrupted
    transfer — a retryable transport fault, not a data-model error)."""


class CircuitOpenError(TransportError):
    """Raised when a fetch is short-circuited because the source's
    circuit breaker is open (the source has failed repeatedly and is
    in its cooldown window)."""


class TransformError(DataHoundsError):
    """Raised when a source record cannot be mapped to XML."""


class UnknownSourceError(DataHoundsError):
    """Raised when a source name is not registered with the hound."""


class StorageError(ReproError):
    """Base class for relational-backend errors."""


class SchemaError(StorageError):
    """Raised for invalid DDL or catalog misuse."""


class ConstraintError(StorageError):
    """Raised when an insert violates a uniqueness constraint."""


class ExecutionError(StorageError):
    """Raised when a physical plan fails during execution."""


class QueryError(ReproError):
    """Base class for XomatiQ query-language errors."""


class XQuerySyntaxError(QueryError):
    """Raised when a query does not parse.

    Carries the offending ``position`` (0-based character offset) when
    known.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class BindingError(QueryError):
    """Raised for undefined or duplicate variable bindings."""


class TranslationError(QueryError):
    """Raised when a parsed query cannot be compiled to a plan."""


class UnknownDocumentError(QueryError):
    """Raised when ``document("name")`` names an unloaded warehouse."""


class FederationError(ReproError):
    """Base class for federated-query (sharded warehouse) errors."""


class ShardConfigError(FederationError):
    """Raised for an invalid shard catalog (unknown shard names,
    malformed shard-map files, duplicate registrations)."""


class ShardUnreachableError(FederationError):
    """Raised when a shard's warehouse cannot be opened. Query
    execution catches this and degrades to partial results; catalog
    administration surfaces it."""
