"""Nested-span tracing.

A :class:`Tracer` maintains a stack of open :class:`Span` objects.
Entering ``tracer.span("compile")`` opens a child of the innermost
open span; on exit the span records its wall-clock duration. Anything
that happens while a span is open — counter increments, SQL statement
records from :class:`~repro.obs.backend.InstrumentedBackend` — attaches
to that span, so the finished tree answers "where did the time go"
stage by stage.

Spans are plain data (no weak references, no globals); a finished span
tree can be kept on a :class:`~repro.results.resultset.QueryResult`,
exported to JSON, or rendered as text long after the tracer is gone.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class Span:
    """One timed region of the pipeline."""

    name: str
    start: float
    end: float | None = None
    meta: dict[str, object] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    #: SQL statements executed while this span was innermost
    statements: list = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def duration_ms(self) -> float:
        """Wall-clock milliseconds."""
        return self.duration_s * 1000.0

    def count(self, name: str, amount: int = 1) -> None:
        """Increment one of this span's counters."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (pre-order)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def total_counter(self, name: str) -> int:
        """Sum of one counter over this subtree."""
        return sum(span.counters.get(name, 0) for span in self.walk())

    def all_statements(self) -> list:
        """Every statement record in this subtree, pre-order."""
        return [record for span in self.walk()
                for record in span.statements]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_ms:.2f}ms, "
                f"{len(self.children)} children)")


class Tracer:
    """Produces span trees; one tracer serves one warehouse.

    Top-level spans (queries, loads) accumulate on :attr:`spans`;
    :meth:`record_statement` attaches backend activity to whatever span
    is innermost at the time. Statements executed while *no* span is
    open (ad-hoc catalog queries, for instance) land in a catch-all
    ``(untracked)`` span so nothing is silently dropped.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._untracked: Span | None = None

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Span]:
        """Open a span; nests under the current span when one is open."""
        span = Span(name=name, start=self.clock(), meta=dict(meta))
        parent = self.current
        if parent is not None:
            parent.children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self.clock()

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a counter on the current span; counts arriving
        while no span is open land in the ``(untracked)`` catch-all."""
        span = self.current
        if span is None:
            span = self._untracked_span()
        span.count(name, amount)

    def record_statement(self, record) -> None:
        """Attach one backend statement record to the current span."""
        span = self.current
        if span is None:
            span = self._untracked_span()
        span.statements.append(record)
        span.count("statements", getattr(record, "executions", 1))
        span.count("rows", record.row_count)

    def last_span(self, name: str | None = None) -> Span | None:
        """Most recent finished top-level span (optionally by name)."""
        for span in reversed(self.spans):
            if name is None or span.name == name:
                return span
        return None

    def _untracked_span(self) -> Span:
        if self._untracked is None:
            self._untracked = Span(name="(untracked)", start=self.clock())
            self.spans.append(self._untracked)
        return self._untracked
