"""Nested-span tracing.

A :class:`Tracer` maintains a stack of open :class:`Span` objects.
Entering ``tracer.span("compile")`` opens a child of the innermost
open span; on exit the span records its wall-clock duration. Anything
that happens while a span is open — counter increments, SQL statement
records from :class:`~repro.obs.backend.InstrumentedBackend` — attaches
to that span, so the finished tree answers "where did the time go"
stage by stage.

Spans are plain data (no weak references, no globals); a finished span
tree can be kept on a :class:`~repro.results.resultset.QueryResult`,
exported to JSON, or rendered as text long after the tracer is gone.
"""

from __future__ import annotations

import itertools
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: process-unique id sequence; the 4-hex prefix keeps trace ids from
#: two processes (e.g. test workers) from colliding in merged output
_ids = itertools.count(1)
_SEED = os.urandom(2).hex()

#: inbound request ids are honored only when they are short and safe to
#: echo into headers, logs, and Prometheus exemplars verbatim
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9_.:-]{1,64}$")


def new_span_id() -> str:
    """A process-unique span id (hex, constant width)."""
    return f"{next(_ids):012x}"


def new_trace_id() -> str:
    """A process-unique trace id (hex, constant width)."""
    return _SEED + f"{next(_ids):012x}"


@dataclass(frozen=True)
class TraceContext:
    """Propagatable identity of one request: which trace a piece of
    work belongs to and which span is its parent.

    Minted once per HTTP request by the service layer; handed across
    thread boundaries explicitly (worker pools cannot inherit the
    coordinator's thread-local span stack), and quoted in Prometheus
    exemplars and slow-query records so metrics, logs, and traces all
    share one id.
    """

    trace_id: str
    span_id: str = ""
    sampled: bool = True

    @classmethod
    def mint(cls, request_id: str | None = None,
             sampled: bool = True) -> "TraceContext":
        """Create a fresh context, honoring a caller-supplied request
        id as the trace id when it is safe to echo verbatim."""
        if request_id and _REQUEST_ID_RE.match(request_id):
            return cls(trace_id=request_id, sampled=sampled)
        return cls(trace_id=new_trace_id(), sampled=sampled)


@dataclass(slots=True)
class Span:
    """One timed region of the pipeline."""

    name: str
    start: float
    end: float | None = None
    meta: dict[str, object] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    #: SQL statements executed while this span was innermost
    statements: list = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)
    #: trace identity — every span in one request tree shares trace_id
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""
    #: ident of the thread that opened the span (Chrome trace lane)
    tid: int = 0

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def duration_ms(self) -> float:
        """Wall-clock milliseconds."""
        return self.duration_s * 1000.0

    def count(self, name: str, amount: int = 1) -> None:
        """Increment one of this span's counters."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (pre-order)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def total_counter(self, name: str) -> int:
        """Sum of one counter over this subtree."""
        return sum(span.counters.get(name, 0) for span in self.walk())

    def all_statements(self) -> list:
        """Every statement record in this subtree, pre-order."""
        return [record for span in self.walk()
                for record in span.statements]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_ms:.2f}ms, "
                f"{len(self.children)} children)")


class _SpanScope:
    """Hand-rolled context manager for one open span.

    ``tracer.span(...)`` is the hottest allocation on a traced query
    (several spans per query, always-on in the service), and a
    generator-based ``@contextmanager`` costs a few times this class's
    enter/exit — enough to show up in the observability-overhead
    guardrail."""

    __slots__ = ("_tracer", "_span", "_stack")

    def __init__(self, tracer: "Tracer", span: Span, stack: list):
        self._tracer = tracer
        self._span = span
        self._stack = stack

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._stack.pop()
        span = self._span
        tracer = self._tracer
        span.end = tracer.clock()
        statements = span.statements
        if statements:
            # statement counters are aggregated once per span close
            # instead of once per statement — the per-statement dict
            # updates were a measurable slice of the tracing overhead
            executions = rows = 0
            for record in statements:
                executions += record.executions
                rows += record.row_count
            counters = span.counters
            counters["statements"] = (counters.get("statements", 0)
                                      + executions)
            counters["rows"] = counters.get("rows", 0) + rows
        if tracer.metrics is not None:
            tracer._span_seconds(span.name).observe(span.end - span.start)
        return False


class Tracer:
    """Produces span trees; one tracer serves one warehouse.

    Top-level spans (queries, loads) accumulate on :attr:`spans`;
    :meth:`record_statement` attaches backend activity to whatever span
    is innermost at the time. Statements executed while *no* span is
    open (ad-hoc catalog queries, for instance) land in a catch-all
    ``(untracked)`` span so nothing is silently dropped.

    The open-span stack is **thread-local**: a span opened in a
    ``BulkLoadSession --workers`` thread nests under that thread's own
    spans (or becomes a top-level span), never under whatever the main
    thread happens to have open. The shared ``spans`` list and the
    per-thread catch-all spans are guarded by a lock.

    When :attr:`metrics` is set (a
    :class:`repro.obs.metrics.MetricsRegistry` — the warehouse wires
    this up when both tracing and metrics are active), every finished
    span also feeds the ``trace.span_seconds{span=...}`` histogram, so
    traces and the always-on metrics plane agree by construction.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 metrics=None, max_spans: int | None = None):
        self.clock = clock
        #: optional MetricsRegistry fed one sample per finished span
        self.metrics = metrics
        #: bound on retained top-level spans (None = unbounded); a
        #: long-running service must set this or ``spans`` grows with
        #: every request it serves
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        #: per-thread catch-all spans, so concurrent counts never race
        #: on one shared Span's dicts
        self._untracked_spans: list[Span] = []
        #: span name → live trace.span_seconds histogram handle; the
        #: per-name registry lookup (label key + registry lock) is too
        #: expensive to repeat on every span exit
        self._span_histograms: dict[str, object] = {}
        self._span_histogram_source = None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> TraceContext | None:
        """The calling thread's position in its trace, as a context
        that can be handed to another thread (or stamped on a log
        record). ``None`` when no span is open."""
        span = self.current
        if span is None:
            return None
        return TraceContext(trace_id=span.trace_id, span_id=span.span_id)

    def span(self, name: str, parent: Span | None = None,
             context: TraceContext | None = None,
             **meta) -> _SpanScope:
        """Open a span; nests under the calling thread's current span
        when one is open.

        ``parent`` attaches the span under an *explicit* parent even
        though that parent lives on another thread's stack — this is
        how scatter-gather and bulk-load worker threads join the
        coordinator's tree instead of starting orphaned trees of their
        own. ``context`` seeds a *root* span with an externally minted
        trace identity (the service layer's per-request
        :class:`TraceContext`); it is ignored unless this span starts a
        new tree on this thread. Roots without a context mint a fresh
        trace id, so every finished tree is addressable.
        """
        span = Span(name=name, start=self.clock(), meta=meta,
                    span_id=new_span_id(), tid=threading.get_ident())
        stack = self._stack()
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
            # list.append is atomic under the GIL, so worker threads
            # may attach to a shared parent without taking the lock
            parent.children.append(span)
        elif stack:
            top = stack[-1]
            span.trace_id = top.trace_id
            span.parent_id = top.span_id
            top.children.append(span)
        else:
            if context is not None:
                span.trace_id = context.trace_id
                span.parent_id = context.span_id
            else:
                # derive the root's trace id from its span id rather
                # than drawing (and formatting) a second counter value
                span.trace_id = _SEED + span.span_id
            with self._lock:
                self.spans.append(span)
                if (self.max_spans is not None
                        and len(self.spans) > self.max_spans):
                    del self.spans[:len(self.spans) - self.max_spans]
        stack.append(span)
        return _SpanScope(self, span, stack)

    def _span_seconds(self, name: str):
        """The live ``trace.span_seconds{span=name}`` handle, cached
        per name (and rebuilt if :attr:`metrics` is swapped out)."""
        if self.metrics is not self._span_histogram_source:
            self._span_histogram_source = self.metrics
            self._span_histograms = {}
        histogram = self._span_histograms.get(name)
        if histogram is None:
            histogram = self._span_histograms[name] = \
                self.metrics.histogram("trace.span_seconds", span=name)
        return histogram

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a counter on the current span; counts arriving
        while no span is open land in the ``(untracked)`` catch-all."""
        span = self.current
        if span is None:
            span = self._untracked_span()
        span.count(name, amount)

    def record_statement(self, record) -> None:
        """Attach one backend statement record to the current span.

        For open stack spans this is append-only — the ``statements``
        / ``rows`` counters are rolled up once when the span closes
        (see :class:`_SpanScope`). The catch-all ``(untracked)`` span
        has no close, so it counts eagerly."""
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].statements.append(record)
            return
        span = self._untracked_span()
        span.statements.append(record)
        span.count("statements", record.executions)
        span.count("rows", record.row_count)

    def last_span(self, name: str | None = None) -> Span | None:
        """Most recent finished top-level span (optionally by name)."""
        with self._lock:
            spans = list(self.spans)
        for span in reversed(spans):
            if name is None or span.name == name:
                return span
        return None

    def finish(self) -> None:
        """Close every still-open catch-all span (call before
        exporting — an open span's duration is meaningless, and JSON
        export renders open spans with ``duration_ms: null``)."""
        now = self.clock()
        with self._lock:
            for span in self._untracked_spans:
                if span.end is None:
                    span.end = now

    def _untracked_span(self) -> Span:
        span = getattr(self._local, "untracked", None)
        if span is None:
            span = Span(name="(untracked)", start=self.clock(),
                        span_id=new_span_id(), trace_id=new_trace_id(),
                        tid=threading.get_ident())
            self._local.untracked = span
            with self._lock:
                self.spans.append(span)
                self._untracked_spans.append(span)
        return span
