"""Nested-span tracing.

A :class:`Tracer` maintains a stack of open :class:`Span` objects.
Entering ``tracer.span("compile")`` opens a child of the innermost
open span; on exit the span records its wall-clock duration. Anything
that happens while a span is open — counter increments, SQL statement
records from :class:`~repro.obs.backend.InstrumentedBackend` — attaches
to that span, so the finished tree answers "where did the time go"
stage by stage.

Spans are plain data (no weak references, no globals); a finished span
tree can be kept on a :class:`~repro.results.resultset.QueryResult`,
exported to JSON, or rendered as text long after the tracer is gone.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class Span:
    """One timed region of the pipeline."""

    name: str
    start: float
    end: float | None = None
    meta: dict[str, object] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    #: SQL statements executed while this span was innermost
    statements: list = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def duration_ms(self) -> float:
        """Wall-clock milliseconds."""
        return self.duration_s * 1000.0

    def count(self, name: str, amount: int = 1) -> None:
        """Increment one of this span's counters."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (pre-order)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def total_counter(self, name: str) -> int:
        """Sum of one counter over this subtree."""
        return sum(span.counters.get(name, 0) for span in self.walk())

    def all_statements(self) -> list:
        """Every statement record in this subtree, pre-order."""
        return [record for span in self.walk()
                for record in span.statements]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_ms:.2f}ms, "
                f"{len(self.children)} children)")


class Tracer:
    """Produces span trees; one tracer serves one warehouse.

    Top-level spans (queries, loads) accumulate on :attr:`spans`;
    :meth:`record_statement` attaches backend activity to whatever span
    is innermost at the time. Statements executed while *no* span is
    open (ad-hoc catalog queries, for instance) land in a catch-all
    ``(untracked)`` span so nothing is silently dropped.

    The open-span stack is **thread-local**: a span opened in a
    ``BulkLoadSession --workers`` thread nests under that thread's own
    spans (or becomes a top-level span), never under whatever the main
    thread happens to have open. The shared ``spans`` list and the
    per-thread catch-all spans are guarded by a lock.

    When :attr:`metrics` is set (a
    :class:`repro.obs.metrics.MetricsRegistry` — the warehouse wires
    this up when both tracing and metrics are active), every finished
    span also feeds the ``trace.span_seconds{span=...}`` histogram, so
    traces and the always-on metrics plane agree by construction.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 metrics=None):
        self.clock = clock
        #: optional MetricsRegistry fed one sample per finished span
        self.metrics = metrics
        self.spans: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        #: per-thread catch-all spans, so concurrent counts never race
        #: on one shared Span's dicts
        self._untracked_spans: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Span]:
        """Open a span; nests under the calling thread's current span
        when one is open."""
        span = Span(name=name, start=self.clock(), meta=dict(meta))
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.spans.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.end = self.clock()
            if self.metrics is not None:
                self.metrics.observe("trace.span_seconds",
                                     span.end - span.start, span=name)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a counter on the current span; counts arriving
        while no span is open land in the ``(untracked)`` catch-all."""
        span = self.current
        if span is None:
            span = self._untracked_span()
        span.count(name, amount)

    def record_statement(self, record) -> None:
        """Attach one backend statement record to the current span."""
        span = self.current
        if span is None:
            span = self._untracked_span()
        span.statements.append(record)
        span.count("statements", getattr(record, "executions", 1))
        span.count("rows", record.row_count)

    def last_span(self, name: str | None = None) -> Span | None:
        """Most recent finished top-level span (optionally by name)."""
        with self._lock:
            spans = list(self.spans)
        for span in reversed(spans):
            if name is None or span.name == name:
                return span
        return None

    def finish(self) -> None:
        """Close every still-open catch-all span (call before
        exporting — an open span's duration is meaningless, and JSON
        export renders open spans with ``duration_ms: null``)."""
        now = self.clock()
        with self._lock:
            for span in self._untracked_spans:
                if span.end is None:
                    span.end = now

    def _untracked_span(self) -> Span:
        span = getattr(self._local, "untracked", None)
        if span is None:
            span = Span(name="(untracked)", start=self.clock())
            self._local.untracked = span
            with self._lock:
                self.spans.append(span)
                self._untracked_spans.append(span)
        return span
