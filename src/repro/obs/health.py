"""Warehouse health reporting.

The grid-services deployment sketched in PAPERS.md assumes each
warehouse node can answer "are you well?" without a human running
benchmarks. :func:`health_report` is that answer: structural sanity
checks over the generic schema (row counts that must agree, a keyword
index that must exist when there is text to index), plus per-source
freshness read from the always-on metrics plane (the
``hound.last_harvest_timestamp`` gauge every Data Hounds load sets).

Checks are deliberately portable SQL — plain ``COUNT(*)`` per table —
so the report works identically on SQLite and minidb, and cheap
enough to run from a liveness probe.
"""

from __future__ import annotations

import time
from typing import Callable

#: freshness beyond this is reported as stale (a monthly release
#: cadence with generous slack; tune per deployment)
DEFAULT_STALE_AFTER_S = 45 * 24 * 3600.0

OK = "ok"
WARN = "warn"
FAIL = "fail"

#: severity order for rolling individual checks up into one status
_STATUS_RANK = {OK: 0, WARN: 1, FAIL: 2}


def combine_statuses(statuses) -> str:
    """The worst status of an iterable (ok < warn < fail) — shared by
    the single-warehouse report and the federation roll-up, and what
    monitoring maps to exit codes (``xomatiq health``: 0/2/1)."""
    worst = OK
    for status in statuses:
        if _STATUS_RANK.get(status, _STATUS_RANK[WARN]) \
                > _STATUS_RANK[worst]:
            worst = status
    return worst


def health_report(warehouse, metrics=None,
                  stale_after_s: float = DEFAULT_STALE_AFTER_S,
                  clock: Callable[[], float] = time.time) -> dict:
    """Structural + freshness health of one warehouse.

    Returns a JSON-ready dict: an overall ``status``, the individual
    ``checks``, the per-table ``stats`` the checks were computed from,
    and per-source ``freshness`` (``age_s`` since the last harvest
    recorded in ``metrics``, which defaults to the warehouse's own
    registry).

    Statuses are three-valued so monitoring can tell a degraded
    warehouse from a broken one: structural checks that mean queries
    return *wrong or empty* answers (shredded rows missing for loaded
    documents, an empty keyword index over indexed text) report
    ``fail``; operational conditions the warehouse serves through
    (open breakers, quarantined entries, stale sources, nothing loaded
    yet) report ``warn``. The overall status is the worst check.
    """
    if metrics is None:
        metrics = getattr(warehouse, "metrics", None)
    stats = warehouse.stats()
    checks: list[dict] = []

    def check(name: str, healthy: bool, detail: str,
              severity: str = WARN) -> None:
        checks.append({"name": name,
                       "status": OK if healthy else severity,
                       "detail": detail})

    documents = stats.get("documents", 0)
    elements = stats.get("elements", 0)
    text_values = stats.get("text_values", 0)
    keywords = stats.get("keywords", 0)

    check("documents_present", documents > 0,
          f"{documents} documents loaded")
    check("elements_cover_documents",
          documents == 0 or elements >= documents,
          f"{elements} elements for {documents} documents"
          + ("" if documents == 0 or elements >= documents
             else " — shredded rows are missing"),
          severity=FAIL)
    check("keyword_index_populated",
          text_values == 0 or keywords > 0,
          f"{keywords} keyword rows for {text_values} text values"
          + ("" if text_values == 0 or keywords > 0
             else " — keyword index empty, contains() will find nothing"),
          severity=FAIL)
    check("text_anchored_to_elements",
          text_values <= max(elements, 1) * 64,
          f"{text_values} text values over {elements} elements")

    sources = sorted(key.split(":", 1)[1] for key in stats
                     if key.startswith("documents:"))
    check("sources_registered", True,
          f"{len(sources)} source(s): {', '.join(sources) or '(none)'}")

    freshness = _freshness(sources, metrics, stale_after_s, clock)
    for source, info in freshness.items():
        if info["age_s"] is None:
            detail = "no harvest recorded in this process"
            healthy = True   # an attached-to warehouse, not a fault
        else:
            healthy = info["age_s"] <= stale_after_s
            detail = (f"last harvest {info['age_s']:.0f}s ago"
                      + ("" if healthy else
                         f" (stale: > {stale_after_s:.0f}s)"))
        check(f"freshness:{source}", healthy, detail)

    resilience = _resilience(metrics)
    for source, state in resilience["breakers"].items():
        check(f"breaker:{source}", state != "open",
              f"circuit breaker {state}"
              + ("" if state != "open"
                 else " — fetches short-circuited until cooldown"))
    quarantined = resilience["quarantined"]
    total_quarantined = sum(quarantined.values())
    check("quarantine_empty", total_quarantined == 0,
          f"{total_quarantined} entries quarantined"
          + ("" if total_quarantined == 0 else " (" + ", ".join(
              f"{source}: {count}"
              for source, count in sorted(quarantined.items())) + ")"))

    status = combine_statuses(c["status"] for c in checks)
    return {"status": status, "checks": checks, "stats": stats,
            "freshness": freshness, "resilience": resilience}


def _freshness(sources, metrics, stale_after_s: float,
               clock: Callable[[], float]) -> dict:
    now = clock()
    out: dict[str, dict] = {}
    for source in sources:
        age = None
        if metrics is not None:
            last = metrics.get_gauge_value("hound.last_harvest_timestamp",
                                           source=source)
            if last:
                age = max(0.0, now - last)
        out[source] = {
            "age_s": round(age, 3) if age is not None else None,
            "stale": (age is not None and age > stale_after_s),
        }
    return out


def _resilience(metrics) -> dict:
    """Transport-resilience view: per-source breaker states (decoded
    from the ``transport.breaker_state`` gauge), quarantine counts, and
    the cumulative fetch-error / retry counters.  Empty dicts when the
    warehouse runs without metrics or no resilient transport is wired.
    """
    out = {"breakers": {}, "quarantined": {},
           "fetch_errors": {}, "retries": {}}
    if metrics is None:
        return out
    # lazy: obs must stay importable without the datahounds package
    from repro.datahounds.resilience import BREAKER_STATE_NAMES
    for labels, value in metrics.gauge_items("transport.breaker_state"):
        source = labels.get("source", "?")
        out["breakers"][source] = BREAKER_STATE_NAMES.get(
            int(value), f"state-{int(value)}")
    for name, key in (("hound.entries_quarantined", "quarantined"),
                      ("transport.fetch_errors", "fetch_errors"),
                      ("transport.retries", "retries")):
        for labels, value in metrics.counter_items(name):
            source = labels.get("source", "?")
            out[key][source] = out[key].get(source, 0) + int(value)
    return out


def format_health(report: dict) -> str:
    """Human-readable rendering of one health report."""
    lines = [f"health: {report['status'].upper()}"]
    for check in report["checks"]:
        marker = {OK: "+", FAIL: "x"}.get(check["status"], "!")
        lines.append(f"  [{marker}] {check['name']:<28} {check['detail']}")
    lines.append("tables:")
    for key, value in report["stats"].items():
        lines.append(f"  {key:<24} {value}")
    return "\n".join(lines)
