"""Instrumented backend wrapper.

:class:`InstrumentedBackend` sits between the warehouse and any
:class:`~repro.relational.backend.Backend` (SQLite or minidb) and
records, per statement: the SQL text, statement kind, parameter count,
result row count, wall-clock duration and — when enabled — the
engine's EXPLAIN output. Records flow into the active
:class:`~repro.obs.trace.Tracer` span, so a query's trace shows
exactly which SQL ran inside each pipeline stage.

The wrapper is dialect-agnostic: both backends expose ``explain()``
(SQLite prints ``EXPLAIN QUERY PLAN`` lines, minidb its executor's
plan notes), and everything else is delegated verbatim, including
backend-specific extras like ``analyze`` and ``last_plan``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.relational.backend import Backend, Params, Row


@dataclass
class StatementRecord:
    """One executed SQL statement (or one ``executemany`` batch)."""

    sql: str
    kind: str
    param_count: int
    row_count: int
    duration_s: float
    #: number of underlying statements (batch size for executemany)
    executions: int = 1
    #: captured EXPLAIN lines (empty unless plan capture is on)
    plan: tuple[str, ...] = ()
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        """Wall-clock milliseconds."""
        return self.duration_s * 1000.0


def statement_kind(sql: str) -> str:
    """First keyword of a statement (``SELECT``, ``INSERT``, ...)."""
    stripped = sql.lstrip()
    head = stripped.split(None, 1)[0] if stripped else ""
    return head.upper()


class InstrumentedBackend:
    """A :class:`Backend` that measures every statement it forwards."""

    def __init__(self, inner: Backend, tracer,
                 capture_explain: bool = False):
        self.inner = inner
        self.tracer = tracer
        self.capture_explain = capture_explain
        self._clock = time.perf_counter

    @property
    def name(self) -> str:
        """The wrapped engine's identifier (traces stay attributable)."""
        return self.inner.name

    # -- Backend protocol ---------------------------------------------------

    def execute(self, sql: str, params: Params = ()) -> list[Row]:
        """Forward one statement, recording text/params/rows/timing."""
        kind = statement_kind(sql)
        plan: tuple[str, ...] = ()
        if self.capture_explain and kind == "SELECT":
            plan = self._explain(sql, params)
        start = self._clock()
        rows = self.inner.execute(sql, params)
        duration = self._clock() - start
        self.tracer.record_statement(StatementRecord(
            sql=sql, kind=kind, param_count=len(tuple(params)),
            row_count=len(rows), duration_s=duration, plan=plan))
        return rows

    def executemany(self, sql: str, params_seq: Iterable[Params]) -> int:
        """Forward a batch, recorded as one entry with its batch size.

        The parameter iterable streams straight through to the backend
        (which may itself chunk it) — instrumentation must not be the
        layer that materializes a multi-million-row batch."""
        width = 0

        def watched(sequence):
            nonlocal width
            for params in sequence:
                if not width:
                    try:
                        width = len(params)
                    except TypeError:
                        width = len(tuple(params))
                yield params

        start = self._clock()
        count = self.inner.executemany(sql, watched(params_seq))
        duration = self._clock() - start
        self.tracer.record_statement(StatementRecord(
            sql=sql, kind=statement_kind(sql), param_count=width,
            row_count=0, duration_s=duration, executions=count))
        return count

    def commit(self) -> None:
        """Delegate; commits are not statements, so not recorded."""
        self.inner.commit()

    def close(self) -> None:
        """Delegate."""
        self.inner.close()

    def explain(self, sql: str, params: Params = ()) -> list[str]:
        """Delegate plan extraction to the wrapped engine."""
        return list(self._explain(sql, params))

    # -- extras -------------------------------------------------------------

    def __getattr__(self, name: str):
        """Backend-specific extras (``analyze``, ``last_plan``,
        ``catalog``...) pass straight through."""
        return getattr(self.inner, name)

    def _explain(self, sql: str, params: Params) -> tuple[str, ...]:
        explain = getattr(self.inner, "explain", None)
        if explain is None:
            return ()
        try:
            return tuple(explain(sql, params))
        except Exception as exc:  # plan capture must never fail a query
            return (f"(explain failed: {exc})",)
