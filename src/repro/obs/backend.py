"""Instrumented backend wrapper.

:class:`InstrumentedBackend` sits between the warehouse and any
:class:`~repro.relational.backend.Backend` (SQLite or minidb) and
records, per statement: the SQL text, statement kind, parameter count,
result row count, wall-clock duration and — when enabled — the
engine's EXPLAIN output. Records flow into the active
:class:`~repro.obs.trace.Tracer` span, so a query's trace shows
exactly which SQL ran inside each pipeline stage.

The wrapper is dialect-agnostic: both backends expose ``explain()``
(SQLite prints ``EXPLAIN QUERY PLAN`` lines, minidb its executor's
plan notes), and everything else is delegated verbatim, including
backend-specific extras like ``analyze`` and ``last_plan``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.relational.backend import Backend, Params, Row


@dataclass(slots=True)
class StatementRecord:
    """One executed SQL statement (or one ``executemany`` batch).

    Slotted and allocation-lean: one of these is created per SQL
    statement on a traced warehouse, which is the hottest allocation
    site in the observability plane."""

    sql: str
    kind: str
    param_count: int
    row_count: int
    duration_s: float
    #: number of underlying statements (batch size for executemany)
    executions: int = 1
    #: captured EXPLAIN lines (empty unless plan capture is on)
    plan: tuple[str, ...] = ()
    extra: dict[str, object] | None = None

    @property
    def duration_ms(self) -> float:
        """Wall-clock milliseconds."""
        return self.duration_s * 1000.0


def statement_kind(sql: str) -> str:
    """First keyword of a statement (``SELECT``, ``INSERT``, ...)."""
    stripped = sql.lstrip()
    head = stripped.split(None, 1)[0] if stripped else ""
    return head.upper()


class InstrumentedBackend:
    """A :class:`Backend` that measures every statement it forwards.

    Two independent sinks, either or both active:

    * ``tracer`` — every statement becomes a :class:`StatementRecord`
      on the innermost span (the PR-1 tracing behaviour),
    * ``metrics`` — per-kind statement counters and latency histograms
      in a :class:`repro.obs.metrics.MetricsRegistry`; this is the
      always-on path, so handles are cached per SQL text and each
      statement costs two clock reads plus one fused locked update
      (:class:`repro.obs.metrics.StatementTimer`).
    """

    def __init__(self, inner: Backend, tracer=None,
                 capture_explain: bool = False, metrics=None):
        self.inner = inner
        self.tracer = tracer
        self.metrics = metrics
        self.capture_explain = capture_explain
        self._clock = time.perf_counter
        #: kind → fused StatementTimer (statements/rows/latency)
        self._kind_handles: dict = {}
        #: sql text → (kind, timer) — compiled SQL strings are reused
        #: across calls (the compiled-query cache hands back the same
        #: objects), so the hot path is one dict hit instead of
        #: re-deriving the kind every statement
        self._sql_handles: dict = {}

    @property
    def name(self) -> str:
        """The wrapped engine's identifier (traces stay attributable)."""
        return self.inner.name

    def _handles(self, kind: str):
        timer = self._kind_handles.get(kind)
        if timer is None:
            timer = self._kind_handles[kind] = (
                self.metrics.statement_timer(kind))
        return timer

    # -- Backend protocol ---------------------------------------------------

    def _sql_entry(self, sql: str):
        kind = statement_kind(sql)
        timer = self._handles(kind) if self.metrics is not None else None
        entry = (kind, timer)
        if len(self._sql_handles) < 4096:   # bound ad-hoc SQL growth
            self._sql_handles[sql] = entry
        return entry

    def execute(self, sql: str, params: Params = ()) -> list[Row]:
        """Forward one statement, recording text/params/rows/timing."""
        entry = self._sql_handles.get(sql)
        if entry is None:
            entry = self._sql_entry(sql)
        kind, timer = entry
        plan: tuple[str, ...] = ()
        if self.capture_explain and kind == "SELECT":
            plan = self._explain(sql, params)
        clock = self._clock
        start = clock()
        rows = self.inner.execute(sql, params)
        duration = clock() - start
        if timer is not None:
            timer.record(len(rows), duration)
        if self.tracer is not None:
            try:
                param_count = len(params)
            except TypeError:
                param_count = len(tuple(params))
            # positional construction: this runs once per statement
            self.tracer.record_statement(StatementRecord(
                sql, kind, param_count, len(rows), duration, 1, plan))
        return rows

    def executemany(self, sql: str, params_seq: Iterable[Params]) -> int:
        """Forward a batch, recorded as one entry with its batch size.

        The parameter iterable streams straight through to the backend
        (which may itself chunk it) — instrumentation must not be the
        layer that materializes a multi-million-row batch."""
        width = 0

        def watched(sequence):
            nonlocal width
            for params in sequence:
                if not width:
                    try:
                        width = len(params)
                    except TypeError:
                        width = len(tuple(params))
                yield params

        kind = statement_kind(sql)
        start = self._clock()
        count = self.inner.executemany(sql, watched(params_seq))
        duration = self._clock() - start
        if self.metrics is not None:
            self._handles(kind).record(0, duration, executions=count)
        if self.tracer is not None:
            self.tracer.record_statement(StatementRecord(
                sql=sql, kind=kind, param_count=width,
                row_count=0, duration_s=duration, executions=count))
        return count

    def commit(self) -> None:
        """Delegate; commits are not statements, so not recorded."""
        self.inner.commit()

    def close(self) -> None:
        """Delegate."""
        self.inner.close()

    def explain(self, sql: str, params: Params = ()) -> list[str]:
        """Delegate plan extraction to the wrapped engine."""
        return list(self._explain(sql, params))

    # -- extras -------------------------------------------------------------

    def __getattr__(self, name: str):
        """Backend-specific extras (``analyze``, ``last_plan``,
        ``catalog``...) pass straight through."""
        return getattr(self.inner, name)

    def _explain(self, sql: str, params: Params) -> tuple[str, ...]:
        explain = getattr(self.inner, "explain", None)
        if explain is None:
            return ()
        try:
            return tuple(explain(sql, params))
        except Exception as exc:  # plan capture must never fail a query
            return (f"(explain failed: {exc})",)
