"""JSON export of traces and profiles.

Schema (documented in docs/observability.md)::

    span = {
      "name": str, "duration_ms": float,
      "span_id": str, "parent_id": str, "trace_id": str,
      "start_ms": float,  # offset from the root of the exported tree
      "meta": {...}, "counters": {"statements": int, "rows": int, ...},
      "statements": [
        {"sql": str, "kind": "SELECT", "param_count": int,
         "row_count": int, "duration_ms": float, "executions": int,
         "plan": [str, ...]},
      ],
      "children": [span, ...],
    }

    profile file = {
      "format": "xomatiq-profile/1",
      "profiles": [
        {"backend": "sqlite", "query": str, "rows": int,
         "stages": {"parse": ms, ..., "execute": ms},
         "sql_statements": int, "sql_rows": int, "sql_ms": float,
         "trace": span},
      ],
    }

``benchmarks/summarize.py`` consumes the profile file and prints the
per-stage breakdown next to the benchmark tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import ProfileReport
    from repro.obs.trace import Span

#: format tag written into every exported profile file
PROFILE_FORMAT = "xomatiq-profile/1"


def span_to_dict(span: "Span", origin: float | None = None) -> dict:
    """One span (and its subtree) as JSON-ready data.

    A span that was never closed (``end is None``) renders with
    ``duration_ms: null`` — an honest "unknown", not a fake 0.0.
    ``start_ms`` is the offset from the root of the exported tree
    (absolute monotonic-clock readings are meaningless off-process),
    which is what the waterfall renderer and Chrome export need.
    """
    if origin is None:
        origin = span.start
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "trace_id": span.trace_id,
        "start_ms": round((span.start - origin) * 1000.0, 4),
        "duration_ms": (round(span.duration_ms, 4)
                        if span.end is not None else None),
        "meta": {key: _jsonable(value)
                 for key, value in span.meta.items()},
        "counters": dict(span.counters),
        "statements": [_statement_to_dict(record)
                       for record in span.statements],
        "children": [span_to_dict(child, origin)
                     for child in span.children],
    }


def trace_to_json(span: "Span", indent: int | None = 2) -> str:
    """One span tree serialized to a JSON string."""
    return json.dumps(span_to_dict(span), indent=indent)


def tracer_to_dicts(tracer) -> list[dict]:
    """Every top-level span of a tracer, exported. Closes the
    catch-all ``(untracked)`` spans first so their durations are real
    instead of perpetually-open garbage."""
    tracer.finish()
    return [span_to_dict(span) for span in tracer.spans]


def profile_to_dict(report: "ProfileReport") -> dict:
    """One profile run as JSON-ready data (with stage rollup)."""
    root = report.trace
    return {
        "backend": report.backend,
        "query": report.query,
        "rows": report.rows,
        "stages": {child.name: round(child.duration_ms, 4)
                   for child in root.children},
        "sql_statements": root.total_counter("statements"),
        "sql_rows": root.total_counter("rows"),
        "sql_ms": round(sum(record.duration_ms
                            for record in root.all_statements()), 4),
        "trace": span_to_dict(root),
    }


def export_profiles(reports: Iterable["ProfileReport"],
                    path: str | Path) -> dict:
    """Write a profile file; returns the written payload."""
    payload = {
        "format": PROFILE_FORMAT,
        "profiles": [profile_to_dict(report) for report in reports],
    }
    Path(path).write_text(json.dumps(payload, indent=2),
                          encoding="utf-8")
    return payload


def _statement_to_dict(record) -> dict:
    return {
        "sql": record.sql,
        "kind": record.kind,
        "param_count": record.param_count,
        "row_count": record.row_count,
        "duration_ms": round(record.duration_ms, 4),
        "executions": record.executions,
        "plan": list(record.plan),
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
