"""Bounded retention of finished request traces.

A :class:`TraceStore` is the service-side answer to "which request was
that?": a thread-safe ring buffer of finished span trees keyed by trace
id. Retention is deliberately two-tiered:

* **Head sampling** — a deterministic per-trace coin flip (hash of the
  trace id against ``sample_rate``) decides whether a routine trace is
  kept. Deterministic means the same trace id always gets the same
  verdict, so retried requests with a caller-supplied ``X-Request-Id``
  are either all kept or all dropped — no flapping.
* **Tail keep** — slow traces (root duration over ``slow_ms``) and
  error traces (5xx or an exception) are *always* kept, overriding the
  head decision. The traces you need most are exactly the ones random
  sampling is most likely to lose.

The ring is bounded (FIFO eviction), so a service can run forever with
a fixed memory budget. Exported formats:

* ``trace_to_dict`` — the ``xomatiq-trace/1`` JSON served by
  ``GET /traces/{id}`` (span schema from :mod:`repro.obs.export`).
* ``chrome_trace`` — Chrome ``trace_event`` JSON loadable in
  ``about:tracing`` or https://ui.perfetto.dev; spans become complete
  ("X") events on one lane per worker thread.
* ``format_trace`` — a text waterfall for ``xomatiq trace show``.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.export import span_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Span

#: format tag on every served trace payload
TRACE_FORMAT = "xomatiq-trace/1"


@dataclass
class TraceRecord:
    """One retained trace: the root span plus request-level identity
    that lives outside the span tree (HTTP status, wall-clock time)."""

    trace_id: str
    root: "Span"
    request_id: str = ""
    endpoint: str = ""
    status: int | None = None
    error: bool = False
    #: why the store kept it: "sampled", "slow", or "error"
    kept: str = "sampled"
    #: wall-clock epoch seconds at admission (root.start is monotonic)
    ts: float = field(default_factory=time.time)

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.root.walk())


class TraceStore:
    """Thread-safe bounded ring of finished traces.

    ``offer`` is called once per request with the finished root span;
    the store decides keep-or-drop and evicts the oldest record when
    full. Lookups are by trace id; iteration is newest-first (the
    trace you are hunting is almost always recent).
    """

    def __init__(self, capacity: int = 256, sample_rate: float = 1.0,
                 slow_ms: float = 500.0):
        if capacity < 1:
            raise ValueError("TraceStore capacity must be >= 1")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.slow_ms = slow_ms
        self._records: OrderedDict[str, TraceRecord] = OrderedDict()
        self._lock = threading.Lock()
        #: admission tallies, exposed in ``GET /traces`` so the reader
        #: knows how much the sampler threw away
        self.offered = 0
        self.kept = 0

    def sampled(self, trace_id: str) -> bool:
        """Deterministic head-sampling verdict for one trace id."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        bucket = zlib.crc32(trace_id.encode("utf-8")) / 0xFFFFFFFF
        return bucket < self.sample_rate

    def offer(self, root: "Span", request_id: str = "",
              endpoint: str = "", status: int | None = None,
              error: bool = False) -> TraceRecord | None:
        """Admit one finished trace; returns the record if kept."""
        slow = root.end is not None and root.duration_ms >= self.slow_ms
        is_error = error or (status is not None and status >= 500)
        if is_error:
            kept = "error"
        elif slow:
            kept = "slow"
        elif self.sampled(root.trace_id):
            kept = "sampled"
        else:
            kept = ""
        with self._lock:
            self.offered += 1
            if not kept:
                return None
            self.kept += 1
            record = TraceRecord(trace_id=root.trace_id, root=root,
                                 request_id=request_id,
                                 endpoint=endpoint, status=status,
                                 error=is_error, kept=kept)
            # same trace id twice (caller reused a request id): the
            # newer trace wins, matching "last write" intuition
            self._records.pop(root.trace_id, None)
            self._records[root.trace_id] = record
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)
            return record

    def get(self, trace_id: str) -> TraceRecord | None:
        with self._lock:
            return self._records.get(trace_id)

    def records(self, limit: int | None = None) -> list[TraceRecord]:
        """Retained traces, newest first."""
        with self._lock:
            records = list(reversed(self._records.values()))
        return records[:limit] if limit is not None else records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def trace_summary(record: TraceRecord) -> dict:
    """One line of ``GET /traces``: enough to pick a trace, no tree."""
    return {
        "trace_id": record.trace_id,
        "request_id": record.request_id,
        "endpoint": record.endpoint,
        "status": record.status,
        "error": record.error,
        "kept": record.kept,
        "ts": round(record.ts, 3),
        "duration_ms": round(record.duration_ms, 3),
        "spans": record.span_count,
        "root": record.root.name,
    }


def trace_to_dict(record: TraceRecord) -> dict:
    """Full trace payload served by ``GET /traces/{id}``."""
    return {
        "format": TRACE_FORMAT,
        "trace_id": record.trace_id,
        "request_id": record.request_id,
        "endpoint": record.endpoint,
        "status": record.status,
        "error": record.error,
        "kept": record.kept,
        "ts": round(record.ts, 3),
        "duration_ms": round(record.duration_ms, 3),
        "root": span_to_dict(record.root),
    }


def _arg(value) -> object:
    """Chrome trace args must be JSON primitives; anything exotic (an
    exception object, a Path) degrades to its string form."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def chrome_trace(record: TraceRecord) -> dict:
    """The trace as Chrome ``trace_event`` JSON (about:tracing /
    Perfetto). Each span is a complete ("X") event; timestamps are
    microseconds relative to the root, one ``tid`` lane per thread."""
    root = record.root
    events: list[dict] = []
    tids: dict[int, int] = {}
    for span in root.walk():
        # stable small lane numbers in tree order: lane 1 is the
        # request thread, workers get 2, 3, ... as they appear
        tid = tids.setdefault(span.tid, len(tids) + 1)
        end = span.end if span.end is not None else span.start
        args: dict[str, object] = dict(span.meta)
        args.update({f"counter.{k}": v for k, v in span.counters.items()})
        if span.statements:
            args["sql.statements"] = sum(
                getattr(r, "executions", 1) for r in span.statements)
            args["sql.ms"] = round(sum(r.duration_ms
                                       for r in span.statements), 3)
        events.append({
            "name": span.name,
            "cat": "xomatiq",
            "ph": "X",
            "ts": round((span.start - root.start) * 1e6, 1),
            "dur": round((end - span.start) * 1e6, 1),
            "pid": 1,
            "tid": tid,
            "args": {k: _arg(v) for k, v in args.items()},
        })
    for ident, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": ("request" if tid == 1
                              else f"worker-{ident}")},
        })
    return {
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": record.trace_id,
                      "request_id": record.request_id,
                      "endpoint": record.endpoint},
        "traceEvents": events,
    }


#: span attributes surfaced on waterfall rows, in display order
_WATERFALL_META = ("shard", "endpoint", "status", "semijoin", "backend")
_WATERFALL_COUNTERS = ("rows_shipped", "cache.hit", "cache.miss",
                       "statements", "rows")


def format_trace(trace: dict, width: int = 32) -> str:
    """Render a served trace dict as a span-tree waterfall.

    Works off the JSON payload (not live ``Span`` objects) so the CLI
    can render traces fetched over HTTP. Each row shows a proportional
    time bar, duration, and the load-bearing attributes: shard, rows
    shipped, cache hit/miss, semi-join mode, SQL statement timings.
    """
    root = trace["root"]
    total = root.get("duration_ms") or 0.0
    lines = [
        f"trace {trace['trace_id']}  request_id={trace['request_id'] or '-'}"
        f"  endpoint={trace.get('endpoint') or '-'}"
        f"  status={trace.get('status')}"
        f"  kept={trace.get('kept')}  {total:.1f}ms",
    ]

    def bar(start_ms: float, duration_ms: float) -> str:
        if total <= 0.0:
            return " " * width
        lead = int(width * start_ms / total)
        body = max(1, int(width * duration_ms / total))
        lead = min(lead, width - 1)
        body = min(body, width - lead)
        return " " * lead + "▇" * body + " " * (width - lead - body)

    def render(span: dict, depth: int) -> None:
        duration = span.get("duration_ms")
        shown = duration if duration is not None else 0.0
        attrs = []
        for key in _WATERFALL_META:
            if key in span.get("meta", {}):
                attrs.append(f"{key}={span['meta'][key]}")
        for key in _WATERFALL_COUNTERS:
            if key in span.get("counters", {}):
                attrs.append(f"{key}={span['counters'][key]}")
        statements = span.get("statements") or []
        if statements:
            sql_ms = sum(s["duration_ms"] for s in statements)
            attrs.append(f"sql={sql_ms:.1f}ms")
        label = "  " * depth + span["name"]
        duration_text = (f"{duration:8.2f}ms" if duration is not None
                         else "    openms")
        lines.append(f"|{bar(span.get('start_ms', 0.0), shown)}| "
                     f"{duration_text}  {label}"
                     + (f"  [{', '.join(attrs)}]" if attrs else ""))
        for child in span.get("children", []):
            render(child, depth + 1)

    render(root, 0)
    return "\n".join(lines)
