"""Observability: structured tracing and metrics for the whole stack.

The paper's authors tuned XomatiQ "by meticulous analysis of query
plans"; that workflow needs the pipeline to stop being a black box.
This package provides it:

* :mod:`repro.obs.trace` — :class:`Tracer` producing nested
  :class:`Span` trees with wall-clock timings and counters,
* :mod:`repro.obs.backend` — :class:`InstrumentedBackend`, a
  transparent wrapper over any relational backend that records every
  SQL statement (text, parameter count, row count, timing, optional
  EXPLAIN plan) into the active span,
* :mod:`repro.obs.profile` — one-shot query profiling
  (:func:`profile_query`, :class:`ProfileReport`) and text rendering,
* :mod:`repro.obs.export` — JSON export of traces and profiles
  (consumed by ``benchmarks/summarize.py``).

Instrumentation is strictly opt-in: ``Warehouse(trace=None)`` (the
default) allocates no tracer and adds no indirection to the hot path.
"""

from repro.obs.backend import InstrumentedBackend, StatementRecord
from repro.obs.export import (
    export_profiles,
    profile_to_dict,
    span_to_dict,
    trace_to_json,
)
from repro.obs.profile import ProfileReport, format_profile, profile_query
from repro.obs.trace import Span, Tracer

__all__ = [
    "InstrumentedBackend",
    "ProfileReport",
    "Span",
    "StatementRecord",
    "Tracer",
    "export_profiles",
    "format_profile",
    "profile_query",
    "profile_to_dict",
    "span_to_dict",
    "trace_to_json",
]
