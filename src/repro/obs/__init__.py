"""Observability: tracing, always-on metrics, events, and health.

The paper's authors tuned XomatiQ "by meticulous analysis of query
plans"; that workflow needs the pipeline to stop being a black box.
This package provides it:

* :mod:`repro.obs.trace` — :class:`Tracer` producing nested
  :class:`Span` trees with wall-clock timings and counters,
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (thread-safe
  counters, gauges, fixed-bucket latency histograms with p50/p95/p99),
  JSON snapshots and Prometheus text exposition; cheap enough that it
  is **on by default** in every :class:`~repro.engine.Warehouse`,
* :mod:`repro.obs.events` — :class:`EventLog`, a structured JSON-lines
  ring buffer with severity levels, and :class:`SlowQueryLog`, which
  captures query text + compiled SQL + EXPLAIN for any query over a
  configurable threshold,
* :mod:`repro.obs.health` — :func:`health_report`, row-count and
  keyword-index sanity checks plus per-source harvest freshness,
* :mod:`repro.obs.backend` — :class:`InstrumentedBackend`, a
  transparent wrapper over any relational backend that records every
  SQL statement into the active span and/or the metrics registry,
* :mod:`repro.obs.profile` — one-shot query profiling
  (:func:`profile_query`, :class:`ProfileReport`) and text rendering,
* :mod:`repro.obs.export` — JSON export of traces and profiles
  (consumed by ``benchmarks/summarize.py``),
* :mod:`repro.obs.tracestore` — :class:`TraceStore`, a bounded ring of
  finished request traces with head sampling plus tail-based keep for
  slow and error traces, Chrome ``trace_event`` export, and the
  ``xomatiq trace show`` waterfall renderer.

Span *tracing* remains opt-in (``Warehouse(trace=True)``); the metrics
plane and slow-query log are always on and can be disabled with
``Warehouse(metrics=False)``. When both are active, every finished
span automatically feeds the ``trace.span_seconds`` histogram.
"""

from repro.obs.backend import InstrumentedBackend, StatementRecord
from repro.obs.events import Event, EventLog, SlowQueryLog, SlowQueryRecord
from repro.obs.export import (
    export_profiles,
    profile_to_dict,
    span_to_dict,
    trace_to_json,
    tracer_to_dicts,
)
from repro.obs.health import format_health, health_report
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    default_registry,
    resolve_metrics,
)
from repro.obs.profile import ProfileReport, format_profile, profile_query
from repro.obs.trace import Span, TraceContext, Tracer
from repro.obs.tracestore import (
    TraceRecord,
    TraceStore,
    chrome_trace,
    format_trace,
    trace_summary,
    trace_to_dict,
)

__all__ = [
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "InstrumentedBackend",
    "MetricsRegistry",
    "NullMetrics",
    "ProfileReport",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "StatementRecord",
    "TraceContext",
    "TraceRecord",
    "TraceStore",
    "Tracer",
    "chrome_trace",
    "default_registry",
    "export_profiles",
    "format_health",
    "format_profile",
    "format_trace",
    "health_report",
    "profile_query",
    "profile_to_dict",
    "resolve_metrics",
    "span_to_dict",
    "trace_summary",
    "trace_to_dict",
    "trace_to_json",
    "tracer_to_dicts",
]
