"""One-shot query profiling.

:func:`profile_query` runs the full pipeline — parse, check, compile,
execute (with per-statement backend recording), tag — against any
warehouse, whether or not it was constructed with tracing, and returns
a :class:`ProfileReport`. The warehouse's backend is swapped for an
instrumented wrapper only for the duration of the call, so profiling a
production warehouse adds no permanent overhead.

This is the engine behind ``xomatiq profile`` and
``reproduce.py --profile``; :func:`format_profile` renders the report
the way the paper's authors read Oracle's plans — stage timings first,
then every statement with its plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.backend import InstrumentedBackend
from repro.obs.trace import Span, Tracer
from repro.results.resultset import QueryResult


@dataclass
class ProfileReport:
    """Everything one profiled query run produced."""

    query: str
    backend: str
    trace: Span
    result: QueryResult

    @property
    def rows(self) -> int:
        """Result row count."""
        return len(self.result)

    @property
    def stages(self) -> dict[str, float]:
        """Stage name → milliseconds (top-level pipeline stages)."""
        return {child.name: child.duration_ms
                for child in self.trace.children}

    def statement_count(self) -> int:
        """SQL statements executed across the whole run."""
        return self.trace.total_counter("statements")


def profile_query(warehouse, text: str,
                  explain: bool = True) -> ProfileReport:
    """Profile one query against ``warehouse``.

    ``explain=True`` additionally captures the engine's plan for every
    SELECT (costs an extra planner pass per statement — and on minidb a
    full extra execution — so benchmarks should pass ``False``).
    """
    from repro.translator.execute import execute_compiled

    tracer = Tracer()
    inner = warehouse.backend
    if isinstance(inner, InstrumentedBackend):
        inner = inner.inner
    instrumented = InstrumentedBackend(inner, tracer,
                                       capture_explain=explain)
    original = warehouse.backend
    warehouse.backend = instrumented
    try:
        with tracer.span("query", query=text,
                         backend=instrumented.name) as root:
            # cache-aware: a warm compiled-query cache shows up here as
            # a `cache.hit` counter on the root span (and the absence
            # of parse/check/compile stages) — the amortization the
            # repeated-query benchmarks measure
            compiled = warehouse.xomatiq.translate_in_spans(
                text, tracer, root)
            with tracer.span("execute") as execute_span:
                result = execute_compiled(compiled, instrumented,
                                          tracer=tracer)
                execute_span.count("result_rows", len(result))
            with tracer.span("tag"):
                result.to_xml()
    finally:
        warehouse.backend = original
    result.trace = root
    return ProfileReport(query=text, backend=instrumented.name,
                         trace=root, result=result)


def format_profile(report: ProfileReport, sql: bool = True,
                   max_statements: int | None = None) -> str:
    """Human-readable rendering of one profile."""
    lines = [f"profile [{report.backend}]: {report.rows} rows, "
             f"{report.trace.duration_ms:.2f} ms total"]
    lines.append("stages:")
    for child in report.trace.children:
        _render_span(child, lines, indent=1)
    if sql:
        statements = report.trace.all_statements()
        if max_statements is not None:
            shown = statements[:max_statements]
        else:
            shown = statements
        total_ms = sum(record.duration_ms for record in statements)
        lines.append(f"sql: {len(statements)} statement(s), "
                     f"{total_ms:.2f} ms")
        for index, record in enumerate(shown, 1):
            lines.append(
                f"  [{index}] {record.kind} x{record.executions} "
                f"params={record.param_count} rows={record.row_count} "
                f"{record.duration_ms:.2f} ms")
            for sql_line in record.sql.splitlines():
                lines.append(f"      {sql_line}")
            for plan_line in record.plan:
                lines.append(f"      plan: {plan_line}")
        if len(shown) < len(statements):
            lines.append(f"  ... {len(statements) - len(shown)} more")
    return "\n".join(lines)


def _render_span(span: Span, lines: list[str], indent: int) -> None:
    pad = "  " * indent
    counters = " ".join(f"{key}={value}"
                        for key, value in sorted(span.counters.items()))
    suffix = f"   {counters}" if counters else ""
    lines.append(f"{pad}{span.name:<12} {span.duration_ms:>9.2f} ms"
                 f"{suffix}")
    for child in span.children:
        _render_span(child, lines, indent + 1)
