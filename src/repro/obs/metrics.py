"""Always-on metrics: counters, gauges, fixed-bucket histograms.

The paper's authors tuned XomatiQ "by meticulous analysis of query
plans" — a one-shot activity. A warehouse serving standing queries and
periodic Data Hounds refreshes needs the *continuous* counterpart: a
metrics plane that is always on, cheap enough that nobody turns it
off, and readable by both humans (``xomatiq metrics``) and scrapers
(Prometheus text exposition).

Three metric kinds, all thread-safe:

* :class:`Counter` — monotonically increasing (``inc``),
* :class:`Gauge` — a settable last-value (``set``/``inc``),
* :class:`Histogram` — fixed upper-bound buckets with running
  count/sum; p50/p95/p99 are interpolated from the bucket counts at
  read time, so ``observe()`` on the hot path is one bisect plus two
  adds.

A :class:`MetricsRegistry` names metrics and their label sets;
:func:`default_registry` holds the process-wide instance every
component records into unless handed another one. Disabling is
explicit: ``Warehouse(metrics=False)`` swaps in :class:`NullMetrics`,
whose methods are no-ops.

Costs (the guardrail in ``benchmarks/metrics_overhead.py`` pins the
end-to-end number under 5%): a counter ``inc`` through the registry is
one dict lookup + one locked add; hot paths that run per SQL statement
cache the metric handle instead and skip the lookup.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Iterable, Mapping

#: default histogram upper bounds — latencies in seconds, Prometheus'
#: conventional spacing widened at the top for load/harvest timings
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: upper bounds for size-like histograms (documents per batch, bytes)
SIZE_BUCKETS = (1, 8, 64, 256, 1_024, 8_192, 65_536, 524_288,
                4_194_304, 33_554_432)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (sizes, timestamps)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Shift the current value."""
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram with running count and sum.

    ``observe`` is the hot-path entry: bisect into ``bounds`` (upper
    bucket edges, ascending; everything above the last edge lands in
    the implicit ``+Inf`` bucket) and bump that bucket, the count and
    the sum under one short lock.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "sum", "exemplars", "_lock")

    def __init__(self, name: str, labels: LabelItems = (),
                 buckets: Iterable[float] | None = None):
        self.name = name
        self.labels = labels
        self.bounds = tuple(buckets) if buckets else DEFAULT_BUCKETS
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram buckets must be ascending")
        #: one slot per bound plus the +Inf overflow slot
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        #: per-bucket latest exemplar ``(trace_id, value, epoch_s)``,
        #: allocated lazily — histograms that never see an exemplar
        #: (the per-statement hot path) pay nothing
        self.exemplars: list[tuple[str, float, float] | None] | None = None
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one sample; ``exemplar`` is the trace id of the
        request this sample came from — the latest one per bucket is
        kept and rendered in the Prometheus exposition, linking a
        latency bucket to a retained trace."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value
            if exemplar is not None:
                if self.exemplars is None:
                    self.exemplars = [None] * len(self.bucket_counts)
                self.exemplars[index] = (exemplar, value, time.time())

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0 < q <= 1), linearly interpolated
        inside the bucket the quantile falls in. Empty histograms
        report 0.0; samples beyond the last bound report that bound
        (the histogram cannot see further)."""
        with self._lock:
            total = self.count
            cumulative = 0
            if total == 0:
                return 0.0
            rank = q * total
            for index, bucket_count in enumerate(self.bucket_counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if index >= len(self.bounds):
                        return float(self.bounds[-1])
                    upper = self.bounds[index]
                    lower = self.bounds[index - 1] if index else 0.0
                    into = (rank - (cumulative - bucket_count)) / bucket_count
                    return lower + (upper - lower) * into
        return float(self.bounds[-1])

    def percentiles(self) -> dict[str, float]:
        """The operator's trio: p50/p95/p99."""
        return {"p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}


class StatementTimer:
    """Fused hot-path handle: statements counter + rows counter +
    latency histogram updated under **one** lock per call.

    The instrumented backend records three facts for every SQL
    statement; three independent metric locks would triple the
    acquisition cost on the hottest path in the system. The registry
    creates the trio with a single shared lock (see
    :meth:`MetricsRegistry.statement_timer`), so the per-statement
    price is one bisect and one locked five-field update. The three
    metrics remain ordinary registry citizens — snapshots and the
    Prometheus renderer see them like any other counter/histogram.
    """

    __slots__ = ("statements", "rows", "seconds", "_lock")

    def __init__(self, statements: Counter, rows: Counter,
                 seconds: Histogram, lock: threading.Lock):
        self.statements = statements
        self.rows = rows
        self.seconds = seconds
        self._lock = lock

    def record(self, row_count: int, duration_s: float,
               executions: int = 1) -> None:
        """One statement (or one ``executemany`` batch of
        ``executions`` statements) that returned ``row_count`` rows."""
        seconds = self.seconds
        index = bisect_left(seconds.bounds, duration_s)
        with self._lock:
            self.statements.value += executions
            self.rows.value += row_count
            seconds.bucket_counts[index] += 1
            seconds.count += 1
            seconds.sum += duration_s


class QueryTimer:
    """Fused per-query handle, same idea as :class:`StatementTimer`:
    the ``query.total`` / ``query.cache_hits`` / ``query.cache_misses``
    / ``query.seconds`` / ``query.result_rows`` quintet updated under
    one lock per finished query instead of four."""

    __slots__ = ("total", "hits", "misses", "seconds", "result_rows",
                 "_lock")

    def __init__(self, total: Counter, hits: Counter, misses: Counter,
                 seconds: Histogram, result_rows: Counter,
                 lock: threading.Lock):
        self.total = total
        self.hits = hits
        self.misses = misses
        self.seconds = seconds
        self.result_rows = result_rows
        self._lock = lock

    def record(self, cache_hit: bool, duration_s: float,
               rows: int) -> None:
        """One finished query."""
        seconds = self.seconds
        index = bisect_left(seconds.bounds, duration_s)
        with self._lock:
            self.total.value += 1
            (self.hits if cache_hit else self.misses).value += 1
            self.result_rows.value += rows
            seconds.bucket_counts[index] += 1
            seconds.count += 1
            seconds.sum += duration_s


class MetricsRegistry:
    """Names metrics, hands out handles, renders snapshots.

    Metric identity is ``(name, sorted label items)``; the same name
    must keep the same kind (a counter cannot come back as a gauge).
    ``counter()``/``gauge()``/``histogram()`` get-or-create and return
    the live handle — hot paths hold on to it; the ``inc``/``set``/
    ``observe`` conveniences do the lookup per call.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelItems], Counter] = {}
        self._gauges: dict[tuple[str, LabelItems], Gauge] = {}
        self._histograms: dict[tuple[str, LabelItems], Histogram] = {}
        self._statement_timers: dict[str, StatementTimer] = {}
        self._query_timers: dict[str, QueryTimer] = {}

    # -- handles ------------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(self, name: str,
                  buckets: Iterable[float] | None = None,
                  **labels) -> Histogram:
        """Get or create a histogram (``buckets`` only matters on the
        creating call)."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(
                    name, key[1], buckets=buckets)
        return metric

    def statement_timer(self, kind: str) -> StatementTimer:
        """Get or create the fused per-statement-kind handle (the
        ``backend.statements`` / ``backend.rows`` /
        ``backend.statement_seconds`` trio with a shared lock).

        The ``backend.*`` metric names are owned by this path — update
        them through the timer, not through loose handles, or the
        shared-lock fusion cannot protect them."""
        with self._lock:
            timer = self._statement_timers.get(kind)
            if timer is not None:
                return timer
            label = (("kind", kind),)
            shared = threading.Lock()
            statements = self._counters.setdefault(
                ("backend.statements", label),
                Counter("backend.statements", label))
            rows = self._counters.setdefault(
                ("backend.rows", label), Counter("backend.rows", label))
            seconds = self._histograms.setdefault(
                ("backend.statement_seconds", label),
                Histogram("backend.statement_seconds", label))
            statements._lock = rows._lock = seconds._lock = shared
            timer = self._statement_timers[kind] = StatementTimer(
                statements, rows, seconds, shared)
            return timer

    def query_timer(self, backend_name: str) -> QueryTimer:
        """Get or create the fused per-query handle (the ``query.*``
        counters/histogram with a shared lock; see
        :class:`QueryTimer`). ``query.total`` is labelled by backend,
        the rest are unlabelled — update them through the timer."""
        with self._lock:
            timer = self._query_timers.get(backend_name)
            if timer is not None:
                return timer
            label = (("backend", backend_name),)
            shared = threading.Lock()
            total = self._counters.setdefault(
                ("query.total", label), Counter("query.total", label))
            hits = self._counters.setdefault(
                ("query.cache_hits", ()), Counter("query.cache_hits", ()))
            misses = self._counters.setdefault(
                ("query.cache_misses", ()),
                Counter("query.cache_misses", ()))
            seconds = self._histograms.setdefault(
                ("query.seconds", ()), Histogram("query.seconds", ()))
            result_rows = self._counters.setdefault(
                ("query.result_rows", ()),
                Counter("query.result_rows", ()))
            total._lock = hits._lock = misses._lock = shared
            seconds._lock = result_rows._lock = shared
            timer = self._query_timers[backend_name] = QueryTimer(
                total, hits, misses, seconds, result_rows, shared)
            return timer

    # -- conveniences -------------------------------------------------------

    def inc(self, name: str, amount: int | float = 1, **labels) -> None:
        """Increment a counter by name."""
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge by name."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float,
                buckets: Iterable[float] | None = None,
                exemplar: str | None = None, **labels) -> None:
        """Record a histogram sample by name (``exemplar`` optionally
        ties the sample to a trace id; see :meth:`Histogram.observe`)."""
        self.histogram(name, buckets=buckets, **labels).observe(
            value, exemplar=exemplar)

    # -- reading ------------------------------------------------------------

    def get_counter(self, name: str, **labels) -> float:
        """Current counter value (0 when never incremented)."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
        return metric.value if metric is not None else 0

    def get_gauge_value(self, name: str, **labels) -> float | None:
        """Current gauge value, or None when never set (a read that
        does not create the gauge)."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
        return metric.value if metric is not None else None

    def counter_total(self, name: str) -> float:
        """Sum of one counter name over every label set."""
        with self._lock:
            metrics = [m for (n, __), m in self._counters.items()
                       if n == name]
        return sum(m.value for m in metrics)

    def counter_items(self, name: str) -> list[tuple[dict, float]]:
        """Every label set of one counter name with its value (the
        health report enumerates per-source counters this way)."""
        with self._lock:
            metrics = [m for (n, __), m in self._counters.items()
                       if n == name]
        return [(dict(m.labels), m.value) for m in metrics]

    def gauge_items(self, name: str) -> list[tuple[dict, float]]:
        """Every label set of one gauge name with its value."""
        with self._lock:
            metrics = [m for (n, __), m in self._gauges.items()
                       if n == name]
        return [(dict(m.labels), m.value) for m in metrics]

    def snapshot(self) -> dict:
        """JSON-ready dump of every metric (the ``xomatiq metrics``
        payload; schema documented in docs/observability.md)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": [
                {"name": m.name, "labels": dict(m.labels),
                 "value": m.value}
                for m in sorted(counters, key=lambda m: (m.name, m.labels))],
            "gauges": [
                {"name": m.name, "labels": dict(m.labels),
                 "value": m.value}
                for m in sorted(gauges, key=lambda m: (m.name, m.labels))],
            "histograms": [
                {"name": m.name, "labels": dict(m.labels),
                 "count": m.count, "sum": round(m.sum, 6),
                 **{k: round(v, 6) for k, v in m.percentiles().items()},
                 "buckets": {str(bound): count
                             for bound, count in
                             zip(m.bounds + ("+Inf",), m.bucket_counts)}}
                for m in sorted(histograms,
                                key=lambda m: (m.name, m.labels))],
        }

    def render_prometheus(self, prefix: str = "xomatiq") -> str:
        """Prometheus text exposition (version 0.0.4) of the whole
        registry: ``# TYPE`` headers, one sample line per label set,
        histograms as cumulative ``_bucket``/``_sum``/``_count``."""
        lines: list[str] = []
        with self._lock:
            counters = sorted(self._counters.values(),
                              key=lambda m: (m.name, m.labels))
            gauges = sorted(self._gauges.values(),
                            key=lambda m: (m.name, m.labels))
            histograms = sorted(self._histograms.values(),
                                key=lambda m: (m.name, m.labels))
        for kind, metrics in (("counter", counters), ("gauge", gauges)):
            seen: set[str] = set()
            for metric in metrics:
                exposed = _prom_name(prefix, metric.name)
                if kind == "counter" and not exposed.endswith("_total"):
                    exposed += "_total"
                if exposed not in seen:
                    seen.add(exposed)
                    lines.append(f"# TYPE {exposed} {kind}")
                lines.append(f"{exposed}{_prom_labels(metric.labels)}"
                             f" {_prom_value(metric.value)}")
        seen = set()
        for metric in histograms:
            exposed = _prom_name(prefix, metric.name)
            if exposed not in seen:
                seen.add(exposed)
                lines.append(f"# TYPE {exposed} histogram")
            cumulative = 0
            exemplars = metric.exemplars
            for index, (bound, count) in enumerate(
                    zip(metric.bounds + ("+Inf",), metric.bucket_counts)):
                cumulative += count
                le = "+Inf" if bound == "+Inf" else _prom_value(bound)
                labels = metric.labels + (("le", le),)
                line = (f"{exposed}_bucket{_prom_labels(labels)}"
                        f" {cumulative}")
                if exemplars is not None and exemplars[index] is not None:
                    trace_id, value, ts = exemplars[index]
                    line += (f" # {_prom_labels((('trace_id', trace_id),))}"
                             f" {_prom_value(value)} {ts:.3f}")
                lines.append(line)
            lines.append(f"{exposed}_sum{_prom_labels(metric.labels)}"
                         f" {_prom_value(metric.sum)}")
            lines.append(f"{exposed}_count{_prom_labels(metric.labels)}"
                         f" {metric.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every metric (tests; production registries only grow)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._statement_timers.clear()
            self._query_timers.clear()


class NullMetrics:
    """The off switch: same surface as :class:`MetricsRegistry`, does
    nothing, allocates nothing per call."""

    def counter(self, name: str, **labels):  # noqa: D102 - mirror API
        return _NULL_COUNTER

    def gauge(self, name: str, **labels):
        return _NULL_GAUGE

    def histogram(self, name: str, buckets=None, **labels):
        return _NULL_HISTOGRAM

    def statement_timer(self, kind: str):
        return _NULL_TIMER

    def query_timer(self, backend_name: str):
        return _NULL_TIMER

    def inc(self, name: str, amount=1, **labels) -> None:
        pass

    def set_gauge(self, name: str, value, **labels) -> None:
        pass

    def observe(self, name: str, value, buckets=None, exemplar=None,
                **labels) -> None:
        pass

    def get_counter(self, name: str, **labels):
        return 0

    def get_gauge_value(self, name: str, **labels):
        return None

    def counter_total(self, name: str):
        return 0

    def counter_items(self, name: str):
        return []

    def gauge_items(self, name: str):
        return []

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}

    def render_prometheus(self, prefix: str = "xomatiq") -> str:
        return ""

    def reset(self) -> None:
        pass


class _NullMetric:
    """Inert handle returned by :class:`NullMetrics`."""

    __slots__ = ()
    name = ""
    labels: LabelItems = ()
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value, exemplar=None) -> None:
        pass

    def record(self, *args, **kwargs) -> None:
        pass


_NULL_COUNTER = _NullMetric()
_NULL_GAUGE = _NullMetric()
_NULL_HISTOGRAM = _NullMetric()
_NULL_TIMER = _NullMetric()

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (what "always-on" records into)."""
    return _default_registry


def resolve_metrics(metrics) -> MetricsRegistry | NullMetrics:
    """Normalize a user-facing ``metrics`` argument: ``None``/``True``
    → the default registry, ``False`` → :class:`NullMetrics`, a
    registry instance → itself."""
    if metrics is None or metrics is True:
        return _default_registry
    if metrics is False:
        return NullMetrics()
    return metrics


# -- prometheus rendering helpers ------------------------------------------


def _prom_name(prefix: str, name: str) -> str:
    mangled = "".join(ch if (ch.isalnum() or ch == "_") else "_"
                      for ch in name.replace(".", "_"))
    return f"{prefix}_{mangled}" if prefix else mangled


def _prom_labels(labels: LabelItems) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in labels:
        escaped = (str(value).replace("\\", r"\\")
                   .replace('"', r'\"').replace("\n", r"\n"))
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)
