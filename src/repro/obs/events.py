"""Structured event log and slow-query log.

The Data Hounds "send out triggers to related applications" — a
warehouse already narrates its own life. :class:`EventLog` captures
that narration as structured events (name + severity + arbitrary
fields) in a fixed-size ring buffer, exportable as JSON lines, so an
operator can answer "what happened around 14:03" without grepping
stdout.

:class:`SlowQueryLog` is the always-on outlier catcher: every query's
wall-clock time is compared against a threshold, and the ones over it
are recorded *with everything needed to diagnose them offline* — the
query text, the compiled SQL, result rows, whether the translation was
a cache hit, and the engine's EXPLAIN output for each SELECT. The
diagnosis cost (EXPLAIN passes) is paid only by queries that already
blew the budget.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

#: ordered severity levels, least to most severe
SEVERITIES = ("debug", "info", "warning", "error")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Event:
    """One structured log record."""

    ts: float                      # epoch seconds (time.time)
    severity: str                  # one of SEVERITIES
    name: str                      # dotted event name ("hound.load")
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form (one JSONL line)."""
        return {"ts": round(self.ts, 6), "severity": self.severity,
                "name": self.name, **self.fields}


class EventLog:
    """A bounded, thread-safe ring buffer of :class:`Event`.

    Old events fall off the far end; ``emit`` is append-only and
    cheap. ``min_severity`` drops events below a floor at emit time
    (the always-on default keeps everything from ``info`` up).
    """

    def __init__(self, capacity: int = 1024,
                 min_severity: str = "info",
                 clock: Callable[[], float] = time.time):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if min_severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {min_severity!r}")
        self.capacity = capacity
        self.min_severity = min_severity
        self._clock = clock
        self._events: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: total events accepted (survives ring-buffer eviction)
        self.emitted = 0
        #: total events dropped by the severity floor
        self.suppressed = 0

    def emit(self, name: str, severity: str = "info", **fields) -> Event | None:
        """Append one event; returns it (None when below the floor)."""
        rank = _SEVERITY_RANK.get(severity)
        if rank is None:
            raise ValueError(f"unknown severity {severity!r}")
        if rank < _SEVERITY_RANK[self.min_severity]:
            with self._lock:
                self.suppressed += 1
            return None
        event = Event(ts=self._clock(), severity=severity, name=name,
                      fields=fields)
        with self._lock:
            self._events.append(event)
            self.emitted += 1
        return event

    def events(self, name: str | None = None,
               min_severity: str = "debug") -> list[Event]:
        """Buffered events, oldest first, optionally filtered by exact
        name and/or severity floor."""
        floor = _SEVERITY_RANK[min_severity]
        with self._lock:
            buffered = list(self._events)
        return [event for event in buffered
                if (name is None or event.name == name)
                and _SEVERITY_RANK[event.severity] >= floor]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def to_jsonl(self) -> str:
        """The buffer as JSON lines (one event per line)."""
        return "\n".join(json.dumps(event.to_dict(), sort_keys=True,
                                    default=str)
                         for event in self.events())

    def write_jsonl(self, path: str | Path) -> int:
        """Write the buffer to ``path`` as JSONL; returns event count."""
        events = self.events()
        text = "\n".join(json.dumps(event.to_dict(), sort_keys=True,
                                    default=str)
                         for event in events)
        Path(path).write_text(text + ("\n" if text else ""),
                              encoding="utf-8")
        return len(events)


@dataclass
class SlowQueryRecord:
    """One query that exceeded the slow-query threshold."""

    ts: float
    query: str
    backend: str
    duration_ms: float
    rows: int
    cache_hit: bool
    sql: tuple[str, ...] = ()
    #: SELECT sql → the engine's EXPLAIN lines for it
    plans: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: which shard ran it (federated queries) — "" for monolithic
    shard: str = ""
    #: trace id of the request that ran it, when tracing was active
    trace_id: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {"ts": round(self.ts, 6), "query": self.query,
                "backend": self.backend,
                "duration_ms": round(self.duration_ms, 3),
                "rows": self.rows, "cache_hit": self.cache_hit,
                "shard": self.shard, "trace_id": self.trace_id,
                "sql": list(self.sql),
                "plans": {sql: list(lines)
                          for sql, lines in self.plans.items()}}


class SlowQueryLog:
    """Threshold-triggered capture of slow queries.

    The engine calls :meth:`record` after every query with the
    measured duration; nothing happens under the threshold. Over it,
    the record keeps the compiled SQL and — when the backend offers
    ``explain`` — the plan of every SELECT, and a ``query.slow``
    warning event lands in the companion :class:`EventLog`.
    """

    def __init__(self, threshold_ms: float = 250.0, capacity: int = 100,
                 events: EventLog | None = None,
                 clock: Callable[[], float] = time.time):
        self.threshold_ms = threshold_ms
        self.events = events
        self._clock = clock
        self._records: deque[SlowQueryRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: queries seen / queries recorded as slow
        self.seen = 0
        self.slow = 0

    def record(self, query: str, backend, duration_ms: float,
               rows: int, cache_hit: bool, statements=(),
               shard: str = "",
               trace_id: str = "") -> SlowQueryRecord | None:
        """Consider one finished query; returns the record when slow.

        ``statements`` are ``(sql, params)`` pairs (see
        ``CompiledQuery.parameterized_statements``) — params are needed
        to re-run EXPLAIN against parameterized SQL. Pass a zero-arg
        callable returning the pairs to defer building them to the
        slow case (the common fast case then pays one comparison).
        ``shard`` and ``trace_id`` pin a federated slow query to the
        shard that ran it and the request trace that triggered it."""
        with self._lock:
            self.seen += 1
        if duration_ms < self.threshold_ms:
            return None
        if callable(statements):
            statements = statements()
        statements = tuple(statements)
        record = SlowQueryRecord(
            ts=self._clock(), query=query,
            backend=getattr(backend, "name", str(backend)),
            duration_ms=duration_ms, rows=rows, cache_hit=cache_hit,
            sql=tuple(sql for sql, __ in statements),
            plans=self._capture_plans(backend, statements),
            shard=shard, trace_id=trace_id)
        with self._lock:
            self._records.append(record)
            self.slow += 1
        if self.events is not None:
            self.events.emit(
                "query.slow", severity="warning", query=query,
                backend=record.backend,
                duration_ms=round(duration_ms, 3), rows=rows,
                cache_hit=cache_hit, statements=len(record.sql),
                shard=shard, trace_id=trace_id)
        return record

    def records(self) -> list[SlowQueryRecord]:
        """Captured slow queries, oldest first."""
        with self._lock:
            return list(self._records)

    def to_dicts(self) -> list[dict]:
        """JSON-ready dump (the ``metrics.json`` / CLI payload)."""
        return [record.to_dict() for record in self.records()]

    @staticmethod
    def _capture_plans(backend,
                       statements: tuple[tuple[str, tuple], ...]) -> dict:
        explain = getattr(backend, "explain", None)
        if explain is None:
            return {}
        plans: dict[str, tuple[str, ...]] = {}
        for sql, params in statements:
            if not sql.lstrip().upper().startswith("SELECT"):
                continue
            try:
                plans[sql] = tuple(explain(sql, params))
            except Exception as exc:   # diagnosis must never re-fail
                plans[sql] = (f"(explain failed: {exc})",)
        return plans
