"""Shared resilience primitives: retry policies, circuit breakers, clocks.

Grown out of the Data Hounds' transport hardening, these primitives now
guard *both* planes of the system: the harvest path (fetching releases
from flaky mirrors — :mod:`repro.datahounds.resilience`) and the query
path (scatter-gather subqueries against shard backends that stall, die,
or come back — :mod:`repro.federation.executor`). Both planes share the
same failure taxonomy:

* **transient failures** — :class:`RetryPolicy`: bounded attempts with
  exponential backoff and *deterministic* jitter (hashed from
  source + attempt, so test runs replay identical delays), under an
  optional overall deadline;
* **persistently down peers** — a per-peer :class:`CircuitBreaker`
  (closed → open after K consecutive failures → half-open probe after a
  cooldown), so a dead peer costs one short-circuited exception instead
  of a full timeout ladder every time. The gauge/event names and the
  label key are configurable so each plane publishes under its own
  namespace (``transport.breaker_state`` per *source* for harvests,
  ``federation.breaker_state`` per *backend* for queries).

:class:`ManualClock` is the injectable clock+sleep pair that makes the
whole retry/breaker/hedge state space testable in microseconds: code
under test takes ``clock=``/``sleep=`` parameters, tests pass the same
:class:`ManualClock` for both, and "waiting" becomes instantaneous and
fully deterministic.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

#: breaker states, and their numeric codes on breaker-state gauges
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

BREAKER_STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}
BREAKER_STATE_NAMES = {code: name
                       for name, code in BREAKER_STATE_CODES.items()}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retrying. Delays grow ``base_delay_s * multiplier**(attempt-1)``
    capped at ``max_delay_s``, then jittered by up to ±``jitter``
    (fractional) using a hash of ``(source, attempt)`` — spread like
    random jitter, reproducible like none. ``deadline_s`` bounds the
    whole operation (attempts + sleeps): once past it, no further
    attempt is made. (A stalled in-flight call cannot be interrupted by
    the policy itself; the deadline is checked between attempts.)
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_for(self, attempt: int, source: str = "") -> float:
        """Backoff delay after the ``attempt``-th failure (1-based)."""
        raw = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                  self.max_delay_s)
        if self.jitter:
            digest = hashlib.sha256(
                f"{source}:{attempt}".encode("utf-8")).hexdigest()[:8]
            unit = int(digest, 16) / 0xFFFFFFFF          # [0, 1]
            raw *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return max(0.0, raw)


class CircuitBreaker:
    """Per-peer breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`allow` returns False (callers short-circuit without
    touching the peer) until ``cooldown_s`` has elapsed, at which point
    the breaker half-opens and admits one probe. A successful probe
    closes it; a failed probe re-opens it for another cooldown.

    State transitions land on the ``gauge`` gauge (coded via
    :data:`BREAKER_STATE_CODES`, labelled ``{label}=<source>``) and as
    ``{event_prefix}_open`` / ``_half_open`` / ``_close`` events. The
    defaults keep the harvest plane's historical names; the federation
    plane constructs breakers with ``gauge="federation.breaker_state"``
    and ``label="backend"``.

    ``last_failure_at`` / ``last_failure_time`` record the most recent
    failure on the injected (monotonic) clock and on the wall clock
    respectively — the latter feeds human-facing health reports.
    """

    def __init__(self, source: str, failure_threshold: int = 5,
                 cooldown_s: float = 30.0, clock=time.monotonic,
                 metrics=None, events=None,
                 gauge: str = "transport.breaker_state",
                 label: str = "source",
                 event_prefix: str = "transport.breaker"):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.source = source
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.metrics = metrics
        self.events = events
        self.gauge = gauge
        self.label = label
        self.event_prefix = event_prefix
        self.state = CLOSED
        self.consecutive_failures = 0
        self.last_failure_at: float | None = None
        self.last_failure_time: float | None = None
        self._opened_at: float | None = None
        self._publish_state()

    def allow(self) -> bool:
        """May the caller attempt right now? (An open breaker past its
        cooldown half-opens and admits the probe.)"""
        if self.state != OPEN:
            return True
        if (self.clock() - self._opened_at) >= self.cooldown_s:
            self._transition(HALF_OPEN)
            return True
        return False

    def record_success(self) -> None:
        """An attempt succeeded: reset the failure streak; a half-open
        probe's success closes the breaker."""
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """An attempt failed: extend the streak; hitting the threshold
        — or failing the half-open probe — opens the breaker."""
        self.consecutive_failures += 1
        self.last_failure_at = self.clock()
        self.last_failure_time = time.time()
        if (self.state == HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            if self.state != OPEN:
                self._transition(OPEN)
            self._opened_at = self.clock()

    def status(self) -> dict:
        """Health-report view of this breaker."""
        report = {"state": self.state,
                  "consecutive_failures": self.consecutive_failures}
        if self.last_failure_time is not None:
            report["last_failure_time"] = round(self.last_failure_time, 3)
        return report

    # -- internals ----------------------------------------------------------

    def _transition(self, state: str) -> None:
        self.state = state
        if state == OPEN and self._opened_at is None:
            self._opened_at = self.clock()
        self._publish_state()
        if self.events is not None:
            severity = "warning" if state == OPEN else "info"
            self.events.emit(f"{self.event_prefix}_{state}",
                             severity=severity,
                             consecutive_failures=self.consecutive_failures,
                             **{self.label: self.source})

    def _publish_state(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(self.gauge,
                                   BREAKER_STATE_CODES[self.state],
                                   **{self.label: self.source})


class ManualClock:
    """Deterministic clock + sleep pair for tests.

    The instance is callable (returns the current reading, so it can be
    passed anywhere a ``clock=`` parameter is expected) and exposes
    :meth:`sleep` (advances the reading instead of blocking, recording
    every requested duration in :attr:`sleeps`). :meth:`advance` moves
    time forward without going through a sleep — e.g. to age a breaker
    past its cooldown.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += max(0.0, seconds)

    def advance(self, seconds: float) -> None:
        self.now += seconds
