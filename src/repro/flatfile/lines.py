"""Line-oriented flat-file format of the paper's Figure 3.

Biological flat files (ENZYME, EMBL, Swiss-Prot) are sequences of
*entries*, each entry a sequence of *lines*. The general line structure
(Figure 3):

====================  =========================================
characters 1 to 2     two-character line code
characters 3 to 5     blank
characters 6 to 78    data
====================  =========================================

Entries are terminated by a ``//`` line. This module models line codes
and their cardinalities (Figure 4) and converts between raw text lines
and :class:`Line` values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FlatFileError

TERMINATOR = "//"
SEQUENCE_CODE = "  "     # blank code: sequence continuation lines (EMBL/Swiss-Prot)
DATA_COLUMN = 5          # 0-based index where data starts (column 6)
MAX_DATA_WIDTH = 73      # columns 6..78 inclusive


@dataclass(frozen=True)
class LineSpec:
    """Declares one line type of a source format (one row of Figure 4).

    ``min_count``/``max_count`` bound occurrences per entry;
    ``max_count=None`` means unbounded.
    """

    code: str
    description: str
    min_count: int = 0
    max_count: int | None = None

    def __post_init__(self):
        if len(self.code) != 2:
            raise ValueError(f"line code must be 2 characters: {self.code!r}")
        if self.code != SEQUENCE_CODE and " " in self.code:
            raise ValueError(f"line code must be non-blank: {self.code!r}")
        if self.max_count is not None and self.max_count < self.min_count:
            raise ValueError(
                f"line code {self.code}: max_count < min_count")


@dataclass(frozen=True)
class Line:
    """One parsed line: a two-character code plus its data payload."""

    code: str
    data: str

    def render(self) -> str:
        """Format back to fixed-column text (code, 3 blanks, data)."""
        if self.code == TERMINATOR:
            return TERMINATOR
        return f"{self.code}   {self.data}".rstrip()


def parse_line(raw: str, line_number: int | None = None) -> Line:
    """Parse one raw text line into a :class:`Line`.

    The terminator ``//`` is returned with empty data. Codes must be two
    non-blank characters; data starts at column 6 (anything in columns
    3-5 is an error, per the spec).
    """
    raw = raw.rstrip("\r\n")
    if raw.startswith(TERMINATOR):
        return Line(TERMINATOR, "")
    if raw.startswith(" " * DATA_COLUMN):
        # sequence continuation line: five leading blanks, then residues
        return Line(SEQUENCE_CODE, raw[DATA_COLUMN:])
    if len(raw) < 2:
        raise FlatFileError(f"line too short for a line code: {raw!r}",
                            line_number)
    code = raw[:2]
    if code.strip() != code or " " in code:
        raise FlatFileError(f"malformed line code {code!r}", line_number)
    filler = raw[2:DATA_COLUMN]
    if filler.strip():
        raise FlatFileError(
            f"columns 3-5 must be blank, got {filler!r} after code {code}",
            line_number)
    return Line(code, raw[DATA_COLUMN:])


def render_wrapped(code: str, data: str,
                   width: int = MAX_DATA_WIDTH) -> list[str]:
    """Render a logical value as one or more fixed-width lines.

    Long values are wrapped at word boundaries so no data column exceeds
    ``width`` (column 78 of the physical format), mirroring how ENZYME
    wraps CA and CC lines across multiple physical lines.
    """
    words = data.split()
    if not words:
        return [Line(code, "").render()]
    lines: list[str] = []
    current = words[0]
    for word in words[1:]:
        if len(current) + 1 + len(word) <= width:
            current += " " + word
        else:
            lines.append(Line(code, current).render())
            current = word
    lines.append(Line(code, current).render())
    return lines


class CardinalityChecker:
    """Validates per-entry line counts against a list of LineSpecs."""

    def __init__(self, specs: list[LineSpec]):
        self.specs = {spec.code: spec for spec in specs}

    def check(self, lines: list[Line], entry_label: str = "entry") -> None:
        """Raise :class:`FlatFileError` on cardinality violations or
        unknown codes."""
        counts: dict[str, int] = {}
        for line in lines:
            if line.code == TERMINATOR:
                continue
            if line.code not in self.specs:
                raise FlatFileError(
                    f"{entry_label}: unknown line code {line.code!r}")
            counts[line.code] = counts.get(line.code, 0) + 1
        for code, spec in self.specs.items():
            count = counts.get(code, 0)
            if count < spec.min_count:
                raise FlatFileError(
                    f"{entry_label}: line code {code} occurs {count} times, "
                    f"needs at least {spec.min_count}")
            if spec.max_count is not None and count > spec.max_count:
                raise FlatFileError(
                    f"{entry_label}: line code {code} occurs {count} times, "
                    f"allows at most {spec.max_count}")
