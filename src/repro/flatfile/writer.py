"""Write entries back out as flat-file text.

Used by the synthetic corpus generators (to produce source "releases" for
the transport layer) and by round-trip tests (entry → text → entry must be
identity for unwrapped values).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.flatfile.lines import TERMINATOR, Line
from repro.flatfile.reader import Entry


def render_entry(entry: Entry) -> str:
    """Render one entry, terminator included, with a trailing newline."""
    lines = [line.render() for line in entry.lines]
    lines.append(TERMINATOR)
    return "\n".join(lines) + "\n"


def render_entries(entries: Iterable[Entry]) -> str:
    """Render a full flat file."""
    return "".join(render_entry(entry) for entry in entries)


def write_entries(entries: Iterable[Entry], path: str | Path) -> int:
    """Write entries to ``path``; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(render_entry(entry))
            count += 1
    return count


def entry_from_pairs(pairs: Iterable[tuple[str, str]]) -> Entry:
    """Build an entry from ``(code, data)`` pairs (generator helper)."""
    return Entry([Line(code, data) for code, data in pairs])
