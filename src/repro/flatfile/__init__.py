"""Flat-file substrate: the line/entry record format of the paper's
Figures 3-4, with streaming reader and writer."""

from repro.flatfile.lines import (
    DATA_COLUMN,
    MAX_DATA_WIDTH,
    TERMINATOR,
    CardinalityChecker,
    Line,
    LineSpec,
    parse_line,
    render_wrapped,
)
from repro.flatfile.reader import Entry, iter_entries, parse_entries, read_entries
from repro.flatfile.writer import (
    entry_from_pairs,
    render_entries,
    render_entry,
    write_entries,
)

__all__ = [
    "DATA_COLUMN",
    "MAX_DATA_WIDTH",
    "TERMINATOR",
    "CardinalityChecker",
    "Entry",
    "Line",
    "LineSpec",
    "entry_from_pairs",
    "iter_entries",
    "parse_entries",
    "parse_line",
    "read_entries",
    "render_entries",
    "render_entry",
    "render_wrapped",
    "write_entries",
]
