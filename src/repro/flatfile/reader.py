"""Read flat files into entries (lists of parsed lines).

An *entry* runs from its first line (by convention an ID line) to the
``//`` terminator. Entries stream lazily so multi-hundred-megabyte dumps
(the realistic case for EMBL) never need to be memory-resident.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.errors import FlatFileError
from repro.flatfile.lines import TERMINATOR, Line, parse_line


@dataclass
class Entry:
    """One flat-file entry: ordered lines, excluding the terminator."""

    lines: list[Line]

    def first(self, code: str) -> Line | None:
        """First line with the given code, or None."""
        for line in self.lines:
            if line.code == code:
                return line
        return None

    def all(self, code: str) -> list[Line]:
        """All lines with the given code, in order."""
        return [line for line in self.lines if line.code == code]

    def value(self, code: str) -> str | None:
        """Data of the first line with the given code, or None."""
        line = self.first(code)
        return line.data if line is not None else None

    def joined(self, code: str, separator: str = " ") -> str:
        """All data lines with the given code joined into one string.

        This is how multi-line values (ENZYME ``CA``/``CC``) are
        reassembled.
        """
        return separator.join(line.data for line in self.all(code))

    def codes(self) -> list[str]:
        """Distinct line codes, in first-appearance order."""
        seen: list[str] = []
        for line in self.lines:
            if line.code not in seen:
                seen.append(line.code)
        return seen


def iter_entries(source: TextIO | Iterable[str]) -> Iterator[Entry]:
    """Yield entries from an iterable of raw text lines.

    Blank lines between entries are tolerated; a non-blank trailing
    fragment without its ``//`` terminator is an error (the paper's
    update requirement — "without any information being left out" —
    makes silently dropping a truncated entry unacceptable).
    """
    current: list[Line] = []
    line_number = 0
    for raw in source:
        line_number += 1
        if not raw.strip():
            if current:
                raise FlatFileError(
                    "blank line inside an entry", line_number)
            continue
        line = parse_line(raw, line_number)
        if line.code == TERMINATOR:
            if not current:
                raise FlatFileError("terminator with no entry", line_number)
            yield Entry(current)
            current = []
        else:
            current.append(line)
    if current:
        raise FlatFileError(
            f"unterminated final entry ({len(current)} lines)", line_number)


def read_entries(path: str | Path) -> list[Entry]:
    """Read all entries of a flat file on disk."""
    with open(path, encoding="utf-8") as handle:
        return list(iter_entries(handle))


def parse_entries(text: str) -> list[Entry]:
    """Read all entries from a flat-file string."""
    return list(iter_entries(text.splitlines()))
