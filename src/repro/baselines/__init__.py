"""Comparison baselines: a native-XML tree-walking evaluator and an
SRS-style indexed flat-file scanner."""

from repro.baselines.flatscan import (
    AccessionIndex,
    FlatFileIndex,
    LinkMap,
    follow_links,
)
from repro.baselines.native_xml import NativeXmlStore

__all__ = ["AccessionIndex", "FlatFileIndex", "LinkMap", "NativeXmlStore",
           "follow_links"]
