"""SRS-style flat-file retrieval baseline (paper §4, Related Work).

SRS indexes formatted text files on *pre-defined* fields and answers
index lookups plus "following predefined links between data sources";
"searches are only permitted on pre-defined indexed attributes whereas
XomatiQ permits searches on attributes at any level". This module
reproduces that model so the expressiveness/performance contrast the
paper draws is measurable:

* :class:`FlatFileIndex` — per-source token index over a chosen set of
  line codes (the Icarus-class definition),
* :meth:`FlatFileIndex.search` — keyword lookup on the indexed fields
  only (a keyword that appears on a non-indexed line is invisible —
  the expressiveness gap),
* :class:`LinkMap` + :func:`follow_links` — predefined cross-source
  links (ENZYME ``DR`` → Swiss-Prot accessions, etc.); arbitrary joins
  are *not* expressible, only link traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flatfile import Entry, parse_entries
from repro.shredding.keywords import query_tokens, tokenize


@dataclass
class FlatFileIndex:
    """A token index over designated line codes of one source."""

    source: str
    indexed_codes: frozenset[str]
    entries: list[Entry] = field(default_factory=list)
    _token_index: dict[str, set[int]] = field(default_factory=dict)

    @classmethod
    def build(cls, source: str, flat_text: str,
              indexed_codes: tuple[str, ...] = ("ID", "DE", "KW")
              ) -> "FlatFileIndex":
        """Index a whole flat-file release on the designated codes."""
        index = cls(source=source, indexed_codes=frozenset(indexed_codes))
        for entry in parse_entries(flat_text):
            index.add(entry)
        return index

    def add(self, entry: Entry) -> int:
        """Store one entry; returns its id in this index."""
        entry_id = len(self.entries)
        self.entries.append(entry)
        for line in entry.lines:
            if line.code not in self.indexed_codes:
                continue
            for token in tokenize(line.data):
                self._token_index.setdefault(token, set()).add(entry_id)
        return entry_id

    def search(self, keyword_phrase: str) -> list[Entry]:
        """Entries whose *indexed* fields contain every query token."""
        tokens = query_tokens(keyword_phrase)
        if not tokens:
            return []
        hit_sets = [self._token_index.get(token, set()) for token in tokens]
        hits = set.intersection(*hit_sets) if hit_sets else set()
        return [self.entries[i] for i in sorted(hits)]

    def entry_ids(self, keyword_phrase: str) -> list[int]:
        """Ids (not entries) matching every query token."""
        tokens = query_tokens(keyword_phrase)
        if not tokens:
            return []
        hit_sets = [self._token_index.get(token, set()) for token in tokens]
        return sorted(set.intersection(*hit_sets)) if hit_sets else []

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class LinkMap:
    """A predefined link: which line code of the *from* source carries
    accessions of the *to* source, and how to read them."""

    from_source: str
    to_source: str
    line_code: str

    def targets_of(self, entry: Entry) -> list[str]:
        """Accession strings this entry links to."""
        values: list[str] = []
        for line in entry.all(self.line_code):
            for chunk in line.data.replace(";", ",").split(","):
                token = chunk.strip().rstrip(".")
                if token and token[0].isalpha() and any(
                        ch.isdigit() for ch in token):
                    values.append(token.split()[0])
        return values


def follow_links(entries: list[Entry], link: LinkMap,
                 target_index: "AccessionIndex") -> list[Entry]:
    """SRS-style link traversal: from matched entries to the linked
    entries of another source."""
    out: list[Entry] = []
    seen: set[int] = set()
    for entry in entries:
        for accession in link.targets_of(entry):
            entry_id = target_index.lookup(accession)
            if entry_id is not None and entry_id not in seen:
                seen.add(entry_id)
                out.append(target_index.entries[entry_id])
    return out


@dataclass
class AccessionIndex:
    """Primary-accession lookup for one source (SRS keeps one per
    databank)."""

    entries: list[Entry] = field(default_factory=list)
    _by_accession: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(cls, flat_text: str,
              accession_code: str = "AC") -> "AccessionIndex":
        """Index a release by its primary accessions."""
        index = cls()
        for entry in parse_entries(flat_text):
            entry_id = len(index.entries)
            index.entries.append(entry)
            for line in entry.all(accession_code):
                for accession in line.data.split(";"):
                    accession = accession.strip()
                    if accession:
                        index._by_accession.setdefault(accession, entry_id)
        return index

    def lookup(self, accession: str) -> int | None:
        """Entry id carrying the accession, or None."""
        return self._by_accession.get(accession)
