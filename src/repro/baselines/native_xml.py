"""Native-XML baseline: evaluate XomatiQ queries by tree-walking.

The paper argues for shredding into an RDBMS because "special-purpose
XML query processors are not mature enough to process large volumes of
data". This module is that comparison point: the same query language
evaluated directly over in-memory parsed documents with nested loops
and per-document scans — no relational engine, no indexes beyond what
the tree gives us. Benchmarks E2-E4 race it against the relational
path.

Semantics match the relational path (existential predicate semantics,
descendant-or-self ``//``, same tokenizer) so results can be asserted
equal in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownDocumentError
from repro.results.resultset import (
    BoundNode,
    QueryResult,
    ResultRow,
    unique_columns,
)
from repro.shredding.keywords import query_tokens, tokenize
from repro.shredding.typing import numeric_value
from repro.xmlkit import Document, Element, Text
from repro.xmlkit.path import evaluate_elements, evaluate_strings
from repro.xquery.ast import (
    BoolAnd,
    BoolNot,
    BoolOr,
    Compare,
    Condition,
    Contains,
    LiteralOperand,
    OrderCompare,
    Query,
    SeqContains,
    VarPath,
)
from repro.xquery.parser import parse_query


@dataclass
class _StoredDocument:
    doc_id: int
    source: str
    collection: str
    entry_key: str
    document: Document
    #: lazily built: document-order (token, position) stream
    token_stream: list[tuple[str, int]] | None = None


class NativeXmlStore:
    """An in-memory XML 'database': documents grouped by source and
    collection, queried by tree-walking."""

    def __init__(self):
        self._documents: list[_StoredDocument] = []
        self._by_name: dict[tuple[str, str], list[_StoredDocument]] = {}

    # -- loading ---------------------------------------------------------------

    def add_document(self, source: str, collection: str, entry_key: str,
                     document: Document) -> int:
        """Store one parsed document; returns its doc id."""
        doc_id = len(self._documents)
        stored = _StoredDocument(doc_id, source, collection, entry_key,
                                 document)
        self._documents.append(stored)
        self._by_name.setdefault((source, collection), []).append(stored)
        return doc_id

    def load_text(self, source: str, flat_text: str, registry=None) -> int:
        """Transform and store a flat-file release (same transformers
        as the warehouse)."""
        from repro.datahounds.registry import SourceRegistry
        from repro.flatfile import parse_entries
        transformer = (registry or SourceRegistry()).create(source)
        count = 0
        for entry in parse_entries(flat_text):
            document = transformer.transform_entry(entry)
            self.add_document(source, transformer.collection_of(entry),
                              transformer.entry_key(entry), document)
            count += 1
        return count

    def load_corpus(self, corpus) -> dict[str, int]:
        """Load every release of a synthetic corpus."""
        return {source: self.load_text(source, text)
                for source, text in corpus.texts().items()}

    def document_count(self) -> int:
        """Total stored documents."""
        return len(self._documents)

    # -- querying -----------------------------------------------------------------

    def query(self, text: str) -> QueryResult:
        """Parse and evaluate a XomatiQ query by tree-walking."""
        return self.execute(parse_query(text))

    def execute(self, query: Query) -> QueryResult:
        """Evaluate an already-parsed query."""
        evaluator = _Evaluator(self, query)
        return evaluator.run()

    # -- internals --------------------------------------------------------------------

    def _candidates(self, source: str,
                    collection: str | None) -> list[_StoredDocument]:
        if collection is not None:
            docs = self._by_name.get((source, collection))
            if docs is None:
                raise UnknownDocumentError(
                    f'document("{source}.{collection}") is not loaded')
            return docs
        docs = [d for d in self._documents if d.source == source]
        if not docs:
            raise UnknownDocumentError(
                f'document("{source}") is not loaded')
        return docs


def _document_tokens(stored: _StoredDocument) -> list[tuple[str, int]]:
    """Document-order (token, position) stream, matching the shredder's
    keyword positions (attributes first, then text, per element)."""
    if stored.token_stream is None:
        stream: list[tuple[str, int]] = []
        position = 0

        def walk(element: Element) -> None:
            nonlocal position
            for value in element.attributes.values():
                for token in tokenize(value):
                    stream.append((token, position))
                    position += 1
            if element.tag == "sequence":
                return  # mirror the shredder's sequence split
            for child in element.children:
                if isinstance(child, Text):
                    for token in tokenize(child.value):
                        stream.append((token, position))
                        position += 1
                else:
                    walk(child)

        walk(stored.document.root)
        stored.token_stream = stream
    return stored.token_stream


def _subtree_tokens(element: Element) -> set[str]:
    """Token set of one element subtree (attributes + non-sequence
    text)."""
    tokens: set[str] = set()

    def walk(node: Element) -> None:
        for value in node.attributes.values():
            tokens.update(tokenize(value))
        if node.tag == "sequence":
            return
        for child in node.children:
            if isinstance(child, Text):
                tokens.update(tokenize(child.value))
            else:
                walk(child)

    walk(element)
    return tokens


@dataclass
class _BindingCandidate:
    stored: _StoredDocument
    element: Element
    node_id: int


class _Evaluator:
    """Nested-loop FLWR evaluation with early condition checking."""

    def __init__(self, store: NativeXmlStore, query: Query):
        self.store = store
        self.query = query
        self.bindings = {b.var: b for b in query.bindings}
        self.variables = query.variables()
        self.conditions = (_flatten_and(query.where)
                           if query.where is not None else [])

    def run(self) -> QueryResult:
        columns = unique_columns([item.output_name
                                  for item in self.query.returns])
        result = QueryResult(columns=columns, variables=list(self.variables))
        self._loop({}, 0, result, columns)
        return result

    def _loop(self, env: dict[str, _BindingCandidate], index: int,
              result: QueryResult, columns: list[str]) -> None:
        if index == len(self.variables):
            # every condition was checked as soon as its last variable
            # was bound, so reaching the leaf means the row qualifies
            self._emit(env, result, columns)
            return
        var = self.variables[index]
        for candidate in self._candidates_for(var, env):
            env[var] = candidate
            bound = set(list(env))
            early_ok = True
            for condition in self.conditions:
                if _vars_of(condition) <= bound and var in _vars_of(condition):
                    if not self._check(condition, env):
                        early_ok = False
                        break
            if early_ok:
                self._loop(env, index + 1, result, columns)
            del env[var]

    def _candidates_for(self, var: str,
                        env: dict[str, _BindingCandidate]
                        ) -> list[_BindingCandidate]:
        binding = self.bindings[var]
        if binding.context_var is not None:
            context = env[binding.context_var]
            elements = (evaluate_elements(binding.path, context.element)
                        if binding.path is not None else [context.element])
            return [_BindingCandidate(context.stored, element,
                                      _preorder_rank(context.stored, element))
                    for element in elements]
        candidates: list[_BindingCandidate] = []
        for stored in self.store._candidates(binding.document.source,
                                             binding.document.collection):
            if binding.path is None:
                candidates.append(_BindingCandidate(stored,
                                                    stored.document.root, 0))
                continue
            for element in _document_path_elements(stored.document,
                                                   binding.path):
                candidates.append(_BindingCandidate(
                    stored, element, _preorder_rank(stored, element)))
        return candidates

    # -- condition checking --------------------------------------------------------

    def _check(self, condition: Condition,
               env: dict[str, _BindingCandidate]) -> bool:
        if isinstance(condition, BoolAnd):
            return all(self._check(i, env) for i in condition.items)
        if isinstance(condition, BoolOr):
            return any(self._check(i, env) for i in condition.items)
        if isinstance(condition, BoolNot):
            return not self._check(condition.item, env)
        if isinstance(condition, Contains):
            return self._check_contains(condition, env)
        if isinstance(condition, Compare):
            return self._check_compare(condition, env)
        if isinstance(condition, OrderCompare):
            return self._check_order(condition, env)
        if isinstance(condition, SeqContains):
            return self._check_seqcontains(condition, env)
        raise TypeError(f"unknown condition {type(condition).__name__}")

    def _check_seqcontains(self, condition: SeqContains,
                           env: dict[str, _BindingCandidate]) -> bool:
        import re
        candidate = env[condition.target.var]
        if condition.target.path is None:
            holders = [candidate.element]
        else:
            holders = evaluate_elements(condition.target.path,
                                        candidate.element)
        pattern = re.compile(
            "".join("." if ch == "." else re.escape(ch)
                    for ch in condition.motif),
            re.IGNORECASE)
        return any(pattern.search(holder.full_text()) for holder in holders)

    def _check_order(self, condition: OrderCompare,
                     env: dict[str, _BindingCandidate]) -> bool:
        left_candidate = env[condition.left.var]
        right_candidate = env[condition.right.var]
        if left_candidate.stored is not right_candidate.stored:
            return False   # order is only defined within one document
        left_elements = (
            [left_candidate.element] if condition.left.path is None
            else evaluate_elements(condition.left.path,
                                   left_candidate.element))
        right_elements = (
            [right_candidate.element] if condition.right.path is None
            else evaluate_elements(condition.right.path,
                                   right_candidate.element))
        stored = left_candidate.stored
        left_ranks = [_preorder_rank(stored, e) for e in left_elements]
        right_ranks = [_preorder_rank(stored, e) for e in right_elements]
        if condition.op == "before":
            return any(lr < rr for lr in left_ranks for rr in right_ranks)
        return any(lr > rr for lr in left_ranks for rr in right_ranks)

    def _check_contains(self, condition: Contains,
                        env: dict[str, _BindingCandidate]) -> bool:
        candidate = env[condition.target.var]
        tokens = query_tokens(condition.phrase)
        if isinstance(condition.scope, int):
            stream = _document_tokens(candidate.stored)
            positions = [[p for t, p in stream if t == token]
                         for token in tokens]
            if any(not p for p in positions):
                return False
            window = condition.scope
            return any(
                all(any(abs(p - first) <= window for p in other)
                    for other in positions[1:])
                for first in positions[0])
        if condition.scope == "any":
            doc_tokens = {t for t, __ in _document_tokens(candidate.stored)}
            return all(token in doc_tokens for token in tokens)
        if condition.target.path is None:
            scope_elements = [candidate.element]
        else:
            scope_elements = evaluate_elements(condition.target.path,
                                               candidate.element)
        return any(
            all(token in _subtree_tokens(element) for token in tokens)
            for element in scope_elements)

    def _check_compare(self, condition: Compare,
                       env: dict[str, _BindingCandidate]) -> bool:
        left_values = self._operand_values(condition.left, env)
        right_values = self._operand_values(condition.right, env)
        numeric = (self._is_numeric_literal(condition.left)
                   or self._is_numeric_literal(condition.right))
        op = condition.op
        for left in left_values:
            for right in right_values:
                if _compare(op, left, right, numeric):
                    return True
        return False

    @staticmethod
    def _is_numeric_literal(operand) -> bool:
        return isinstance(operand, LiteralOperand) and operand.is_numeric

    def _operand_values(self, operand,
                        env: dict[str, _BindingCandidate]) -> list:
        """Comparison operands: literals, attribute values, or the
        *direct* text of matched elements.

        Comparisons deliberately operate on leaf values (an element
        with no text of its own contributes no value), matching the
        relational path where comparisons join the element's own
        ``text_values`` rows. This matches how the paper's example
        queries compare leaf elements (``enzyme_id``, qualifiers); the
        XQuery string-value (subtree concatenation) is used only for
        RETURN items.
        """
        if isinstance(operand, LiteralOperand):
            return [operand.value]
        candidate = env[operand.var]
        if operand.path is None:
            elements = [candidate.element]
        elif operand.path.is_attribute_path:
            return evaluate_strings(operand.path, candidate.element)
        else:
            elements = evaluate_elements(operand.path, candidate.element)
        values = []
        for element in elements:
            if any(isinstance(c, Text) and c.value for c in element.children):
                values.append(element.text())
        return values

    # -- output ------------------------------------------------------------------------

    def _emit(self, env: dict[str, _BindingCandidate],
              result: QueryResult, columns: list[str]) -> None:
        row = ResultRow(bindings={
            var: BoundNode(doc_id=env[var].stored.doc_id,
                           node_id=env[var].node_id)
            for var in self.variables})
        for column, item in zip(columns, self.query.returns):
            if item.constructor is not None:
                element = self._construct(item.constructor, env)
                row.elements[column] = element
                from repro.xmlkit.serializer import serialize_compact
                row.values[column] = [serialize_compact(element)]
                continue
            row.values[column] = self._varpath_values(item.value, env)
        result.rows.append(row)

    def _varpath_values(self, varpath: VarPath,
                        env: dict[str, _BindingCandidate]) -> list[str]:
        candidate = env[varpath.var]
        if varpath.path is None:
            return [candidate.element.full_text()]
        return evaluate_strings(varpath.path, candidate.element)

    def _construct(self, constructor,
                   env: dict[str, _BindingCandidate]) -> Element:
        element = Element(constructor.tag)
        for name, value in constructor.attributes:
            if isinstance(value, VarPath):
                values = self._varpath_values(value, env)
                if values:
                    element.set(name, values[0])
            else:
                element.set(name, value)
        for child in constructor.children:
            if isinstance(child, VarPath):
                tag = (child.path.last_name if child.path is not None
                       else child.var)
                for value in self._varpath_values(child, env):
                    element.subelement(tag, text=value if value else None)
            else:
                element.append(self._construct(child, env))
        return element


def _compare(op: str, left, right, numeric: bool) -> bool:
    if numeric:
        left_num = left if isinstance(left, float) else numeric_value(str(left))
        right_num = (right if isinstance(right, float)
                     else numeric_value(str(right)))
        if left_num is None or right_num is None:
            return False
        left, right = left_num, right_num
    else:
        left, right = str(left), str(right)
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _flatten_and(condition: Condition) -> list[Condition]:
    if isinstance(condition, BoolAnd):
        out: list[Condition] = []
        for item in condition.items:
            out.extend(_flatten_and(item))
        return out
    return [condition]


def _vars_of(condition: Condition) -> set[str]:
    out: set[str] = set()

    def walk(node: Condition) -> None:
        if isinstance(node, (Contains, SeqContains)):
            out.add(node.target.var)
        elif isinstance(node, Compare):
            for operand in (node.left, node.right):
                if isinstance(operand, VarPath):
                    out.add(operand.var)
        elif isinstance(node, OrderCompare):
            out.add(node.left.var)
            out.add(node.right.var)
        elif isinstance(node, (BoolAnd, BoolOr)):
            for item in node.items:
                walk(item)
        elif isinstance(node, BoolNot):
            walk(node.item)
        else:
            # fail loudly: silently skipping an unknown condition type
            # would drop the condition from evaluation entirely
            raise TypeError(
                f"unknown condition type {type(node).__name__}")

    walk(condition)
    return out


def _document_path_elements(document: Document, path) -> list[Element]:
    """Binding-path evaluation with document-node semantics (leading
    child step selects the root element itself)."""
    from repro.xmlkit.path import Path
    first, *rest = path.steps
    if first.descendant:
        root_matches = [e for e in document.root.iter()
                        if first.name == "*" or e.tag == first.name]
        root_matches = [e for e in root_matches
                        if all(p.matches(e) for p in first.predicates)]
    else:
        root = document.root
        matches = (first.name == "*" or root.tag == first.name)
        matches = matches and all(p.matches(root)
                                  for p in first.predicates)
        root_matches = [root] if matches else []
    if not rest:
        return root_matches
    remainder = Path(tuple(rest))
    out: list[Element] = []
    for element in root_matches:
        out.extend(evaluate_elements(remainder, element))
    return out


def _preorder_rank(stored: _StoredDocument, element: Element) -> int:
    """The element's pre-order rank (equals the relational node_id)."""
    rank = 0
    for __, node in stored.document.walk():
        if isinstance(node, Element):
            if node is element:
                return rank
            rank += 1
    return -1
