"""SQL generation helpers for the XQ2SQL-transformer.

:class:`SqlBuilder` accumulates table aliases, join/filter conjuncts
and positional parameters, then renders one SELECT statement in the
dialect both backends accept. The path-to-join encoding lives in
:class:`ChainBuilder`:

* a *child* step becomes ``c.doc_id = p.doc_id AND c.parent_id =
  p.node_id AND c.tag = ?``,
* a *descendant* step becomes the interval predicate ``c.doc_id =
  p.doc_id AND c.doc_order >= p.doc_order AND c.doc_order <=
  p.subtree_end AND c.tag = ?`` (descendant-or-self, matching the
  tree evaluator in :mod:`repro.xmlkit.path`),
* a step predicate ``[@a = "v"]`` joins the ``attributes`` table;
  ``[child = "v"]`` joins a child element and its text.

Values are reached through ``text_values`` (elements) or ``attributes``
(attribute steps); ``contains`` goes through ``keywords``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TranslationError
from repro.xmlkit.path import Path, PositionPredicate, Step


@dataclass
class SqlBuilder:
    """One SELECT under construction."""

    select: list[str] = field(default_factory=list)
    tables: list[tuple[str, str]] = field(default_factory=list)  # (table, alias)
    conjuncts: list[str] = field(default_factory=list)
    params: list = field(default_factory=list)
    distinct: bool = False
    _alias_counts: dict[str, int] = field(default_factory=dict)

    def alias(self, prefix: str) -> str:
        """A fresh alias with the given prefix (e0, e1, ...)."""
        count = self._alias_counts.get(prefix, 0)
        self._alias_counts[prefix] = count + 1
        return f"{prefix}{count}"

    def add_table(self, table: str, prefix: str) -> str:
        """Add a FROM entry; returns its alias."""
        alias = self.alias(prefix)
        self.tables.append((table, alias))
        return alias

    def where(self, conjunct: str, *params) -> None:
        """Add one WHERE conjunct with its parameters."""
        self.conjuncts.append(conjunct)
        self.params.extend(params)

    def where_in(self, column: str, values) -> None:
        """Add a parameterized membership conjunct ``column IN (?,...)``
        (the federation optimizer's semi-join IN-list fragment). An
        empty value list matches nothing — SQL has no empty IN-list, so
        it renders as a constant-false conjunct instead."""
        values = tuple(values)
        if not values:
            self.conjuncts.append("1 = 0")
            return
        placeholders = ", ".join("?" for __ in values)
        self.conjuncts.append(f"{column} IN ({placeholders})")
        self.params.extend(values)

    def sql(self) -> str:
        """Render the accumulated SELECT."""
        if not self.tables:
            raise TranslationError("query uses no tables")
        head = "SELECT DISTINCT " if self.distinct else "SELECT "
        first_table, first_alias = self.tables[0]
        lines = [head + ", ".join(self.select),
                 f"FROM {first_table} {first_alias}"]
        for table, alias in self.tables[1:]:
            lines.append(f", {table} {alias}")
        if self.conjuncts:
            lines.append("WHERE " + "\n  AND ".join(self.conjuncts))
        return "\n".join(lines)


@dataclass
class ElementRef:
    """An element alias in the query, with its interval columns."""

    alias: str

    @property
    def doc_id(self) -> str:
        """Column expression for the element's document id."""
        return f"{self.alias}.doc_id"

    @property
    def node_id(self) -> str:
        """Column expression for the element's node id."""
        return f"{self.alias}.node_id"

    @property
    def doc_order(self) -> str:
        """Column expression for the pre-order rank."""
        return f"{self.alias}.doc_order"

    @property
    def subtree_end(self) -> str:
        """Column expression for the interval end."""
        return f"{self.alias}.subtree_end"


@dataclass
class ValueRef:
    """Where a path's value can be read: a column expression on some
    alias, plus the numeric twin when available."""

    alias: str
    text_column: str
    numeric_column: str | None
    holder: ElementRef    # the element owning the value

    @property
    def text(self) -> str:
        """Column expression holding the string value."""
        return f"{self.alias}.{self.text_column}"

    @property
    def numeric(self) -> str | None:
        """Column expression holding the numeric twin, if any."""
        if self.numeric_column is None:
            return None
        return f"{self.alias}.{self.numeric_column}"


class ChainBuilder:
    """Encodes path navigation as joins on one :class:`SqlBuilder`."""

    def __init__(self, builder: SqlBuilder):
        self.builder = builder

    # -- roots -------------------------------------------------------------

    def document_root(self, source: str,
                      collection: str | None) -> ElementRef:
        """The root element of every document of a source
        (optionally one collection)."""
        b = self.builder
        doc = b.add_table("documents", "d")
        root = ElementRef(b.add_table("elements", "e"))
        b.where(f"{doc}.source = ?", source)
        if collection is not None:
            b.where(f"{doc}.collection = ?", collection)
        b.where(f"{root.doc_id} = {doc}.doc_id")
        b.where(f"{root.alias}.parent_id IS NULL")
        return root

    def document_path(self, source: str, collection: str | None,
                      path: Path | None) -> ElementRef:
        """A binding chain rooted at ``document(...)``.

        XPath semantics: ``document()`` yields the *document node*, so
        a leading child step (``/hlx_enzyme``) selects the root element
        itself (constraining its tag), and a leading descendant step
        (``//x``) selects elements at any depth of the document.
        """
        if path is None:
            return self.document_root(source, collection)
        if path.is_attribute_path:
            raise TranslationError(
                f"binding path {path} must address elements")
        first, *rest = path.steps
        b = self.builder
        if first.descendant:
            doc = b.add_table("documents", "d")
            b.where(f"{doc}.source = ?", source)
            if collection is not None:
                b.where(f"{doc}.collection = ?", collection)
            target = ElementRef(b.add_table("elements", "e"))
            b.where(f"{target.doc_id} = {doc}.doc_id")
            if first.name != "*":
                b.where(f"{target.alias}.tag = ?", first.name)
            for predicate in first.predicates:
                self.apply_predicate(target, predicate)
        else:
            target = self.document_root(source, collection)
            if first.name != "*":
                b.where(f"{target.alias}.tag = ?", first.name)
            for predicate in first.predicates:
                self.apply_predicate(target, predicate)
        for step in rest:
            target = self.element_step(target, step)
        return target

    # -- steps ------------------------------------------------------------------

    def element_step(self, context: ElementRef, step: Step) -> ElementRef:
        """One element navigation step from ``context``."""
        b = self.builder
        target = ElementRef(b.add_table("elements", "e"))
        b.where(f"{target.doc_id} = {context.doc_id}")
        if step.descendant:
            b.where(f"{target.doc_order} >= {context.doc_order}")
            b.where(f"{target.doc_order} <= {context.subtree_end}")
        else:
            b.where(f"{target.alias}.parent_id = {context.node_id}")
        if step.name != "*":
            b.where(f"{target.alias}.tag = ?", step.name)
        for predicate in step.predicates:
            self.apply_predicate(target, predicate)
        return target

    def walk(self, context: ElementRef, path: Path | None) -> ElementRef:
        """Follow all element steps of ``path``; the final step must not
        be an attribute step (use :meth:`value_of` for values)."""
        if path is None:
            return context
        if path.is_attribute_path:
            raise TranslationError(
                f"path {path} addresses an attribute where an element "
                f"is required")
        for step in path.steps:
            context = self.element_step(context, step)
        return context

    def value_of(self, context: ElementRef,
                 path: Path | None) -> ValueRef:
        """Joins to read the value addressed by ``path`` from
        ``context`` — attribute value or element text."""
        b = self.builder
        if path is not None and path.is_attribute_path:
            steps = list(path.steps)
            attr_step = steps.pop()
            holder = self._attribute_holder(context, steps, attr_step)
            attr = b.add_table("attributes", "a")
            b.where(f"{attr}.doc_id = {holder.doc_id}")
            b.where(f"{attr}.node_id = {holder.node_id}")
            b.where(f"{attr}.name = ?", attr_step.name)
            return ValueRef(alias=attr, text_column="value",
                            numeric_column="num_value", holder=holder)
        holder = self.walk(context, path)
        text = b.add_table("text_values", "t")
        b.where(f"{text}.doc_id = {holder.doc_id}")
        b.where(f"{text}.node_id = {holder.node_id}")
        return ValueRef(alias=text, text_column="value",
                        numeric_column="num_value", holder=holder)

    def _attribute_holder(self, context: ElementRef, steps: list[Step],
                          attr_step: Step) -> ElementRef:
        """The element carrying an attribute: after any element steps,
        a descendant attribute step (``//@x``) may sit on any element
        of the context subtree."""
        holder = context
        for step in steps:
            holder = self.element_step(holder, step)
        if attr_step.descendant:
            b = self.builder
            any_el = ElementRef(b.add_table("elements", "e"))
            b.where(f"{any_el.doc_id} = {holder.doc_id}")
            b.where(f"{any_el.doc_order} >= {holder.doc_order}")
            b.where(f"{any_el.doc_order} <= {holder.subtree_end}")
            return any_el
        return holder

    def apply_predicate(self, target: ElementRef, predicate) -> None:
        """A step predicate ``[@a = "v"]``, ``[child = "v"]`` or
        positional ``[n]`` (compiled to the ``tag_sib_ord`` rank the
        shredder stores — order as data, per the paper)."""
        b = self.builder
        if isinstance(predicate, PositionPredicate):
            b.where(f"{target.alias}.tag_sib_ord = ?",
                    predicate.position - 1)
            return
        if predicate.on_attribute:
            attr = b.add_table("attributes", "a")
            b.where(f"{attr}.doc_id = {target.doc_id}")
            b.where(f"{attr}.node_id = {target.node_id}")
            b.where(f"{attr}.name = ?", predicate.name)
            b.where(f"{attr}.value = ?", predicate.value)
            return
        child = ElementRef(b.add_table("elements", "e"))
        b.where(f"{child.doc_id} = {target.doc_id}")
        b.where(f"{child.alias}.parent_id = {target.node_id}")
        b.where(f"{child.alias}.tag = ?", predicate.name)
        text = b.add_table("text_values", "t")
        b.where(f"{text}.doc_id = {child.doc_id}")
        b.where(f"{text}.node_id = {child.node_id}")
        b.where(f"{text}.value = ?", predicate.value)

    def keyword(self, scope_doc: str, token: str,
                interval: ElementRef | None = None) -> str:
        """A keyword-index probe; returns the keyword alias.

        ``scope_doc`` is a doc_id column expression; ``interval``
        restricts hits to one element subtree (node scope).
        """
        b = self.builder
        kw = b.add_table("keywords", "k")
        b.where(f"{kw}.doc_id = {scope_doc}")
        b.where(f"{kw}.token = ?", token)
        if interval is not None:
            b.where(f"{kw}.node_id >= {interval.doc_order}")
            b.where(f"{kw}.node_id <= {interval.subtree_end}")
        return kw
