"""The XQ2SQL-transformer: XomatiQ queries → SQL over the generic
schema, plus the executor that merges SQL results back into query
results."""

from repro.translator.cache import CompiledQueryCache
from repro.translator.compile import (
    BindingSql,
    CompiledDisjunct,
    CompiledItem,
    CompiledQuery,
    compile_query,
    to_dnf,
)
from repro.translator.execute import execute_compiled
from repro.translator.sqlgen import ChainBuilder, ElementRef, SqlBuilder

__all__ = [
    "BindingSql",
    "ChainBuilder",
    "CompiledDisjunct",
    "CompiledItem",
    "CompiledQuery",
    "CompiledQueryCache",
    "ElementRef",
    "SqlBuilder",
    "compile_query",
    "execute_compiled",
    "to_dnf",
]
