"""LRU cache of compiled queries.

Repeated FLWR queries over a warehouse of slowly-changing releases are
the common case (YeastMed's mediator answers the same biological
queries over and over), yet the seed pipeline re-ran
parse → check → compile for every call. :class:`CompiledQueryCache`
memoizes the whole translation, keyed by everything the translation
depends on:

* the query text,
* the backend dialect (``backend.name`` — minidb and SQLite receive
  the same SQL today, but the key keeps a future dialect split from
  silently cross-serving plans),
* the warehouse's ``sequence_tags`` (they change which tables a path
  compiles against).

Staleness is handled by a *catalog generation* counter: every
store/remove/bulk-flush on the warehouse bumps it, and an entry cached
at an older generation is treated as a miss and dropped. That makes
the semantic check (``document_exists``) safe to skip on a hit — any
mutation that could change its verdict also changed the generation —
and guarantees a query that failed against the old catalog (unknown
document) recompiles after the document is loaded.

A cached :class:`~repro.translator.compile.CompiledQuery` is never
mutated by execution (the executor builds restricted SQL into local
strings), so hits and misses produce identical results.

The cache is shared by every thread that queries the warehouse (the
query service hands one warehouse to a whole handler pool), so all
``OrderedDict`` access runs under one lock — ``move_to_end`` and
eviction are multi-step structure mutations that are not atomic under
the GIL, and two unlocked threads can otherwise corrupt the LRU links
or die with ``RuntimeError: OrderedDict mutated during iteration``.
The translation itself is *not* under the lock: concurrent misses may
both compile and the second ``put`` wins, which is merely duplicated
work, never a wrong answer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.translator.compile import CompiledQuery

#: cache key: (query text, backend dialect, sequence_tags)
CacheKey = tuple[str, str, frozenset]


class CompiledQueryCache:
    """A bounded LRU of ``(generation, CompiledQuery)`` entries.

    With a :class:`repro.obs.MetricsRegistry` attached, every hit /
    miss / eviction / invalidation also bumps the always-on
    ``query_cache.*`` counters and the cache size gauge, so cache
    behaviour shows up in ``xomatiq metrics`` without a profiler run.
    """

    def __init__(self, maxsize: int = 128, metrics=None):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[CacheKey, tuple[int, CompiledQuery]]"
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: entries dropped because the catalog generation moved on
        self.invalidations = 0
        if metrics is not None:
            self._hit_counter = metrics.counter("query_cache.hits")
            self._miss_counter = metrics.counter("query_cache.misses")
            self._eviction_counter = metrics.counter(
                "query_cache.evictions")
            self._invalidation_counter = metrics.counter(
                "query_cache.invalidations")
            self._size_gauge = metrics.gauge("query_cache.size")
        else:
            self._hit_counter = self._miss_counter = None
            self._eviction_counter = self._invalidation_counter = None
            self._size_gauge = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, text: str, dialect: str, sequence_tags: frozenset,
            generation: int) -> CompiledQuery | None:
        """The cached translation, or None on miss/stale."""
        key = (text, dialect, sequence_tags)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                size = None
                outcome = "miss"
            else:
                cached_generation, compiled = entry
                if cached_generation != generation:
                    del self._entries[key]
                    self.invalidations += 1
                    self.misses += 1
                    size = len(self._entries)
                    outcome = "stale"
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    size = None
                    outcome = "hit"
        # metric handles have their own locks; update them outside ours
        if outcome == "hit":
            if self._hit_counter is not None:
                self._hit_counter.inc()
            return compiled
        if self._miss_counter is not None:
            self._miss_counter.inc()
            if outcome == "stale":
                self._invalidation_counter.inc()
                self._size_gauge.set(size)
        return None

    def put(self, text: str, dialect: str, sequence_tags: frozenset,
            generation: int, compiled: CompiledQuery) -> None:
        """Cache one translation at the current catalog generation."""
        key = (text, dialect, sequence_tags)
        evicted = 0
        with self._lock:
            self._entries[key] = (generation, compiled)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
            size = len(self._entries)
        if evicted and self._eviction_counter is not None:
            self._eviction_counter.inc(evicted)
        if self._size_gauge is not None:
            self._size_gauge.set(size)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counters for benchmarks and the profile JSON."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
