"""The XQ2SQL-transformer: compile XomatiQ queries to SQL (paper §3.2).

Strategy (in the spirit of the systems the paper cites — Agora,
Shanmugasundaram et al., Zhang et al.):

* The WHERE condition is normalized to **disjunctive normal form**.
  Each disjunct compiles to one *binding query*: a single SELECT over
  the generic schema whose result rows identify, for every FOR
  variable, the bound element (``doc_id, node_id, doc_order,
  subtree_end``). Conjunctive atoms become joins; OR becomes a union
  of binding queries (performed by the engine); NOT becomes a set
  difference against an auxiliary binding query.
* Every RETURN item compiles to its own *item query* that yields
  ``(anchor doc_id, anchor node_id, value order, value)`` rows for all
  candidate anchors; the engine merges them onto the binding rows.
  This avoids both LEFT JOINs (items may be absent) and cross products
  between multi-valued items (XQuery nests them; SQL would multiply).

Everything that touches data is SQL — Python only unions, subtracts
and merges id tuples, which is the division of labour the paper
describes (RDBMS evaluates; the tagger assembles).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TranslationError
from repro.shredding.keywords import query_tokens
from repro.shredding.shredder import DEFAULT_SEQUENCE_TAGS
from repro.xquery.ast import (
    Binding,
    BoolAnd,
    BoolNot,
    BoolOr,
    Compare,
    Condition,
    Contains,
    LiteralOperand,
    OrderCompare,
    Query,
    ReturnItem,
    SeqContains,
    ValueIn,
    VarPath,
)
from repro.translator.sqlgen import ChainBuilder, ElementRef, SqlBuilder

MAX_DISJUNCTS = 64

#: columns selected per variable in a binding query
VAR_COLUMNS = 4


def motif_to_like(motif: str) -> str:
    """A sequence motif as a LIKE pattern: ``.`` matches any residue,
    everything else is literal (``%``/``_`` in the motif are escaped by
    mapping them to themselves-as-text via ``.``-free translation —
    they are not valid residue codes, so reject them)."""
    from repro.errors import TranslationError
    if "%" in motif or "_" in motif:
        raise TranslationError(
            "seqcontains() motifs use '.' as the wildcard; "
            "'%' and '_' are not residue codes")
    translated = motif.replace(".", "_")
    return f"%{translated}%"


@dataclass
class BindingSql:
    """One SELECT producing binding tuples."""

    sql: str
    params: tuple


@dataclass
class CompiledDisjunct:
    """A positive binding query plus the binding queries to subtract
    (one per negated atom in the disjunct)."""

    positive: BindingSql
    negations: list[BindingSql] = field(default_factory=list)


@dataclass
class CompiledValue:
    """SQL fetching one VarPath's values.

    For element paths the value of a matched element is its *subtree*
    text (XQuery string value — ``""`` for an empty element), so two
    queries run: ``holders_sql`` finds the matched elements per anchor,
    and ``sql`` collects the text (and sequence residues) inside each
    holder's interval; the executor concatenates per holder. Attribute
    paths need only ``sql`` (missing attributes yield no value).
    """

    varpath: VarPath
    sql: str
    params: tuple
    holders_sql: str | None = None
    holders_params: tuple = ()
    sequence_sql: str | None = None
    sequence_params: tuple = ()
    #: column expression of the anchor's doc_id in every query above;
    #: the executor appends `AND <col> IN (...)` to restrict value
    #: fetches to the documents that actually have bindings
    anchor_doc_column: str = ""


@dataclass
class CompiledItem:
    """One RETURN item: a single value query for a plain item, several
    for a constructor (one per embedded expression)."""

    item: ReturnItem
    values: list[CompiledValue]

    # -- single-value conveniences (plain items) -------------------------

    @property
    def sql(self) -> str:
        """The (first) value query — plain items have exactly one."""
        return self.values[0].sql

    @property
    def params(self) -> tuple:
        """Parameters of :attr:`sql`."""
        return self.values[0].params

    @property
    def sequence_sql(self) -> str | None:
        """The sequences-table twin of :attr:`sql`, when applicable."""
        return self.values[0].sequence_sql

    @property
    def sequence_params(self) -> tuple:
        """Parameters of :attr:`sequence_sql`."""
        return self.values[0].sequence_params


@dataclass
class CompiledQuery:
    """The full translation of one XomatiQ query."""

    query: Query
    variables: list[str]
    disjuncts: list[CompiledDisjunct]
    items: list[CompiledItem]

    def statements(self) -> list[str]:
        """Every SQL statement, for display/EXPLAIN."""
        return [sql for sql, __ in self.parameterized_statements()]

    def parameterized_statements(self) -> list[tuple[str, tuple]]:
        """Every SQL statement with its bound parameters — what the
        slow-query log needs to re-run EXPLAIN faithfully."""
        out: list[tuple[str, tuple]] = []
        for disjunct in self.disjuncts:
            out.append((disjunct.positive.sql, disjunct.positive.params))
            out.extend((n.sql, n.params) for n in disjunct.negations)
        for item in self.items:
            for value in item.values:
                out.append((value.sql, value.params))
                if value.sequence_sql:
                    out.append((value.sequence_sql, value.sequence_params))
        return out


def compile_query(query: Query,
                  sequence_tags: frozenset[str] = DEFAULT_SEQUENCE_TAGS
                  ) -> CompiledQuery:
    """Translate a checked query into SQL."""
    compiler = _Compiler(query, sequence_tags)
    return compiler.run()


# --------------------------------------------------------------------------
# DNF normalization
# --------------------------------------------------------------------------

#: an atom with polarity: (condition, negated)
_SignedAtom = tuple[Condition, bool]


def to_dnf(condition: Condition) -> list[list[_SignedAtom]]:
    """Disjunctive normal form with negation pushed to the atoms."""
    nnf = _push_not(condition, negate=False)
    disjuncts = _distribute(nnf)
    if len(disjuncts) > MAX_DISJUNCTS:
        raise TranslationError(
            f"condition expands to {len(disjuncts)} disjuncts "
            f"(limit {MAX_DISJUNCTS}); simplify the query")
    return disjuncts


def _push_not(condition: Condition, negate: bool):
    if isinstance(condition, BoolNot):
        return _push_not(condition.item, not negate)
    if isinstance(condition, BoolAnd):
        items = [_push_not(item, negate) for item in condition.items]
        return ("or" if negate else "and", items)
    if isinstance(condition, BoolOr):
        items = [_push_not(item, negate) for item in condition.items]
        return ("and" if negate else "or", items)
    return ("atom", (condition, negate))


def _distribute(node) -> list[list[_SignedAtom]]:
    kind, payload = node
    if kind == "atom":
        return [[payload]]
    if kind == "or":
        result: list[list[_SignedAtom]] = []
        for item in payload:
            result.extend(_distribute(item))
        return result
    # and: cartesian product of the children's disjunct lists
    result = [[]]
    for item in payload:
        child = _distribute(item)
        result = [left + right for left in result for right in child]
        if len(result) > MAX_DISJUNCTS:
            raise TranslationError(
                "condition is too complex to normalize; simplify the query")
    return result


# --------------------------------------------------------------------------
# The compiler
# --------------------------------------------------------------------------


class _Compiler:
    def __init__(self, query: Query, sequence_tags: frozenset[str]):
        self.query = query
        self.sequence_tags = sequence_tags
        self.bindings: dict[str, Binding] = {
            binding.var: binding for binding in query.bindings}
        self.variables = query.variables()

    def run(self) -> CompiledQuery:
        if self.query.where is None:
            disjunct_atoms: list[list[_SignedAtom]] = [[]]
        else:
            disjunct_atoms = to_dnf(self.query.where)

        disjuncts = [self._compile_disjunct(atoms)
                     for atoms in disjunct_atoms]
        items = [self._compile_item(item) for item in self.query.returns]
        return CompiledQuery(query=self.query, variables=self.variables,
                             disjuncts=disjuncts, items=items)

    # -- binding queries -----------------------------------------------------

    def _compile_disjunct(self,
                          atoms: list[_SignedAtom]) -> CompiledDisjunct:
        positive_atoms = [atom for atom, negated in atoms if not negated]
        negated_atoms = [atom for atom, negated in atoms if negated]
        positive = self._binding_sql(positive_atoms)
        negations = [self._binding_sql(positive_atoms + [atom])
                     for atom in negated_atoms]
        return CompiledDisjunct(positive=positive, negations=negations)

    def _binding_sql(self, atoms: list[Condition]) -> BindingSql:
        builder = SqlBuilder(distinct=True)
        chains = ChainBuilder(builder)
        var_refs: dict[str, ElementRef] = {}

        def ref_for(var: str) -> ElementRef:
            if var not in var_refs:
                binding = self.bindings.get(var)
                if binding is None:
                    raise TranslationError(f"unbound variable ${var}")
                if binding.context_var is not None:
                    context = ref_for(binding.context_var)
                    var_refs[var] = chains.walk(context, binding.path)
                else:
                    var_refs[var] = chains.document_path(
                        binding.document.source,
                        binding.document.collection, binding.path)
            return var_refs[var]

        # materialize every variable (cross product when unconstrained)
        for var in self.variables:
            ref_for(var)
        for atom in atoms:
            self._apply_atom(atom, builder, chains, ref_for)
        for var in self.variables:
            ref = var_refs[var]
            builder.select.extend([ref.doc_id, ref.node_id, ref.doc_order,
                                   ref.subtree_end])
        return BindingSql(sql=builder.sql(), params=tuple(builder.params))

    def _apply_atom(self, atom: Condition, builder: SqlBuilder,
                    chains: ChainBuilder, ref_for) -> None:
        if isinstance(atom, Contains):
            self._apply_contains(atom, builder, chains, ref_for)
        elif isinstance(atom, Compare):
            self._apply_compare(atom, builder, chains, ref_for)
        elif isinstance(atom, OrderCompare):
            self._apply_order(atom, builder, chains, ref_for)
        elif isinstance(atom, SeqContains):
            self._apply_seqcontains(atom, builder, chains, ref_for)
        elif isinstance(atom, ValueIn):
            self._apply_value_in(atom, builder, chains, ref_for)
        else:
            raise TranslationError(
                f"cannot translate condition {type(atom).__name__}")

    def _apply_seqcontains(self, atom: SeqContains, builder: SqlBuilder,
                           chains: ChainBuilder, ref_for) -> None:
        """Motif search over the sequences table: the holder element's
        residues must contain the motif (LIKE, ``.`` = any residue).
        The predicate runs entirely inside the sequences table — the
        point of the paper's sequence/non-sequence split."""
        if atom.target.path is not None and atom.target.path.is_attribute_path:
            raise TranslationError(
                "seqcontains() target must be an element path")
        holder = chains.walk(ref_for(atom.target.var), atom.target.path)
        seq = builder.add_table("sequences", "s")
        builder.where(f"{seq}.doc_id = {holder.doc_id}")
        builder.where(f"{seq}.node_id = {holder.node_id}")
        builder.where(f"{seq}.residues LIKE ?", motif_to_like(atom.motif))

    def _apply_value_in(self, atom: ValueIn, builder: SqlBuilder,
                        chains: ChainBuilder, ref_for) -> None:
        """IN-list membership over the target's text values — the
        planner-injected semi-join fragment. Existential like an
        equality join: joins ``text_values``/``attributes`` and asks
        the value column to hit the parameterized list.

        The ``on_entry_key`` form instead restricts the target's
        *document* to a set of entry keys (the subscription engine's
        incremental-refresh splice): it joins ``documents`` on the
        binding's doc_id and asks ``entry_key`` to hit the list."""
        if atom.on_entry_key:
            if atom.target.path is not None:
                raise TranslationError(
                    "entry-key membership applies to a bound variable, "
                    "not a path inside it")
            ref = ref_for(atom.target.var)
            doc = builder.add_table("documents", "d")
            builder.where(f"{doc}.doc_id = {ref.doc_id}")
            builder.where_in(f"{doc}.entry_key", atom.values)
            return
        value = chains.value_of(ref_for(atom.target.var), atom.target.path)
        builder.where_in(value.text, atom.values)

    def _apply_order(self, atom: OrderCompare, builder: SqlBuilder,
                     chains: ChainBuilder, ref_for) -> None:
        """BEFORE/AFTER: document-order comparison of two element
        holders within the same document — exactly what the schema's
        ``doc_order`` column preserves."""
        for operand in (atom.left, atom.right):
            if operand.path is not None and operand.path.is_attribute_path:
                raise TranslationError(
                    f"{atom.op.upper()} compares elements, not attributes")
        left = chains.walk(ref_for(atom.left.var), atom.left.path)
        right = chains.walk(ref_for(atom.right.var), atom.right.path)
        builder.where(f"{left.doc_id} = {right.doc_id}")
        op = "<" if atom.op == "before" else ">"
        builder.where(f"{left.doc_order} {op} {right.doc_order}")

    def _apply_contains(self, atom: Contains, builder: SqlBuilder,
                        chains: ChainBuilder, ref_for) -> None:
        tokens = query_tokens(atom.phrase)
        if not tokens:
            raise TranslationError(
                f'contains() phrase {atom.phrase!r} has no searchable '
                f'keywords')
        anchor = ref_for(atom.target.var)
        if atom.scope == "any":
            interval = None
        elif atom.target.path is None:
            interval = anchor
        else:
            if atom.target.path.is_attribute_path:
                raise TranslationError(
                    "contains() target must be an element path")
            interval = chains.walk(anchor, atom.target.path)
        keyword_aliases = [
            chains.keyword(anchor.doc_id, token, interval)
            for token in tokens]
        if isinstance(atom.scope, int):
            window = atom.scope
            first = keyword_aliases[0]
            for other in keyword_aliases[1:]:
                builder.where(
                    f"abs({other}.position - {first}.position) <= ?",
                    window)

    def _apply_compare(self, atom: Compare, builder: SqlBuilder,
                       chains: ChainBuilder, ref_for) -> None:
        """Comparisons operate on *leaf* values: an element operand is
        joined to its own ``text_values`` rows (no value → no match),
        an attribute operand to its ``attributes`` row. Subtree string
        values exist only in RETURN items; a comparison against a
        container element is almost certainly a query error and matches
        nothing, which the DTD-aware builders make hard to write."""
        left, right = atom.left, atom.right
        if isinstance(left, LiteralOperand) and isinstance(
                right, LiteralOperand):
            raise TranslationError(
                "comparison between two literals is constant; remove it")
        # normalize literal to the right
        op = atom.op
        if isinstance(left, LiteralOperand):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)

        left_value = chains.value_of(ref_for(left.var), left.path)
        if isinstance(right, LiteralOperand):
            if right.is_numeric and left_value.numeric is not None:
                builder.where(f"{left_value.numeric} {op} ?", right.value)
            else:
                builder.where(f"{left_value.text} {op} ?", str(right.value))
            return
        right_value = chains.value_of(ref_for(right.var), right.path)
        builder.where(f"{left_value.text} {op} {right_value.text}")

    # -- item queries -----------------------------------------------------------

    def _compile_item(self, item: ReturnItem) -> CompiledItem:
        if item.constructor is not None:
            values = [self._compile_value(varpath)
                      for varpath in item.constructor.varpaths()]
            return CompiledItem(item=item, values=values)
        return CompiledItem(item=item,
                            values=[self._compile_value(item.value)])

    def _compile_value(self, value: VarPath) -> CompiledValue:
        if value.path is not None and value.path.is_attribute_path:
            sql, params, doc_column = self._attribute_item_sql(value)
            return CompiledValue(varpath=value, sql=sql, params=params,
                                 anchor_doc_column=doc_column)
        holders_sql, holders_params, doc_column = self._holders_sql(value)
        sql, params, text_doc_column = self._subtree_text_sql(
            value, table="text_values", column="value")
        sequence_sql, sequence_params, seq_doc_column = \
            self._subtree_text_sql(value, table="sequences",
                                   column="residues")
        # the anchor chain is built identically in all three queries,
        # so its alias (and doc_id column) must coincide
        assert doc_column == text_doc_column == seq_doc_column
        return CompiledValue(varpath=value, sql=sql, params=params,
                             holders_sql=holders_sql,
                             holders_params=holders_params,
                             sequence_sql=sequence_sql,
                             sequence_params=sequence_params,
                             anchor_doc_column=doc_column)

    def _attribute_item_sql(self, value: VarPath) -> tuple[str, tuple, str]:
        builder = SqlBuilder()
        chains = ChainBuilder(builder)
        anchor = self._anchor_chain(value.var, chains)
        value_ref = chains.value_of(anchor, value.path)
        builder.select = [anchor.doc_id, anchor.node_id,
                          value_ref.holder.doc_order, value_ref.text]
        return builder.sql(), tuple(builder.params), anchor.doc_id

    def _holders_sql(self, value: VarPath) -> tuple[str, tuple, str]:
        """Matched holder elements per anchor (one value per holder,
        even when the holder has no text)."""
        builder = SqlBuilder(distinct=True)
        chains = ChainBuilder(builder)
        anchor = self._anchor_chain(value.var, chains)
        holder = chains.walk(anchor, value.path)
        builder.select = [anchor.doc_id, anchor.node_id, holder.doc_order]
        return builder.sql(), tuple(builder.params), anchor.doc_id

    def _subtree_text_sql(self, value: VarPath, table: str,
                          column: str) -> tuple[str, tuple, str]:
        """Text (or residue) pieces inside each holder's interval —
        the holder's XQuery string value is their concatenation in
        document order."""
        builder = SqlBuilder()
        chains = ChainBuilder(builder)
        anchor = self._anchor_chain(value.var, chains)
        holder = chains.walk(anchor, value.path)
        piece = builder.add_table(table, table[0])
        builder.where(f"{piece}.doc_id = {holder.doc_id}")
        builder.where(f"{piece}.node_id >= {holder.doc_order}")
        builder.where(f"{piece}.node_id <= {holder.subtree_end}")
        builder.select = [anchor.doc_id, anchor.node_id, holder.doc_order,
                          f"{piece}.node_id", f"{piece}.{column}"]
        return builder.sql(), tuple(builder.params), anchor.doc_id

    def _anchor_chain(self, var: str, chains: ChainBuilder) -> ElementRef:
        """Rebuild the binding chain of ``var`` (and its context
        ancestry) inside an item query."""
        binding = self.bindings.get(var)
        if binding is None:
            raise TranslationError(f"unbound variable ${var}")
        if binding.context_var is not None:
            context = self._anchor_chain(binding.context_var, chains)
            return chains.walk(context, binding.path)
        return chains.document_path(binding.document.source,
                                    binding.document.collection,
                                    binding.path)
