"""Execute a compiled query against a relational backend.

Python's role here is deliberately thin (the paper pushes evaluation
into the RDBMS): run each disjunct's binding SQL, union the binding
tuples, subtract negation tuples, run each value SQL once, and merge
values onto bindings by ``(doc_id, node_id)`` anchor keys. Constructor
items additionally assemble one fresh XML element per result row from
their fetched values.
"""

from __future__ import annotations

from repro.relational.backend import Backend
from repro.results.resultset import (
    BoundNode,
    QueryResult,
    ResultRow,
    unique_columns,
)
from repro.translator.compile import VAR_COLUMNS, CompiledQuery, CompiledValue
from repro.xmlkit.doc import Element
from repro.xmlkit.serializer import serialize_compact
from repro.xquery.ast import Constructor, VarPath


def execute_compiled(compiled: CompiledQuery,
                     backend: Backend,
                     tracer=None) -> QueryResult:
    """Run all SQL of a compiled query; returns the merged result.

    With a :class:`repro.obs.trace.Tracer`, the three execution phases
    (binding collection, value collection, merge) each get their own
    span nested under whatever span is currently open.
    """
    if tracer is None:
        bindings = _collect_bindings(compiled, backend)
        value_maps = _collect_value_maps(compiled, backend, bindings)
        return _merge_result(compiled, bindings, value_maps)

    with tracer.span("bindings") as span:
        bindings = _collect_bindings(compiled, backend)
        span.count("binding_tuples", len(bindings))
    with tracer.span("values"):
        value_maps = _collect_value_maps(compiled, backend, bindings)
    with tracer.span("merge") as span:
        result = _merge_result(compiled, bindings, value_maps)
        span.count("result_rows", len(result))
    return result


def _output_columns(compiled: CompiledQuery) -> list[str]:
    """Result column names, uniquified (shared scheme with the native
    evaluator so differential tests compare like for like)."""
    return unique_columns([item.item.output_name
                           for item in compiled.items])


def _collect_value_maps(compiled: CompiledQuery, backend: Backend,
                        bindings: list[tuple]) -> list[list[dict]]:
    """Run every item's value queries, restricted to bound documents."""
    variables = compiled.variables
    doc_ids_by_var = {
        var: sorted({binding[i * VAR_COLUMNS] for binding in bindings})
        for i, var in enumerate(variables)}
    return [
        [_collect_values(value, backend,
                         doc_ids_by_var.get(value.varpath.var, []))
         for value in item.values]
        for item in compiled.items]


def _merge_result(compiled: CompiledQuery, bindings: list[tuple],
                  value_maps: list[list[dict]]) -> QueryResult:
    """Merge value maps onto binding tuples by anchor keys."""
    variables = compiled.variables
    columns = _output_columns(compiled)
    result = QueryResult(columns=columns, variables=list(variables))
    for binding in bindings:
        row = ResultRow(bindings={
            var: BoundNode(doc_id=binding[i * VAR_COLUMNS],
                           node_id=binding[i * VAR_COLUMNS + 1])
            for i, var in enumerate(variables)})

        def values_for(varpath: VarPath, maps) -> list[str]:
            var_index = variables.index(varpath.var)
            anchor = (binding[var_index * VAR_COLUMNS],
                      binding[var_index * VAR_COLUMNS + 1])
            return [value for __, value in sorted(maps.get(anchor, []))]

        for column, item, maps in zip(columns, compiled.items, value_maps):
            if item.item.constructor is not None:
                element = _build_element(item.item.constructor, maps,
                                         values_for)
                row.elements[column] = element
                row.values[column] = [serialize_compact(element)]
            else:
                row.values[column] = values_for(item.item.value, maps[0])
        result.rows.append(row)
    return result


def _build_element(constructor: Constructor, maps: list,
                   values_for) -> Element:
    """Assemble one constructed element for one result row.

    ``maps`` parallels ``constructor.varpaths()`` order (the order the
    compiler emitted the value queries in).
    """
    slot_values = {
        index: values_for(varpath, value_map)
        for index, (varpath, value_map) in enumerate(
            zip(constructor.varpaths(), maps))}
    counter = [0]

    def build(node: Constructor) -> Element:
        element = Element(node.tag)
        for name, value in node.attributes:
            if isinstance(value, VarPath):
                values = slot_values[counter[0]]
                counter[0] += 1
                if values:
                    element.set(name, values[0])
            else:
                element.set(name, value)
        for child in node.children:
            if isinstance(child, VarPath):
                values = slot_values[counter[0]]
                counter[0] += 1
                tag = _splice_tag(child)
                for value in values:
                    element.subelement(tag, text=value if value else None)
            else:
                element.append(build(child))
        return element

    return build(constructor)


def _splice_tag(varpath: VarPath) -> str:
    """Element name for spliced values: the path's final step name
    (attribute steps lose their ``@``), or the variable name."""
    if varpath.path is None:
        return varpath.var
    return varpath.path.last_name


def _collect_bindings(compiled: CompiledQuery,
                      backend: Backend) -> list[tuple]:
    """Union of disjunct binding tuples minus their negations, in a
    stable (document-order-ish) ordering."""
    accepted: set[tuple] = set()
    for disjunct in compiled.disjuncts:
        rows = {tuple(row) for row in backend.execute(
            disjunct.positive.sql, disjunct.positive.params)}
        for negation in disjunct.negations:
            rows -= {tuple(row) for row in backend.execute(
                negation.sql, negation.params)}
        accepted |= rows
    return sorted(accepted)


#: restrict value queries to bound documents via IN lists of at most
#: this many ids per statement (keeps statements cacheable-ish and well
#: under engine parameter limits)
_DOC_CHUNK = 200


def _restricted(backend: Backend, sql: str, params: tuple,
                doc_column: str, doc_ids: list[int]) -> list:
    """Run a value query restricted to the bound documents.

    Without this, value queries scan every document of the source —
    measured 75x slower than the binding query itself on selective
    queries over large corpora.
    """
    if not doc_ids:
        return []
    rows: list = []
    for start in range(0, len(doc_ids), _DOC_CHUNK):
        chunk = doc_ids[start:start + _DOC_CHUNK]
        id_list = ", ".join(str(int(doc_id)) for doc_id in chunk)
        chunk_sql = f"{sql}\n  AND {doc_column} IN ({id_list})"
        rows.extend(backend.execute(chunk_sql, params))
    return rows


def _collect_values(value: CompiledValue, backend: Backend,
                    doc_ids: list[int]
                    ) -> dict[tuple, list[tuple[tuple, str]]]:
    """Run one value's queries; returns
    ``(doc_id, anchor_node) -> [(order_key, value), ...]``.

    Element paths: one value per matched holder — the concatenation of
    all text/residue pieces in the holder's subtree, document order
    (the XQuery string value; ``""`` for empty elements). Attribute
    paths: one value per present attribute. All queries are restricted
    to the ``doc_ids`` that actually carry bindings.
    """
    if value.holders_sql is None:
        # attribute item: rows are (doc, anchor, order, attr value)
        values: dict[tuple, list[tuple[tuple, str]]] = {}
        occurrences: dict[tuple, int] = {}
        for doc_id, anchor_node, order, text in _restricted(
                backend, value.sql, value.params,
                value.anchor_doc_column, doc_ids):
            key = (doc_id, anchor_node)
            occ_key = (doc_id, anchor_node, order)
            occurrence = occurrences.get(occ_key, 0)
            occurrences[occ_key] = occurrence + 1
            values.setdefault(key, []).append(
                ((order, occurrence), "" if text is None else str(text)))
        return values

    # element item: holders first, then subtree text pieces
    holders: dict[tuple, list[int]] = {}
    for doc_id, anchor_node, order in _restricted(
            backend, value.holders_sql, value.holders_params,
            value.anchor_doc_column, doc_ids):
        holders.setdefault((doc_id, anchor_node), []).append(order)

    pieces: dict[tuple, list[tuple[tuple, str]]] = {}
    occurrences = {}

    def ingest(rows) -> None:
        for doc_id, anchor_node, order, piece_node, text in rows:
            key = (doc_id, anchor_node, order)
            occ_key = (doc_id, anchor_node, order, piece_node)
            occurrence = occurrences.get(occ_key, 0)
            occurrences[occ_key] = occurrence + 1
            pieces.setdefault(key, []).append(
                ((piece_node, occurrence), "" if text is None else str(text)))

    ingest(_restricted(backend, value.sql, value.params,
                       value.anchor_doc_column, doc_ids))
    if value.sequence_sql:
        ingest(_restricted(backend, value.sequence_sql,
                           value.sequence_params,
                           value.anchor_doc_column, doc_ids))

    values = {}
    for key, orders in holders.items():
        for order in orders:
            parts = sorted(pieces.get(key + (order,), []))
            values.setdefault(key, []).append(
                ((order, 0), "".join(text for __, text in parts)))
    return values
