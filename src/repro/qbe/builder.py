"""Programmatic query builders — the GUI's three modes (paper §3.1).

Each builder mirrors one visual formulation mode; its
:meth:`translate` is the "Translate Query" button, returning the exact
textual XomatiQ query, and :meth:`run` executes it on a warehouse.

* :class:`KeywordSearchBuilder` — Figure 8: pick databases, type a
  keyword, choose what to return from each database.
* :class:`SubtreeSearchBuilder` — Figures 7a/9: pick one database,
  click the sub-tree element to search within, type the keyword,
  click the elements to retrieve.
* :class:`JoinQueryBuilder` — Figures 10/11: pick two databases, click
  the joining elements (middle panel), choose the outputs.

Builders validate clicked names against the source DTD trees, exactly
as the GUI constrains clicks to existing nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PathError, QueryError
from repro.qbe.dtd_tree import contains_tag
from repro.xmlkit.dtd import DtdTreeNode

_VARIABLE_NAMES = "abcdefgh"


def _validate_click(tree: DtdTreeNode, name: str, database: str) -> None:
    target = name.lstrip("@")
    if name.startswith("@"):
        found = _has_attribute(tree, target)
    else:
        found = contains_tag(tree, target)
    if not found:
        raise PathError(
            f"{name!r} is not a node of the {database} DTD tree")


def _has_attribute(tree: DtdTreeNode, attribute: str) -> bool:
    if attribute in tree.attributes:
        return True
    return any(_has_attribute(child, attribute) for child in tree.children)


def _return_expr(var: str, name: str) -> str:
    if name.startswith("@"):
        return f"${var}//{'@' + name[1:]}"
    return f"${var}//{name}"


@dataclass
class _DatabasePanel:
    """One selected database in a builder: its document address, its
    DTD tree, its root element tag and the fields to retrieve."""

    document: str
    tree: DtdTreeNode
    returns: list[str] = field(default_factory=list)


class _BuilderBase:
    def __init__(self, warehouse):
        self.warehouse = warehouse
        self._panels: list[_DatabasePanel] = []

    def _add_database(self, document: str) -> _DatabasePanel:
        if len(self._panels) >= len(_VARIABLE_NAMES):
            raise QueryError("too many databases selected")
        source = document.rpartition(".")[0] or document
        panel = _DatabasePanel(document=document,
                               tree=self.warehouse.dtd_tree(source))
        self._panels.append(panel)
        return panel

    def _panel(self, document: str) -> _DatabasePanel:
        for panel in self._panels:
            if panel.document == document:
                return panel
        raise QueryError(f"database {document!r} was not selected")

    def _var(self, panel: _DatabasePanel) -> str:
        return _VARIABLE_NAMES[self._panels.index(panel)]

    def translate(self) -> str:
        raise NotImplementedError

    def run(self):
        """Execute the translated query on the warehouse."""
        return self.warehouse.query(self.translate())


class KeywordSearchBuilder(_BuilderBase):
    """Keyword-based search mode: one keyword across N databases."""

    def __init__(self, warehouse):
        super().__init__(warehouse)
        self._keyword: str | None = None

    def add_database(self, document: str) -> "KeywordSearchBuilder":
        """Select a database (left panel)."""
        self._add_database(document)
        return self

    def keyword(self, phrase: str) -> "KeywordSearchBuilder":
        """Type the keyword to search for."""
        self._keyword = phrase
        return self

    def retrieve(self, document: str, name: str) -> "KeywordSearchBuilder":
        """Click a field of one database to add it to the output."""
        panel = self._panel(document)
        _validate_click(panel.tree, name, document)
        panel.returns.append(name)
        return self

    def translate(self) -> str:
        """The "Translate Query" button: emit the textual query."""
        if not self._panels:
            raise QueryError("select at least one database")
        if not self._keyword:
            raise QueryError("enter a keyword")
        for panel in self._panels:
            if not panel.returns:
                raise QueryError(
                    f"select at least one field to retrieve from "
                    f"{panel.document}")
        bindings = []
        conditions = []
        returns = []
        for panel in self._panels:
            var = self._var(panel)
            bindings.append(
                f'${var} IN document("{panel.document}")/{panel.tree.tag}')
            conditions.append(f'contains(${var}, "{self._keyword}", any)')
            returns.extend(_return_expr(var, name)
                           for name in panel.returns)
        return (f"FOR {', '.join(bindings)}\n"
                f"WHERE {' AND '.join(conditions)}\n"
                f"RETURN {', '.join(returns)}")


class SubtreeSearchBuilder(_BuilderBase):
    """Sub-tree search mode: keyword limited to one clicked sub-tree."""

    def __init__(self, warehouse, document: str):
        super().__init__(warehouse)
        self._add_database(document)
        self._conditions: list[tuple[str, str, str]] = []  # (connector, subtree, keyword)

    @property
    def _main(self) -> _DatabasePanel:
        return self._panels[0]

    def search_in(self, subtree: str, keyword: str,
                  connector: str = "and") -> "SubtreeSearchBuilder":
        """Click a sub-tree element and enter a keyword condition.

        ``connector`` chains multiple conditions conjunctively or
        disjunctively ("complex conjunctive and disjunctive
        constraints ... using logical operators").
        """
        if connector.lower() not in ("and", "or"):
            raise QueryError("connector must be 'and' or 'or'")
        _validate_click(self._main.tree, subtree, self._main.document)
        if subtree.startswith("@"):
            raise QueryError("sub-tree search targets elements")
        self._conditions.append((connector.lower(), subtree, keyword))
        return self

    def retrieve(self, name: str) -> "SubtreeSearchBuilder":
        """Click a field to add it to the output."""
        _validate_click(self._main.tree, name, self._main.document)
        self._main.returns.append(name)
        return self

    def translate(self) -> str:
        """The "Translate Query" button: emit the textual query."""
        if not self._conditions:
            raise QueryError("add at least one sub-tree condition")
        if not self._main.returns:
            raise QueryError("select at least one field to retrieve")
        panel = self._main
        var = self._var(panel)
        clauses: list[str] = []
        for index, (connector, subtree, keyword) in enumerate(
                self._conditions):
            atom = f'contains(${var}//{subtree}, "{keyword}")'
            if index == 0:
                clauses.append(atom)
            else:
                clauses.append(f"{connector.upper()} {atom}")
        returns = ", ".join(_return_expr(var, name)
                            for name in panel.returns)
        return (f'FOR ${var} IN document("{panel.document}")'
                f"/{panel.tree.tag}\n"
                f"WHERE {' '.join(clauses)}\n"
                f"RETURN {returns}")


class JoinQueryBuilder(_BuilderBase):
    """Join query mode: correlate two (or more) databases."""

    def __init__(self, warehouse):
        super().__init__(warehouse)
        self._joins: list[tuple[str, str, str, str]] = []
        self._filters: list[tuple[str, str, str]] = []

    def add_database(self, document: str) -> "JoinQueryBuilder":
        """Select a database (one of the side panels)."""
        self._add_database(document)
        return self

    def join(self, left_document: str, left_path: str,
             right_document: str, right_path: str) -> "JoinQueryBuilder":
        """Click the joining elements in the middle panel.

        Paths are relative (descendant) paths like
        ``qualifier[@qualifier_type = "EC_number"]`` or
        ``db_entry/enzyme_id`` — the builder prefixes the variable.
        """
        for document, path in ((left_document, left_path),
                               (right_document, right_path)):
            panel = self._panel(document)
            head = path.split("[")[0].split("/")[-1].strip()
            first = path.split("[")[0].split("/")[0].strip()
            for name in {head, first}:
                if name:
                    _validate_click(panel.tree, name, document)
        self._joins.append(
            (left_document, left_path, right_document, right_path))
        return self

    def filter_equals(self, document: str, path: str,
                      value: str) -> "JoinQueryBuilder":
        """An extra equality condition on one database."""
        panel = self._panel(document)
        head = path.split("[")[0].split("/")[-1].strip().lstrip("@")
        _validate_click(panel.tree,
                        ("@" + head) if "@" in path.split("/")[-1] else head,
                        document)
        self._filters.append((document, path, value))
        return self

    def retrieve(self, document: str, name: str,
                 alias: str | None = None) -> "JoinQueryBuilder":
        """Click an output field, optionally naming the column."""
        panel = self._panel(document)
        _validate_click(panel.tree, name, document)
        panel.returns.append(f"{alias}={name}" if alias else name)
        return self

    def translate(self) -> str:
        """The "Translate Query" button: emit the textual query."""
        if len(self._panels) < 2:
            raise QueryError("a join query needs at least two databases")
        if not self._joins:
            raise QueryError("click a pair of joining elements")
        bindings = []
        for panel in self._panels:
            var = self._var(panel)
            bindings.append(
                f'${var} IN document("{panel.document}")'
                f"/{panel.tree.tag}/db_entry"
                if _root_has_db_entry(panel.tree)
                else f'${var} IN document("{panel.document}")'
                     f"/{panel.tree.tag}")
        conditions = []
        for left_doc, left_path, right_doc, right_path in self._joins:
            left_var = self._var(self._panel(left_doc))
            right_var = self._var(self._panel(right_doc))
            conditions.append(
                f"${left_var}//{left_path} = ${right_var}//{right_path}")
        for document, path, value in self._filters:
            var = self._var(self._panel(document))
            conditions.append(f'${var}//{path} = "{value}"')
        returns = []
        for panel in self._panels:
            var = self._var(panel)
            for item in panel.returns:
                if "=" in item:
                    alias, __, name = item.partition("=")
                    returns.append(f"${alias} = {_return_expr(var, name)}")
                else:
                    returns.append(_return_expr(var, item))
        if not returns:
            raise QueryError("select at least one field to retrieve")
        return (f"FOR {', '.join(bindings)}\n"
                f"WHERE {' AND '.join(conditions)}\n"
                f"RETURN {', '.join(returns)}")


def _root_has_db_entry(tree: DtdTreeNode) -> bool:
    return any(child.tag == "db_entry" for child in tree.children)
