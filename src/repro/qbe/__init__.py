"""Query-by-example builders: the programmatic substitute for the
XomatiQ visual query interface (three modes, per paper §3.1)."""

from repro.qbe.builder import (
    JoinQueryBuilder,
    KeywordSearchBuilder,
    SubtreeSearchBuilder,
)
from repro.qbe.dtd_tree import all_paths, attribute_paths, contains_tag, path_to

__all__ = [
    "JoinQueryBuilder",
    "KeywordSearchBuilder",
    "SubtreeSearchBuilder",
    "all_paths",
    "attribute_paths",
    "contains_tag",
    "path_to",
]
