"""DTD-tree navigation for the query builder.

The XomatiQ GUI's left panel "displays the DTD structure of the XML
documents to be queried" and users "click on the elements ... to select
them". Programmatically, a click is: resolve a tag (or an explicit
path) against the DTD structural summary to a root-anchored path.
"""

from __future__ import annotations

from repro.errors import PathError
from repro.xmlkit.dtd import DtdTreeNode


def all_paths(tree: DtdTreeNode, tag: str) -> list[str]:
    """Every root-anchored slash path to elements tagged ``tag``."""
    hits: list[str] = []

    def walk(node: DtdTreeNode, prefix: str) -> None:
        here = f"{prefix}/{node.tag}"
        if node.tag == tag:
            hits.append(here)
        for child in node.children:
            walk(child, here)

    walk(tree, "")
    return hits


def path_to(tree: DtdTreeNode, tag: str) -> str:
    """The unique root-anchored path to ``tag``; raises if the tag is
    absent or ambiguous (the GUI disambiguates by position; text users
    must write the full path)."""
    hits = all_paths(tree, tag)
    if not hits:
        raise PathError(f"element {tag!r} does not occur in this DTD")
    if len(hits) > 1:
        raise PathError(
            f"element {tag!r} is ambiguous in this DTD: {hits}")
    return hits[0]


def attribute_paths(tree: DtdTreeNode, attribute: str) -> list[str]:
    """Every root-anchored path to elements carrying ``attribute``,
    with the attribute step appended."""
    hits: list[str] = []

    def walk(node: DtdTreeNode, prefix: str) -> None:
        here = f"{prefix}/{node.tag}"
        if attribute in node.attributes:
            hits.append(f"{here}/@{attribute}")
        for child in node.children:
            walk(child, here)

    walk(tree, "")
    return hits


def contains_tag(tree: DtdTreeNode, tag: str) -> bool:
    """True when ``tag`` occurs anywhere in the DTD tree."""
    return bool(all_paths(tree, tag))
