"""Synthetic ENZYME releases.

Generates flat-file text in exactly the line format of the paper's
Figures 2-4. Cross-links are taken from a shared pool (see
:mod:`repro.synth.corpus`) so EMBL features can reference the same EC
numbers and Swiss-Prot entries carry the accessions the DR lines point
at — making the paper's Figure 11 join answerable over the synthetic
corpus.
"""

from __future__ import annotations

import random

from repro.flatfile import Entry, render_entries
from repro.flatfile.lines import Line
from repro.synth import names


def generate_enzyme_entry(rng: random.Random, ec_number: str,
                          swissprot_refs: list[tuple[str, str]],
                          extra_keyword: str | None = None,
                          mim_pool: list[str] | None = None) -> Entry:
    """One ENZYME entry for ``ec_number``.

    ``swissprot_refs`` is a list of ``(accession, entry_name)`` pairs to
    emit on DR lines. ``extra_keyword`` when given is planted in the CA
    text (benchmarks use it to control keyword selectivity).
    ``mim_pool`` supplies MIM numbers for DI lines (so the disease join
    against an OMIM warehouse is answerable); without it MIM numbers
    are random.
    """
    lines: list[Line] = [Line("ID", ec_number)]
    lines.append(Line("DE", names.random_enzyme_name(rng) + "."))
    for __ in range(rng.randint(0, 3)):
        lines.append(Line("AN", names.random_enzyme_name(rng) + "."))

    substrate_a = rng.choice(names.SUBSTRATE_WORDS)
    substrate_b = rng.choice(names.SUBSTRATE_WORDS)
    activity = f"{substrate_a.capitalize()} + O(2) = {substrate_b} + H(2)O"
    if extra_keyword:
        activity += f" + {extra_keyword}"
    for chunk in _wrap_words(activity + ".", 60):
        lines.append(Line("CA", chunk))

    if rng.random() < 0.7:
        lines.append(Line("CF", rng.choice(names.COFACTORS) + "."))

    for __ in range(rng.randint(0, 2)):
        template = rng.choice(names.COMMENT_TEMPLATES)
        comment = template.format(
            substrate=rng.choice(names.SUBSTRATE_WORDS),
            cofactor=rng.choice(names.COFACTORS))
        first, *rest = _wrap_words(comment, 55)
        lines.append(Line("CC", f"-!- {first}"))
        for continuation in rest:
            lines.append(Line("CC", f"    {continuation}"))

    if rng.random() < 0.5:
        lines.append(Line("PR", f"PROSITE; PDOC{rng.randint(0, 99999):05d};"))

    for chunk_start in range(0, len(swissprot_refs), 3):
        chunk = swissprot_refs[chunk_start:chunk_start + 3]
        data = " ".join(f"{acc}, {name} ;" for acc, name in chunk)
        lines.append(Line("DR", data))

    if rng.random() < 0.25:
        disease = rng.choice(names.DISEASES)
        if mim_pool:
            mim_id = rng.choice(mim_pool)
        else:
            mim_id = str(rng.randint(100000, 620000))
        lines.append(Line("DI", f"{disease}; MIM:{mim_id}."))
    return Entry(lines)


def _wrap_words(text: str, width: int) -> list[str]:
    """Greedy word wrap; always returns at least one chunk."""
    words = text.split()
    chunks: list[str] = []
    current = words[0]
    for word in words[1:]:
        if len(current) + 1 + len(word) <= width:
            current += " " + word
        else:
            chunks.append(current)
            current = word
    chunks.append(current)
    return chunks


def generate_enzyme_release(seed: int, count: int,
                            ec_numbers: list[str] | None = None,
                            swissprot_pool: list[tuple[str, str]] | None = None,
                            keyword_plant: tuple[str, float] | None = None,
                            mim_pool: list[str] | None = None,
                            ) -> str:
    """A full ENZYME flat-file release as text.

    ``ec_numbers`` pins entry identities (the corpus builder passes the
    shared pool); ``keyword_plant=(word, fraction)`` plants ``word`` in
    the CA line of roughly ``fraction`` of entries (selectivity control
    for the keyword-query benchmarks).
    """
    rng = names.make_rng(seed)
    if ec_numbers is None:
        ec_numbers = unique_ec_numbers(rng, count)
    entries: list[Entry] = []
    for ec_number in ec_numbers[:count]:
        refs: list[tuple[str, str]] = []
        if swissprot_pool:
            for __ in range(rng.randint(0, 4)):
                refs.append(rng.choice(swissprot_pool))
        extra = None
        if keyword_plant and rng.random() < keyword_plant[1]:
            extra = keyword_plant[0]
        entries.append(generate_enzyme_entry(rng, ec_number, refs, extra,
                                             mim_pool=mim_pool))
    return render_entries(entries)


def unique_ec_numbers(rng: random.Random, count: int) -> list[str]:
    """``count`` distinct EC numbers, deterministic for a given rng state."""
    numbers: list[str] = []
    seen: set[str] = set()
    while len(numbers) < count:
        candidate = names.random_ec_number(rng)
        if candidate not in seen:
            seen.add(candidate)
            numbers.append(candidate)
    return numbers
